"""Seeded random generation of lake layouts and SPARQL queries.

The fuzzer's search space covers both sides of the paper's claim:

* **Physical designs** — which datasets are relational vs native RDF,
  which columns carry indexes, whether a dataset is replicated into a
  second source, and whether an object property is multi-valued (which
  moves it into a satellite table during 3NF normalization).
* **Queries** — stars of 1–4 triple patterns over a small fixed
  vocabulary, FILTER over indexed and non-indexed attributes, OPTIONAL,
  UNION, DISTINCT, ORDER BY and LIMIT/OFFSET — the SPARQL subset the
  federated planner supports.

Everything is driven by :class:`random.Random` seeds, so a
:class:`FuzzCase` is fully reproducible from its JSON form (the format the
regression corpus under ``tests/oracle/regressions/`` uses).
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field

from ..datalake.lake import SemanticDataLake
from ..rdf.graph import Graph
from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import IRI, Literal, Triple, XSD_INTEGER

VOCAB = "http://fuzz/vocab#"

#: Gene symbols shared between the *bio* and *probes* datasets — the
#: overlap is what makes cross-source joins on ``?sym`` productive.
SYMBOLS = ["BRCA1", "TP53", "KRAS", "INS", "EGFR", "MYC", "ALK", "RET"]
DISEASE_CLASSES = ["cancer", "metabolic", "neuro"]
SPECIES = ["Homo sapiens", "Mus musculus", "Rattus norvegicus"]

#: Indexable (source, table, column) candidates per dataset.  The gene's
#: ``associateddisease`` column disappears when the link is multi-valued
#: (it becomes a satellite table), so layouts skip it in that case.
INDEX_CANDIDATES = {
    "bio": [
        ("disease", "diseaseclass"),
        ("disease", "prevalence"),
        ("gene", "genesymbol"),
        ("gene", "genelength"),
        ("gene", "associateddisease"),
    ],
    "probes": [
        ("probeset", "symbol"),
        ("probeset", "species"),
        ("probeset", "probelength"),
    ],
}


# ---------------------------------------------------------------------------
# Lake layouts
# ---------------------------------------------------------------------------


@dataclass
class LakeLayout:
    """A randomized physical design of the fuzz lake (JSON-serializable)."""

    data_seed: int = 0
    n_diseases: int = 5
    n_genes: int = 10
    n_probes: int = 8
    #: dataset name -> "rdb" | "rdf"
    kinds: dict[str, str] = field(default_factory=lambda: {"bio": "rdb", "probes": "rdb"})
    #: replicated dataset -> kind of the replica source ("rdb" | "rdf")
    replicas: dict[str, str] = field(default_factory=dict)
    #: (source, table, column) triples; silently skipped when the column
    #: does not exist (e.g. multi-valued links) or the source is RDF.
    indexes: list[list[str]] = field(default_factory=list)
    #: give some genes a second associatedDisease value (satellite table)
    multivalued_links: bool = False

    @property
    def has_replicas(self) -> bool:
        return bool(self.replicas)


def random_layout(rng: random.Random) -> LakeLayout:
    layout = LakeLayout(
        data_seed=rng.randrange(1_000_000),
        n_diseases=rng.randint(3, 7),
        n_genes=rng.randint(5, 14),
        n_probes=rng.randint(4, 10),
        kinds={
            "bio": "rdb" if rng.random() < 0.8 else "rdf",
            "probes": "rdb" if rng.random() < 0.7 else "rdf",
        },
        multivalued_links=rng.random() < 0.3,
    )
    if rng.random() < 0.25:
        dataset = rng.choice(["bio", "probes"])
        layout.replicas[dataset] = rng.choice(["rdb", "rdf"])
    for dataset, candidates in INDEX_CANDIDATES.items():
        for table, column in candidates:
            if rng.random() < 0.5:
                layout.indexes.append([dataset, table, column])
    return layout


def generate_graphs(layout: LakeLayout) -> dict[str, Graph]:
    """Deterministically generate the two datasets' RDF graphs."""
    rng = random.Random(layout.data_seed)
    vocab = lambda name: IRI(VOCAB + name)  # noqa: E731 - tiny local helper
    integer = lambda n: Literal(str(n), XSD_INTEGER)  # noqa: E731

    bio = Graph("bio")
    for i in range(1, layout.n_diseases + 1):
        disease = IRI(f"http://fuzz/bio/Disease/{i}")
        bio.add(Triple(disease, RDF_TYPE, vocab("Disease")))
        if rng.random() < 0.9:
            bio.add(Triple(disease, vocab("diseaseName"), Literal(f"disease {i}")))
        bio.add(Triple(disease, vocab("diseaseClass"), Literal(rng.choice(DISEASE_CLASSES))))
        bio.add(Triple(disease, vocab("prevalence"), integer(rng.randint(1, 1000))))
    for j in range(1, layout.n_genes + 1):
        gene = IRI(f"http://fuzz/bio/Gene/{j}")
        bio.add(Triple(gene, RDF_TYPE, vocab("Gene")))
        if rng.random() < 0.85:
            bio.add(Triple(gene, vocab("geneSymbol"), Literal(rng.choice(SYMBOLS))))
        if rng.random() < 0.8:
            bio.add(Triple(gene, vocab("geneLength"), integer(rng.randint(50, 5000))))
        disease_id = rng.randint(1, layout.n_diseases)
        bio.add(
            Triple(gene, vocab("associatedDisease"), IRI(f"http://fuzz/bio/Disease/{disease_id}"))
        )
        if layout.multivalued_links and rng.random() < 0.4:
            other = 1 + (disease_id % layout.n_diseases)
            bio.add(
                Triple(gene, vocab("associatedDisease"), IRI(f"http://fuzz/bio/Disease/{other}"))
            )

    probes = Graph("probes")
    for k in range(1, layout.n_probes + 1):
        probe = IRI(f"http://fuzz/probes/Probeset/{k}")
        probes.add(Triple(probe, RDF_TYPE, vocab("Probeset")))
        probes.add(Triple(probe, vocab("symbol"), Literal(rng.choice(SYMBOLS))))
        if rng.random() < 0.9:
            probes.add(Triple(probe, vocab("species"), Literal(rng.choice(SPECIES))))
        probes.add(Triple(probe, vocab("probeLength"), integer(rng.randint(10, 900))))
    return {"bio": bio, "probes": probes}


def build_lake(layout: LakeLayout) -> SemanticDataLake:
    """Instantiate the lake a layout describes (sources, replicas, indexes)."""
    graphs = generate_graphs(layout)
    lake = SemanticDataLake("fuzz")
    for dataset, graph in sorted(graphs.items()):
        if layout.kinds.get(dataset, "rdb") == "rdb":
            lake.add_graph_as_relational(dataset, graph)
        else:
            lake.add_rdf_source(dataset, graph)
    for dataset, kind in sorted(layout.replicas.items()):
        replica_id = f"{dataset}_replica"
        if kind == "rdb":
            lake.add_graph_as_relational(replica_id, graphs[dataset])
        else:
            lake.add_rdf_source(replica_id, graphs[dataset])
    for source_id, table, column in [tuple(entry) for entry in layout.indexes]:
        for target in (source_id, f"{source_id}_replica"):
            if target not in lake.source_ids:
                continue
            source = lake.source(target)
            database = getattr(source, "database", None)
            if database is None or not database.has_table(table):
                continue
            if not database.table(table).schema.has_column(column):
                continue
            lake.create_index(target, table, [column])
    return lake


# ---------------------------------------------------------------------------
# Query specs
# ---------------------------------------------------------------------------


@dataclass
class StarSpec:
    """One star: a subject variable plus (predicate, object-token) pairs.

    ``predicate`` is either ``"a"`` or a vocabulary local name; the object
    token is rendered verbatim into SPARQL (``?var``, ``"literal"``, ``42``
    or ``<iri>``), so specs stay trivially JSON-serializable.
    """

    subject: str
    patterns: list[list[str]] = field(default_factory=list)

    def to_sparql(self) -> list[str]:
        lines = []
        for predicate, object_token in self.patterns:
            rendered = "a" if predicate == "a" else f"v:{predicate}"
            lines.append(f"{self.subject} {rendered} {object_token} .")
        return lines


@dataclass
class QuerySpec:
    """A structured SELECT query (the shrinker's unit of reduction)."""

    stars: list[StarSpec] = field(default_factory=list)
    filters: list[str] = field(default_factory=list)
    optional: list[StarSpec] = field(default_factory=list)
    optional_filters: list[str] = field(default_factory=list)
    #: UNION branches (each a list of stars); when set, ``stars``/
    #: ``optional`` are empty — the decomposer supports UNION only as the
    #: entire WHERE clause.
    union: list[list[StarSpec]] = field(default_factory=list)
    projection: list[str] | None = None  # None renders SELECT *
    distinct: bool = False
    order_by: str | None = None
    order_desc: bool = False
    limit: int | None = None
    offset: int | None = None

    @property
    def uses_extensions(self) -> bool:
        """OPTIONAL/UNION present (triple-wise decomposition unsupported)."""
        return bool(self.optional) or bool(self.union)

    def to_sparql(self) -> str:
        lines = [f"PREFIX v: <{VOCAB}>"]
        projection = "*" if self.projection is None else " ".join(self.projection)
        distinct = "DISTINCT " if self.distinct else ""
        lines.append(f"SELECT {distinct}{projection} WHERE {{")
        if self.union:
            rendered_branches = []
            for branch in self.union:
                body = [line for star in branch for line in star.to_sparql()]
                rendered_branches.append("  {\n" + "\n".join(f"    {b}" for b in body) + "\n  }")
            lines.append("\n  UNION\n".join(rendered_branches))
        else:
            for star in self.stars:
                lines.extend(f"  {line}" for line in star.to_sparql())
            if self.optional:
                lines.append("  OPTIONAL {")
                for star in self.optional:
                    lines.extend(f"    {line}" for line in star.to_sparql())
                lines.extend(f"    FILTER({expr})" for expr in self.optional_filters)
                lines.append("  }")
        lines.extend(f"  FILTER({expr})" for expr in self.filters)
        lines.append("}")
        if self.order_by is not None:
            rendered = self.order_by if not self.order_desc else f"DESC({self.order_by})"
            lines.append(f"ORDER BY {rendered}")
        if self.limit is not None:
            lines.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            lines.append(f"OFFSET {self.offset}")
        return "\n".join(lines)


# -- random query construction ----------------------------------------------


def _gene_star(rng: random.Random, layout: LakeLayout, need_disease_link: bool,
               need_symbol: bool) -> StarSpec:
    star = StarSpec(subject="?g")
    if rng.random() < 0.8:
        star.patterns.append(["a", "v:Gene"])
    if need_symbol or rng.random() < 0.6:
        object_token = "?sym" if need_symbol or rng.random() < 0.85 else f'"{rng.choice(SYMBOLS)}"'
        star.patterns.append(["geneSymbol", object_token])
    if rng.random() < 0.4:
        star.patterns.append(["geneLength", "?len"])
    if need_disease_link or rng.random() < 0.5:
        if not need_disease_link and rng.random() < 0.15:
            disease_id = rng.randint(1, layout.n_diseases)
            star.patterns.append(["associatedDisease", f"<http://fuzz/bio/Disease/{disease_id}>"])
        else:
            star.patterns.append(["associatedDisease", "?d"])
    if not star.patterns:
        star.patterns.append(["a", "v:Gene"])
    return star


def _disease_star(rng: random.Random) -> StarSpec:
    star = StarSpec(subject="?d")
    if rng.random() < 0.8:
        star.patterns.append(["a", "v:Disease"])
    if rng.random() < 0.6:
        star.patterns.append(["diseaseName", "?dn"])
    if rng.random() < 0.5:
        object_token = "?dc" if rng.random() < 0.8 else f'"{rng.choice(DISEASE_CLASSES)}"'
        star.patterns.append(["diseaseClass", object_token])
    if rng.random() < 0.35:
        star.patterns.append(["prevalence", "?prev"])
    if not star.patterns:
        star.patterns.append(["a", "v:Disease"])
    return star


def _probe_star(rng: random.Random, need_symbol: bool) -> StarSpec:
    star = StarSpec(subject="?p")
    if rng.random() < 0.8:
        star.patterns.append(["a", "v:Probeset"])
    if need_symbol or rng.random() < 0.7:
        star.patterns.append(["symbol", "?sym"])
    if rng.random() < 0.5:
        object_token = "?species" if rng.random() < 0.8 else f'"{rng.choice(SPECIES)}"'
        star.patterns.append(["species", object_token])
    if rng.random() < 0.35:
        star.patterns.append(["probeLength", "?plen"])
    if not star.patterns:
        star.patterns.append(["a", "v:Probeset"])
    return star


def _star_variables(stars: list[StarSpec]) -> list[str]:
    names: list[str] = []
    for star in stars:
        for token in [star.subject] + [obj for __, obj in star.patterns]:
            if token.startswith("?") and token not in names:
                names.append(token)
    return names


def _random_filters(rng: random.Random, variables: set[str]) -> list[str]:
    """Draw 0–2 filters over the variables actually bound by the query."""
    pool: list[str] = []
    if "?sym" in variables:
        symbol = rng.choice(SYMBOLS)
        pool.extend(
            [f'?sym = "{symbol}"', f'CONTAINS(?sym, "{symbol[:2]}")', f'STRSTARTS(?sym, "{symbol[0]}")']
        )
    if "?dc" in variables:
        pool.append(f'?dc = "{rng.choice(DISEASE_CLASSES)}"')
    if "?len" in variables:
        pool.append(f"?len {rng.choice(['>', '<=', '>='])} {rng.randint(100, 4000)}")
    if "?prev" in variables:
        pool.append(f"?prev {rng.choice(['<', '>='])} {rng.randint(50, 900)}")
    if "?species" in variables:
        pool.append('CONTAINS(?species, "Homo")')
    if "?plen" in variables:
        pool.append(f"?plen > {rng.randint(50, 700)}")
    if "?len" in variables and "?plen" in variables and rng.random() < 0.5:
        pool.append("?len > ?plen")  # residual: spans two stars
    rng.shuffle(pool)
    count = rng.choice([0, 0, 1, 1, 1, 2])
    return pool[:count]


def random_query(rng: random.Random, layout: LakeLayout) -> QuerySpec:
    """Draw one query over the fuzz vocabulary.

    Star combinations are chosen so shared variables (``?d`` between genes
    and diseases, ``?sym`` between genes and probesets) actually connect
    the stars; disconnected (cartesian) shapes are still drawn occasionally
    for coverage of the planner's cartesian-product path.
    """
    spec = QuerySpec()
    if rng.random() < 0.15:
        # A top-level UNION of two single-star branches.
        branch_kinds = [rng.choice(["gene", "disease", "probe"]) for __ in range(2)]
        for kind in branch_kinds:
            if kind == "gene":
                branch = [_gene_star(rng, layout, need_disease_link=False, need_symbol=False)]
            elif kind == "disease":
                branch = [_disease_star(rng)]
            else:
                branch = [_probe_star(rng, need_symbol=False)]
            spec.union.append(branch)
    else:
        shape = rng.choice(
            ["gene", "disease", "probe", "gene+disease", "gene+disease", "gene+probe",
             "gene+probe", "gene+disease+probe", "disease+probe", "genepair"]
        )
        kinds = shape.split("+")
        need_disease_link = "gene" in kinds and "disease" in kinds
        need_symbol = "gene" in kinds and "probe" in kinds
        if shape == "genepair":
            # Two same-source stars joined on a *non-primary-key* attribute
            # (?sym) — the one shape where Heuristic 1's index condition
            # actually decides, since star joins through link predicates
            # always hit the referenced table's (indexed) primary key.
            spec.stars.append(_gene_star(rng, layout, need_disease_link=False, need_symbol=True))
            second = StarSpec(subject="?g2", patterns=[["a", "v:Gene"], ["geneSymbol", "?sym"]])
            if rng.random() < 0.5:
                second.patterns.append(["geneLength", "?len2"])
            spec.stars.append(second)
        else:
            for kind in kinds:
                if kind == "gene":
                    spec.stars.append(_gene_star(rng, layout, need_disease_link, need_symbol))
                elif kind == "disease":
                    spec.stars.append(_disease_star(rng))
                else:
                    spec.stars.append(_probe_star(rng, need_symbol))
        if rng.random() < 0.25:
            # An OPTIONAL group joined through a main-part variable.
            bound = set(_star_variables(spec.stars))
            choices = []
            if "?g" in bound:
                choices.append(StarSpec(subject="?g", patterns=[["geneLength", "?len2"]]))
            if "?d" in bound and "disease" not in kinds:
                choices.append(_disease_star(rng))
            if "?sym" in bound and "probe" not in kinds:
                choices.append(_probe_star(rng, need_symbol=True))
            if "?p" in bound:
                choices.append(StarSpec(subject="?p", patterns=[["probeLength", "?plen2"]]))
            if choices:
                optional_star = rng.choice(choices)
                spec.optional.append(optional_star)
                if rng.random() < 0.3:
                    optional_variables = set(_star_variables([optional_star]))
                    spec.optional_filters.extend(
                        _random_filters(rng, optional_variables)[:1]
                    )

    all_stars = [star for branch in spec.union for star in branch] + spec.stars
    variables = set(_star_variables(all_stars))
    if not spec.union:
        spec.filters.extend(_random_filters(rng, variables))

    # Modifiers.  ORDER BY keys stay inside the projection because the
    # engine sorts before projecting while the oracle projects first; a key
    # outside the projection would make tie-order diverge legitimately.
    main_variables = _star_variables(all_stars)
    spec.distinct = rng.random() < 0.3
    if rng.random() < 0.7 and main_variables:
        size = rng.randint(1, min(3, len(main_variables)))
        spec.projection = rng.sample(main_variables, size)
    if rng.random() < 0.25 and main_variables:
        candidates = spec.projection if spec.projection is not None else main_variables
        spec.order_by = rng.choice(candidates)
        spec.order_desc = rng.random() < 0.5
    if rng.random() < 0.2:
        spec.limit = rng.randint(1, 6)
        if rng.random() < 0.3:
            spec.offset = rng.randint(1, 3)
    return spec


# ---------------------------------------------------------------------------
# Fuzz cases (layout + query), JSON round-trippable
# ---------------------------------------------------------------------------


@dataclass
class FuzzCase:
    """One reproducible differential-testing case."""

    layout: LakeLayout
    query: QuerySpec
    name: str = "case"
    description: str = ""

    def sparql(self) -> str:
        return self.query.to_sparql()

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "description": self.description,
                "layout": asdict(self.layout),
                "query": asdict(self.query),
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        payload = json.loads(text)
        query = payload["query"]
        spec = QuerySpec(
            stars=[StarSpec(**star) for star in query.get("stars", [])],
            filters=list(query.get("filters", [])),
            optional=[StarSpec(**star) for star in query.get("optional", [])],
            optional_filters=list(query.get("optional_filters", [])),
            union=[
                [StarSpec(**star) for star in branch] for branch in query.get("union", [])
            ],
            projection=query.get("projection"),
            distinct=query.get("distinct", False),
            order_by=query.get("order_by"),
            order_desc=query.get("order_desc", False),
            limit=query.get("limit"),
            offset=query.get("offset"),
        )
        return cls(
            layout=LakeLayout(**payload["layout"]),
            query=spec,
            name=payload.get("name", "case"),
            description=payload.get("description", ""),
        )


def random_case(seed: int, index: int = 0) -> FuzzCase:
    """The fuzzer's draw: case ``index`` of campaign ``seed``."""
    rng = random.Random(f"{seed}:{index}")
    layout = random_layout(rng)
    query = random_query(rng, layout)
    return FuzzCase(layout=layout, query=query, name=f"seed{seed}-case{index}")
