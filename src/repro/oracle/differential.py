"""Differential runner: every plan configuration vs the naive oracle.

Each query runs under every base :class:`~repro.core.policy.PlanPolicy` ×
{star, triple-wise decomposition} × {caches on, caches off}; cached
configurations run twice (cold + warm) so cache-induced wrong answers are
caught too.  Each execution's answers are diffed against the reference
evaluator and every produced plan is audited by the invariant checker.

Comparison semantics follow the engine's documented behaviour:

* Without LIMIT, answers are compared as **multisets** — except when the
  lake replicates a dataset: the planner unions all candidate sources of a
  star, so replicated rows legitimately appear once per replica, and the
  comparison weakens to answer *sets* (DISTINCT queries stay exact).
* With LIMIT/OFFSET but no total order, different (correct) plans may pick
  different rows; produced answers must be a subset of the *unlimited*
  reference answers, with the right cardinality.
* Under ORDER BY, the produced sequence must be sorted by the query's
  conditions; exact order of ties is plan-dependent and not compared.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..benchmark.metrics import answer_set, solution_key
from ..core.engine import FederatedEngine
from ..core.policy import DecompositionKind, PlanPolicy
from ..exceptions import ReproError
from ..federation.answers import Solution
from ..network.delays import NetworkSetting
from ..sparql.algebra import OrderCondition, SelectQuery
from ..sparql.expressions import ExpressionError, evaluate
from ..sparql.parser import parse_query
from .generator import FuzzCase, build_lake
from .invariants import check_plan
from .reference import ReferenceEvaluator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalake.lake import SemanticDataLake


@dataclass(frozen=True)
class EngineConfig:
    """One cell of the configuration matrix."""

    name: str
    policy: PlanPolicy
    cache: bool
    #: Execution runtime axis: "sequential", "event", or "thread" (see
    #: :mod:`repro.runtime`).  Answer multisets must agree across runtimes.
    runtime: str = "sequential"
    #: Data-plane axis: "row" or "batch".  Stricter than the runtime axis:
    #: for the same (policy, cache, runtime, seed), the two exec modes must
    #: produce bitwise-identical answer *sequences* and virtual-time stats,
    #: which the differential runner checks pairwise.
    exec: str = "row"


@dataclass
class Mismatch:
    """One disagreement between a configuration and the oracle."""

    config: str
    kind: str  # "answers" | "count" | "order" | "duplicates" | "cache" | "invariant" | "error"
    detail: str

    def describe(self) -> str:
        return f"[{self.config}] {self.kind}: {self.detail}"


def default_configs(
    runtimes: tuple[str, ...] = ("sequential",),
    execs: tuple[str, ...] = ("row",),
    policies: Sequence[PlanPolicy] | None = None,
) -> list[EngineConfig]:
    """The full matrix: policies × decompositions × cache × runtimes × exec.

    The runtime axis defaults to sequential-only (the historical matrix);
    passing e.g. ``("sequential", "event")`` cross-checks the event
    scheduler's answers against the oracle under every policy as well.
    The exec axis defaults to row-only; passing ``("row", "batch")``
    additionally pins the columnar data plane bitwise against the row
    plane (answers in order *and* virtual-time stats) per configuration.
    The policy axis defaults to the five heuristic base policies; pass an
    explicit list to add e.g. the cost-based policy to the matrix.
    """
    base = (
        list(policies)
        if policies is not None
        else [
            PlanPolicy.physical_design_aware(),
            PlanPolicy.physical_design_unaware(),
            PlanPolicy.heuristic2(),
            PlanPolicy.filters_at_source(),
            PlanPolicy.dependent_join(),
        ]
    )
    configs: list[EngineConfig] = []
    for policy in base:
        for decomposition in (DecompositionKind.STAR, DecompositionKind.TRIPLE):
            variant = policy.with_(decomposition=decomposition)
            for cache in (True, False):
                for runtime in runtimes:
                    for exec_mode in execs:
                        name = (
                            f"{policy.name}/{decomposition.value}/"
                            f"{'cache' if cache else 'nocache'}"
                        )
                        if len(runtimes) > 1 or runtime != "sequential":
                            name += f"/{runtime}"
                        if len(execs) > 1 or exec_mode != "row":
                            name += f"/{exec_mode}"
                        configs.append(
                            EngineConfig(
                                name=name,
                                policy=variant,
                                cache=cache,
                                runtime=runtime,
                                exec=exec_mode,
                            )
                        )
    return configs


# ---------------------------------------------------------------------------
# Answer comparison
# ---------------------------------------------------------------------------


def _order_key(condition: OrderCondition, solution: Solution) -> tuple:
    # Mirrors the typed sort key of both executors (operators.OrderBy and
    # sparql.bgp) so "is the output sorted?" uses the same collation.
    try:
        value = evaluate(condition.expression, solution)
    except ExpressionError:
        return (0, "")
    if hasattr(value, "to_python"):
        value = value.to_python()
    elif hasattr(value, "value"):
        value = value.value
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))


def _is_sorted(solutions: list[Solution], conditions: list[OrderCondition]) -> bool:
    for previous, current in zip(solutions, solutions[1:]):
        for condition in conditions:
            key_a = _order_key(condition, previous)
            key_b = _order_key(condition, current)
            if key_a == key_b:
                continue
            ordered = key_a < key_b if condition.ascending else key_a > key_b
            if not ordered:
                return False
            break
    return True


def compare_answers(
    query: SelectQuery,
    expected_full: list[Solution],
    produced: list[Solution],
    exact: bool,
    config: str,
) -> list[Mismatch]:
    """Diff one execution against the (unlimited) reference answers."""
    mismatches: list[Mismatch] = []
    if query.order_by and not _is_sorted(produced, query.order_by):
        mismatches.append(
            Mismatch(config, "order", "answers are not sorted by the ORDER BY conditions")
        )

    produced_keys = [solution_key(solution) for solution in produced]
    expected_keys = [solution_key(solution) for solution in expected_full]
    expected_set = set(expected_keys)
    # DISTINCT dedupes before any replica effect can survive, so DISTINCT
    # comparisons stay exact even on replicated layouts.
    exact = exact or query.distinct

    if query.distinct and len(produced_keys) != len(set(produced_keys)):
        mismatches.append(
            Mismatch(config, "duplicates", "DISTINCT execution produced duplicate answers")
        )

    sliced = query.limit is not None or bool(query.offset)
    if sliced:
        extra = set(produced_keys) - expected_set
        if extra:
            mismatches.append(
                Mismatch(
                    config,
                    "answers",
                    f"{len(extra)} answer(s) outside the reference set, e.g. "
                    f"{sorted(extra)[0]}",
                )
            )
        offset = query.offset or 0
        want = max(0, len(expected_keys) - offset)
        if query.limit is not None:
            want = min(want, query.limit)
        if exact and len(produced_keys) != want:
            mismatches.append(
                Mismatch(
                    config,
                    "count",
                    f"returned {len(produced_keys)} answers, expected {want} "
                    f"under LIMIT {query.limit} OFFSET {offset}",
                )
            )
        elif not exact and query.limit is not None and len(produced_keys) > query.limit:
            mismatches.append(
                Mismatch(
                    config,
                    "count",
                    f"returned {len(produced_keys)} answers over LIMIT {query.limit}",
                )
            )
        return mismatches

    if exact:
        expected_counter = Counter(expected_keys)
        produced_counter = Counter(produced_keys)
        if expected_counter != produced_counter:
            missing = expected_counter - produced_counter
            surplus = produced_counter - expected_counter
            parts = []
            if missing:
                parts.append(f"missing {sum(missing.values())} (e.g. {sorted(missing)[0]})")
            if surplus:
                parts.append(f"surplus {sum(surplus.values())} (e.g. {sorted(surplus)[0]})")
            mismatches.append(
                Mismatch(config, "answers", "multisets differ: " + ", ".join(parts))
            )
    else:
        produced_set = set(produced_keys)
        if produced_set != expected_set:
            missing = expected_set - produced_set
            surplus = produced_set - expected_set
            parts = []
            if missing:
                parts.append(f"missing {len(missing)} (e.g. {sorted(missing)[0]})")
            if surplus:
                parts.append(f"surplus {len(surplus)} (e.g. {sorted(surplus)[0]})")
            mismatches.append(
                Mismatch(config, "answers", "answer sets differ: " + ", ".join(parts))
            )
    return mismatches


# ---------------------------------------------------------------------------
# Running the matrix
# ---------------------------------------------------------------------------


def _stats_signature(stats) -> tuple:
    """Every virtual-time accumulator, as one comparable tuple.

    Used for the exec-mode bit-identity check: row and batch execution
    must agree on all of these exactly (no tolerance), cold and warm.
    """
    per_source = tuple(
        (sid, s.requests, s.answers, s.virtual_cost, s.network_delay)
        for sid, s in sorted(stats.source_stats.items())
    )
    return (
        stats.execution_time,
        tuple(stats.trace),
        stats.messages,
        stats.engine_cost,
        stats.time_to_first_answer,
        stats.answers,
        stats.subresult_cache_hits,
        per_source,
    )


def check_case_on_lake(
    lake: "SemanticDataLake",
    query_text: str,
    *,
    exact: bool = True,
    configs: list[EngineConfig] | None = None,
    check_invariants: bool = True,
    seed: int = 11,
) -> list[Mismatch]:
    """Run *query_text* under every configuration and diff vs the oracle."""
    query = parse_query(query_text)
    oracle = ReferenceEvaluator(lake)
    expected_full = oracle.answers_unlimited(query)
    # Triple-wise decomposition intentionally rejects OPTIONAL/UNION.
    supports_triple = not (query.where.optionals or query.where.unions)

    mismatches: list[Mismatch] = []
    # (policy, cache, runtime) -> exec mode -> per-run (answers, stats sig);
    # pairs of exec modes sharing a base cell are compared bitwise below.
    exec_runs: dict[tuple, dict[str, list[tuple[list[Solution], tuple]]]] = {}
    for config in configs if configs is not None else default_configs():
        if config.policy.decomposition is DecompositionKind.TRIPLE and not supports_triple:
            continue
        engine = FederatedEngine(
            lake,
            policy=config.policy,
            network=NetworkSetting.no_delay(),
            enable_plan_cache=config.cache,
            enable_subresult_cache=config.cache,
            runtime=config.runtime,
            exec=config.exec,
        )
        runs: list[list[Solution]] = []
        recorded: list[tuple[list[Solution], tuple]] = []
        failed = False
        for run_index in range(2 if config.cache else 1):
            label = f"{config.name}#{'warm' if run_index else 'cold'}"
            try:
                answers, stats = engine.run(query_text, seed=seed)
            except ReproError as exc:
                mismatches.append(
                    Mismatch(config.name, "error", f"{label}: {type(exc).__name__}: {exc}")
                )
                failed = True
                break
            runs.append(answers)
            recorded.append((answers, _stats_signature(stats)))
            mismatches.extend(
                compare_answers(query, expected_full, answers, exact, label)
            )
        if len(runs) == 2 and Counter(map(solution_key, runs[0])) != Counter(
            map(solution_key, runs[1])
        ):
            mismatches.append(
                Mismatch(config.name, "cache", "warm-cache answers differ from cold run")
            )
        if not failed:
            exec_runs.setdefault(
                (config.policy, config.cache, config.runtime), {}
            )[config.exec] = recorded
        if check_invariants and not failed:
            violations = check_plan(engine.plan(query_text), lake)
            mismatches.extend(
                Mismatch(config.name, "invariant", violation) for violation in violations
            )

    # Exec-mode bit-identity: for each base cell that ran under both data
    # planes, cold (and warm, when cached) runs must agree bitwise — same
    # answer sequence, same virtual-time stats.
    for (policy, cache, runtime), by_exec in exec_runs.items():
        if "row" not in by_exec or "batch" not in by_exec:
            continue
        cell = f"{policy.name}/{'cache' if cache else 'nocache'}/{runtime}"
        for run_index, (row_run, batch_run) in enumerate(
            zip(by_exec["row"], by_exec["batch"])
        ):
            phase = "warm" if run_index else "cold"
            if row_run[0] != batch_run[0]:
                mismatches.append(
                    Mismatch(
                        cell,
                        "exec",
                        f"{phase}: batch answers differ from row answers in "
                        "content or order",
                    )
                )
            if row_run[1] != batch_run[1]:
                mismatches.append(
                    Mismatch(
                        cell,
                        "exec",
                        f"{phase}: batch virtual-time stats differ from row "
                        f"stats: row={row_run[1]!r} batch={batch_run[1]!r}",
                    )
                )
    return mismatches


def check_fuzz_case(
    case: FuzzCase,
    *,
    configs: list[EngineConfig] | None = None,
    check_invariants: bool = True,
    seed: int = 11,
) -> list[Mismatch]:
    """Build the case's lake and run the full differential check."""
    lake = build_lake(case.layout)
    return check_case_on_lake(
        lake,
        case.sparql(),
        exact=not case.layout.has_replicas,
        configs=configs,
        check_invariants=check_invariants,
        seed=seed,
    )
