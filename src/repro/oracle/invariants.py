"""Plan-invariant checker — structural audits for every produced plan.

Deliberately *independent* of :mod:`repro.core.heuristics`: the placement
and merge rules are re-derived here from the physical-design catalog, the
policy and the network setting, so a bug (or an injected fault) in the
planner's implementation of Heuristic 1/2 is caught by disagreement rather
than reproduced.  The checks:

1. **Coverage** — every star-shaped sub-query of the decomposition is
   covered by exactly one plan unit (merged group or selected star).
2. **Heuristic 1** — a merged group only contains same-endpoint relational
   stars, pairwise connected through column-backed join variables with an
   index on at least one side, within the policy's table budget.
3. **Heuristic 2** — every logged filter placement matches the placement
   the policy/catalog/network state implies.
4. **Join orderings** — dependent joins bind their join variable on the
   outer side before probing the inner service; hash joins only key on
   variables both sides can produce.

The planner runs these automatically in debug-validate mode (construct the
engine/planner with ``debug_validate=True`` or set
``REPRO_DEBUG_VALIDATE=1``), raising
:class:`~repro.exceptions.InvariantViolation` on any finding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.decomposer import Decomposition, StarSubquery
from ..core.heuristics import MergeGroup
from ..core.policy import FilterPlacement
from ..core.source_selection import SelectedStar
from ..exceptions import InvariantViolation, TranslationError
from ..federation.operators import (
    DependentJoin,
    Distinct,
    EngineFilter,
    FedOperator,
    LeftJoin,
    Limit,
    OrderBy,
    Project,
    ServiceNode,
    SymmetricHashJoin,
    Union,
)
from ..mapping.translator import (
    can_translate_filter,
    filter_columns,
    stars_variable_columns,
)
from ..sparql.algebra import Filter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.planner import FederatedPlan
    from ..datalake.lake import SemanticDataLake


def check_plan(plan: "FederatedPlan", lake: "SemanticDataLake") -> list[str]:
    """Audit *plan* against the planner invariants; returns violations."""
    violations: list[str] = []
    violations.extend(_check_coverage(plan))
    for unit in plan.units:
        if isinstance(unit, MergeGroup):
            violations.extend(_check_merge_group(unit, plan, lake))
    violations.extend(_check_filter_placements(plan, lake))
    violations.extend(_check_join_orderings(plan.root))
    return violations


def assert_plan_valid(plan: "FederatedPlan", lake: "SemanticDataLake") -> None:
    """Raise :class:`InvariantViolation` when :func:`check_plan` finds any."""
    violations = check_plan(plan, lake)
    if violations:
        raise InvariantViolation(violations)


# ---------------------------------------------------------------------------
# 1. Every SSQ covered by exactly one plan unit
# ---------------------------------------------------------------------------


def _decomposition_stars(decomposition: Decomposition) -> list[StarSubquery]:
    stars = list(decomposition.subqueries)
    for optional in decomposition.optional_groups:
        stars.extend(_decomposition_stars(optional))
    for branch in decomposition.union_branches:
        stars.extend(_decomposition_stars(branch))
    return stars


def _unit_stars(unit: MergeGroup | SelectedStar) -> list[StarSubquery]:
    if isinstance(unit, MergeGroup):
        return list(unit.stars)
    return [unit.star]


def _check_coverage(plan: "FederatedPlan") -> list[str]:
    violations = []
    expected = _decomposition_stars(plan.decomposition)
    covered: dict[int, int] = {}
    for unit in plan.units:
        for star in _unit_stars(unit):
            covered[id(star)] = covered.get(id(star), 0) + 1
    for star in expected:
        count = covered.pop(id(star), 0)
        if count == 0:
            violations.append(f"star {star.subject_name} is covered by no plan unit")
        elif count > 1:
            violations.append(
                f"star {star.subject_name} is covered by {count} plan units"
            )
    if covered:
        violations.append(
            f"{len(covered)} plan unit star(s) do not belong to the decomposition"
        )
    return violations


# ---------------------------------------------------------------------------
# 2. Heuristic 1 preconditions on every merged group
# ---------------------------------------------------------------------------


def _check_merge_group(
    group: MergeGroup, plan: "FederatedPlan", lake: "SemanticDataLake"
) -> list[str]:
    violations = []
    label = f"merge group on {group.source_id!r}"
    catalog = lake.physical_catalog
    if not plan.policy.merge_same_source_joins:
        violations.append(f"{label}: policy does not allow Heuristic 1 merges")

    for candidate in group.candidates:
        if candidate.source_id != group.source_id:
            violations.append(
                f"{label}: member star selected on foreign source {candidate.source_id!r}"
            )
        if candidate.kind != "rdb":
            violations.append(f"{label}: member star is not relational")

    stars = group.stars_with_mappings()
    columns_per_star: list[dict[str, tuple[str, str]] | None] = []
    for star, mapping in stars:
        try:
            columns_per_star.append(stars_variable_columns([(star, mapping)]))
        except TranslationError as exc:
            columns_per_star.append(None)
            violations.append(f"{label}: member star not translatable ({exc})")

    # Pairwise: every shared join variable must be column-backed on both
    # sides and indexed on at least one (the heuristic's core condition).
    connected = {0} if stars else set()
    for a in range(len(stars)):
        for b in range(a + 1, len(stars)):
            star_a, __ = stars[a]
            star_b, __ = stars[b]
            shared = star_a.join_variables(star_b)
            if not shared:
                continue
            connected.update((a, b))
            columns_a, columns_b = columns_per_star[a], columns_per_star[b]
            if columns_a is None or columns_b is None:
                continue
            for variable in sorted(shared):
                if variable not in columns_a or variable not in columns_b:
                    violations.append(
                        f"{label}: join variable ?{variable} is not column-backed "
                        f"on both merged stars"
                    )
                    continue
                table_a, column_a = columns_a[variable]
                table_b, column_b = columns_b[variable]
                if not (
                    catalog.is_indexed(group.source_id, table_a, column_a)
                    or catalog.is_indexed(group.source_id, table_b, column_b)
                ):
                    violations.append(
                        f"{label}: merged on unindexed join attribute ?{variable} "
                        f"({table_a}.{column_a} / {table_b}.{column_b})"
                    )
    # Connectivity: growing the group star by star requires each member to
    # share a variable with some other member.
    for position in range(len(stars)):
        if position not in connected and len(stars) > 1:
            violations.append(
                f"{label}: member star {stars[position][0].subject_name} shares no "
                f"join variable with the rest of the group"
            )

    tables = {mapping.table for __, mapping in stars}
    satellites = 0
    for star, mapping in stars:
        for pattern in star.patterns:
            if mapping.has_predicate(pattern.predicate):
                if mapping.predicate_mapping(pattern.predicate).kind == "multivalued":
                    satellites += 1
    if len(tables) + satellites > plan.policy.max_merged_tables:
        violations.append(
            f"{label}: joins {len(tables) + satellites} tables, over the policy "
            f"budget of {plan.policy.max_merged_tables}"
        )
    return violations


# ---------------------------------------------------------------------------
# 3. Heuristic 2: logged filter placements match the policy/catalog/network
# ---------------------------------------------------------------------------


def _expected_placement(
    filter_: Filter,
    stars,
    source_id: str,
    plan: "FederatedPlan",
    lake: "SemanticDataLake",
) -> bool | None:
    """Re-derive where this filter belongs (True = pushed to the source).

    Returns ``None`` when the placement is legitimately open: under
    :attr:`FilterPlacement.COST` the optimizer may put any *translatable*
    filter on either side, so only structural legality is checkable (an
    untranslatable filter must still stay at the engine).
    """
    placement = plan.policy.filter_placement
    if placement is FilterPlacement.ENGINE:
        return False
    if not can_translate_filter(filter_, stars):
        return False
    if placement is FilterPlacement.COST:
        return None
    if placement is FilterPlacement.SOURCE:
        return True
    columns = filter_columns(filter_, stars)
    if not columns:
        return False
    catalog = lake.physical_catalog
    if any(not catalog.is_indexed(source_id, table, column) for table, column in columns):
        return False
    if placement is FilterPlacement.SOURCE_IF_INDEXED:
        return True
    return plan.network.is_slow  # FilterPlacement.HEURISTIC2


def _check_filter_placements(plan: "FederatedPlan", lake: "SemanticDataLake") -> list[str]:
    # Context per relational sub-query: which stars (with mappings) a
    # filter was placed against, keyed by source.
    contexts: list[tuple[str, list, list[Filter]]] = []
    for unit in plan.units:
        if isinstance(unit, MergeGroup):
            filters = [f for star in unit.stars for f in star.filters]
            contexts.append((unit.source_id, unit.stars_with_mappings(), filters))
        else:
            for candidate in unit.candidates:
                if candidate.kind != "rdb" or candidate.class_mapping is None:
                    continue
                contexts.append(
                    (
                        candidate.source_id,
                        [(unit.star, candidate.class_mapping)],
                        list(unit.star.filters),
                    )
                )

    violations = []
    for source_id, decision in plan.filter_decisions:
        matched = False
        for context_source, stars, filters in contexts:
            if context_source != source_id or decision.filter not in filters:
                continue
            matched = True
            expected = _expected_placement(decision.filter, stars, source_id, plan, lake)
            if expected is not None and expected != decision.pushed:
                want = "source" if expected else "engine"
                got = "source" if decision.pushed else "engine"
                violations.append(
                    f"filter {decision.filter.n3()} on {source_id!r}: placed at "
                    f"{got}, but policy/catalog/network imply {want}"
                )
            break
        if not matched:
            violations.append(
                f"filter decision for {decision.filter.n3()} references no plan "
                f"unit on source {source_id!r}"
            )
    return violations


# ---------------------------------------------------------------------------
# 4. Join orderings respect variable bindings
# ---------------------------------------------------------------------------


def _certain_variables(operator: FedOperator) -> set[str] | None:
    """Variables bound in *every* solution the operator emits.

    Returns ``None`` when unknown (a service node the planner did not
    annotate), which disables downstream checks instead of guessing.
    """
    if isinstance(operator, ServiceNode):
        return set(operator.variables) if operator.variables else None
    if isinstance(operator, (SymmetricHashJoin, DependentJoin)):
        left, right = operator.children()
        a, b = _certain_variables(left), _certain_variables(right)
        if a is None or b is None:
            return None
        return a | b
    if isinstance(operator, LeftJoin):
        return _certain_variables(operator.left)
    if isinstance(operator, Union):
        parts = [_certain_variables(child) for child in operator.inputs]
        if any(part is None for part in parts) or not parts:
            return None
        certain = parts[0]
        for part in parts[1:]:
            certain = certain & part
        return certain
    if isinstance(operator, Project):
        child = _certain_variables(operator.child)
        if child is None:
            return None
        return child & set(operator.variables)
    if isinstance(operator, (EngineFilter, Distinct, Limit, OrderBy)):
        return _certain_variables(operator.children()[0])
    return None


def _possible_variables(operator: FedOperator) -> set[str] | None:
    """Variables that *may* appear in the operator's solutions."""
    if isinstance(operator, ServiceNode):
        return set(operator.variables) if operator.variables else None
    if isinstance(operator, Project):
        child = _possible_variables(operator.child)
        if child is None:
            return None
        return child & set(operator.variables)
    children = operator.children()
    if not children:
        return None
    parts = [_possible_variables(child) for child in children]
    if any(part is None for part in parts):
        return None
    union: set[str] = set()
    for part in parts:
        union |= part
    return union


def _check_join_orderings(root: FedOperator) -> list[str]:
    violations = []

    def visit(operator: FedOperator) -> None:
        if isinstance(operator, DependentJoin):
            if not operator.inner.supports_restriction:
                violations.append(
                    f"dependent join probes service {operator.inner.source_id!r} "
                    f"which does not support restriction"
                )
            certain = _certain_variables(operator.outer)
            if certain is not None and operator.join_variable not in certain:
                violations.append(
                    f"dependent join on ?{operator.join_variable} but the outer "
                    f"input does not always bind it"
                )
        if isinstance(operator, SymmetricHashJoin):
            left = _possible_variables(operator.left)
            right = _possible_variables(operator.right)
            for variable in operator.join_variables:
                if left is not None and variable not in left:
                    violations.append(
                        f"hash join keys on ?{variable}, absent from its left input"
                    )
                if right is not None and variable not in right:
                    violations.append(
                        f"hash join keys on ?{variable}, absent from its right input"
                    )
        for child in operator.children():
            visit(child)

    visit(root)
    return violations
