"""Correctness tooling: naive oracle, fuzzer, differential runner, invariants.

The subsystem behind ``repro fuzz`` and the planner's debug-validate mode.
See DESIGN.md ("Correctness tooling") for the architecture.
"""

from .differential import (
    EngineConfig,
    Mismatch,
    check_case_on_lake,
    check_fuzz_case,
    compare_answers,
    default_configs,
)
from .fuzz import FuzzFailure, FuzzReport, dump_failure_traces, run_fuzz
from .generator import (
    FuzzCase,
    LakeLayout,
    QuerySpec,
    StarSpec,
    build_lake,
    generate_graphs,
    random_case,
    random_layout,
    random_query,
)
from .invariants import assert_plan_valid, check_plan
from .reference import ReferenceEvaluator, materialize_lake, reference_answers
from .shrinker import shrink_case

__all__ = [
    "EngineConfig",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "LakeLayout",
    "Mismatch",
    "QuerySpec",
    "ReferenceEvaluator",
    "StarSpec",
    "assert_plan_valid",
    "build_lake",
    "check_case_on_lake",
    "check_fuzz_case",
    "check_plan",
    "compare_answers",
    "default_configs",
    "dump_failure_traces",
    "generate_graphs",
    "materialize_lake",
    "random_case",
    "random_layout",
    "random_query",
    "reference_answers",
    "run_fuzz",
    "shrink_case",
]
