"""Shrink a failing fuzz case to a minimal reproducer.

Greedy delta debugging over the *structured* case (not the SPARQL text):
each round tries a list of reductions — drop a star, a pattern, a filter,
a modifier, a replica, an index, shrink the data — and keeps the first one
that still fails with (at least) the original mismatch kinds.  Rounds
repeat until no reduction applies, so regression corpus entries stay small
enough to read.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator

from .differential import Mismatch
from .generator import FuzzCase


def _signature(mismatches: list[Mismatch]) -> frozenset[str]:
    return frozenset(mismatch.kind for mismatch in mismatches)


def _reductions(case: FuzzCase) -> Iterator[FuzzCase]:
    """Yield candidate simplifications, roughly biggest-cut-first."""
    spec = case.query
    layout = case.layout

    def clone(**query_overrides) -> FuzzCase:
        copied = copy.deepcopy(case)
        for name, value in query_overrides.items():
            setattr(copied.query, name, value)
        return copied

    # Structure first: promoting a UNION branch or dropping a star removes
    # the most surface area per step.
    for branch in spec.union:
        yield clone(union=[], stars=copy.deepcopy(branch))
    if spec.optional:
        yield clone(optional=[], optional_filters=[])
    if len(spec.stars) > 1:
        for position in range(len(spec.stars)):
            kept = [copy.deepcopy(s) for i, s in enumerate(spec.stars) if i != position]
            yield clone(stars=kept)
    for star_index, star in enumerate(spec.stars):
        if len(star.patterns) <= 1:
            continue
        for pattern_index in range(len(star.patterns)):
            copied = copy.deepcopy(case)
            del copied.query.stars[star_index].patterns[pattern_index]
            yield copied
    for position in range(len(spec.filters)):
        kept_filters = [f for i, f in enumerate(spec.filters) if i != position]
        yield clone(filters=kept_filters)
    for position in range(len(spec.optional_filters)):
        kept = [f for i, f in enumerate(spec.optional_filters) if i != position]
        yield clone(optional_filters=kept)

    # Modifiers.
    if spec.limit is not None or spec.offset is not None:
        yield clone(limit=None, offset=None)
    if spec.order_by is not None:
        yield clone(order_by=None, order_desc=False)
    if spec.distinct:
        yield clone(distinct=False)
    if spec.projection is not None:
        yield clone(projection=None)

    # Layout: fewer replicas, indexes, satellite tables, rows.
    if layout.replicas:
        copied = copy.deepcopy(case)
        copied.layout.replicas = {}
        yield copied
    for position in range(len(layout.indexes)):
        copied = copy.deepcopy(case)
        del copied.layout.indexes[position]
        yield copied
    if layout.multivalued_links:
        copied = copy.deepcopy(case)
        copied.layout.multivalued_links = False
        yield copied
    for attribute in ("n_genes", "n_diseases", "n_probes"):
        count = getattr(layout, attribute)
        if count > 2:
            copied = copy.deepcopy(case)
            setattr(copied.layout, attribute, max(2, count // 2))
            yield copied


def shrink_case(
    case: FuzzCase,
    check: Callable[[FuzzCase], list[Mismatch]],
    *,
    max_attempts: int = 300,
) -> FuzzCase:
    """Minimize *case* while `check` keeps reporting the original failure.

    ``check`` runs the differential harness; a reduction is accepted when
    its mismatch kinds still include every kind of the original failure
    (so an answer-divergence cannot silently shrink into, say, a parse
    error that would "fail" for an unrelated reason).
    """
    try:
        baseline = _signature(check(case))
    except Exception:
        return case
    if not baseline:
        return case

    current = case
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _reductions(current):
            attempts += 1
            try:
                mismatches = check(candidate)
            except Exception:
                mismatches = []
            if baseline <= _signature(mismatches):
                current = candidate
                improved = True
                break
            if attempts >= max_attempts:
                break
    current.name = f"{case.name}-shrunk"
    return current
