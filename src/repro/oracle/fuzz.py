"""The fuzz campaign driver behind ``repro fuzz --seed N --iters K``.

Draws seeded random (layout, query) cases, runs each through the
differential harness, and — on failure — shrinks the case and writes a
JSON reproducer into the regression corpus directory so the bug becomes a
permanent parametrized test.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Callable

from .differential import EngineConfig, Mismatch, check_fuzz_case, default_configs
from .generator import FuzzCase, random_case
from .shrinker import shrink_case


@dataclass
class FuzzFailure:
    """One failing case: as drawn, as shrunk, and why."""

    case: FuzzCase
    shrunk: FuzzCase
    mismatches: list[Mismatch]
    written_to: str | None = None
    #: Chrome trace-event dumps of the mismatching configurations
    #: (written when the campaign ran with a ``trace_dir``).
    trace_files: list[str] = field(default_factory=list)


@dataclass
class FuzzReport:
    """The outcome of one fuzz campaign."""

    seed: int
    iterations: int
    configurations: int
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz campaign seed={self.seed}: {self.iterations} cases x "
            f"{self.configurations} configurations, {len(self.failures)} failure(s)"
        ]
        for failure in self.failures:
            lines.append(f"  {failure.case.name}:")
            for mismatch in failure.mismatches[:5]:
                lines.append(f"    {mismatch.describe()}")
            if len(failure.mismatches) > 5:
                lines.append(f"    ... and {len(failure.mismatches) - 5} more")
            if failure.written_to:
                lines.append(f"    reproducer: {failure.written_to}")
            for trace_file in failure.trace_files:
                lines.append(f"    trace: {trace_file}")
        return "\n".join(lines)


def dump_failure_traces(
    case: FuzzCase,
    mismatches: list[Mismatch],
    configs: list[EngineConfig],
    trace_dir: str | pathlib.Path,
    stem: str,
    seed: int = 11,
) -> list[str]:
    """Re-run each mismatching configuration observed; write Chrome traces.

    One trace file per distinct mismatching configuration (mismatch labels
    carry a ``#cold``/``#warm`` run suffix that is stripped to find the
    configuration).  Configurations that crash outright are skipped — the
    reproducer file already captures those.  Returns the written paths.
    """
    from ..core.engine import FederatedEngine
    from ..network.delays import NetworkSetting
    from ..obs import chrome_trace_json
    from .generator import build_lake

    by_name = {config.name: config for config in configs}
    wanted: list[EngineConfig] = []
    for mismatch in mismatches:
        name = mismatch.config.split("#", 1)[0]
        config = by_name.get(name)
        if config is not None and config not in wanted:
            wanted.append(config)
    if not wanted:
        return []
    directory = pathlib.Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    lake = build_lake(case.layout)
    written: list[str] = []
    for config in wanted:
        engine = FederatedEngine(
            lake,
            policy=config.policy,
            network=NetworkSetting.no_delay(),
            enable_plan_cache=config.cache,
            enable_subresult_cache=config.cache,
            runtime=config.runtime,
            exec=config.exec,
        )
        try:
            __, __, observation = engine.observe(case.sparql(), seed=seed)
        except Exception:  # pragma: no cover - crashing configs are skipped
            continue
        safe = config.name.replace("/", "_")
        path = directory / f"{stem}_{safe}.trace.json"
        path.write_text(
            chrome_trace_json([(config.name, observation)], indent=2) + "\n",
            encoding="utf-8",
        )
        written.append(str(path))
    return written


def run_fuzz(
    seed: int,
    iters: int,
    *,
    regressions_dir: str | pathlib.Path | None = None,
    configs: list[EngineConfig] | None = None,
    runtimes: tuple[str, ...] = ("sequential",),
    execs: tuple[str, ...] = ("row",),
    policies=None,
    check_invariants: bool = True,
    shrink: bool = True,
    on_case: Callable[[int, FuzzCase, list[Mismatch]], None] | None = None,
    trace_dir: str | pathlib.Path | None = None,
) -> FuzzReport:
    """Run *iters* differential cases; returns the campaign report.

    Args:
        seed: campaign seed; case ``i`` is drawn from ``Random((seed, i))``.
        iters: number of (layout, query) cases to draw.
        regressions_dir: where shrunk reproducers are written (created on
            first failure); ``None`` disables writing.
        configs: configuration matrix override (default: the full matrix).
        runtimes: execution-runtime axis of the default matrix (ignored
            when an explicit *configs* override is given).
        execs: data-plane axis of the default matrix ("row"/"batch";
            ignored when an explicit *configs* override is given).  With
            both modes present, every base cell additionally gets a
            row-vs-batch bitwise identity check on answers and stats.
        policies: policy axis of the default matrix — a list of
            :class:`~repro.core.policy.PlanPolicy` instances (default:
            the five heuristic base policies; ignored when an explicit
            *configs* override is given).
        check_invariants: also audit every produced plan.
        shrink: minimize failing cases before reporting/writing them.
        on_case: progress callback ``(index, case, mismatches)``.
        trace_dir: when set, every failure's mismatching configurations are
            re-run under observation and their Chrome traces written here —
            the forensic artifact CI uploads alongside the reproducer.
    """
    if configs is None:
        configs = default_configs(runtimes=runtimes, execs=execs, policies=policies)
    report = FuzzReport(seed=seed, iterations=iters, configurations=len(configs))

    def check(case: FuzzCase) -> list[Mismatch]:
        return check_fuzz_case(
            case, configs=configs, check_invariants=check_invariants
        )

    for index in range(iters):
        case = random_case(seed, index)
        mismatches = check(case)
        if on_case is not None:
            on_case(index, case, mismatches)
        if not mismatches:
            continue
        shrunk = shrink_case(case, check) if shrink else case
        shrunk_mismatches = check(shrunk) if shrink else mismatches
        failure = FuzzFailure(case=case, shrunk=shrunk, mismatches=shrunk_mismatches)
        if regressions_dir is not None:
            directory = pathlib.Path(regressions_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"fuzz_seed{seed}_case{index}.json"
            shrunk.description = (
                shrunk.description
                or "shrunk fuzz reproducer; kinds: "
                + ", ".join(sorted({m.kind for m in shrunk_mismatches}))
            )
            path.write_text(shrunk.to_json() + "\n", encoding="utf-8")
            failure.written_to = str(path)
        if trace_dir is not None:
            failure.trace_files = dump_failure_traces(
                shrunk,
                shrunk_mismatches,
                configs,
                trace_dir,
                f"fuzz_seed{seed}_case{index}",
            )
        report.failures.append(failure)
    return report
