"""The fuzz campaign driver behind ``repro fuzz --seed N --iters K``.

Draws seeded random (layout, query) cases, runs each through the
differential harness, and — on failure — shrinks the case and writes a
JSON reproducer into the regression corpus directory so the bug becomes a
permanent parametrized test.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Callable

from .differential import EngineConfig, Mismatch, check_fuzz_case, default_configs
from .generator import FuzzCase, random_case
from .shrinker import shrink_case


@dataclass
class FuzzFailure:
    """One failing case: as drawn, as shrunk, and why."""

    case: FuzzCase
    shrunk: FuzzCase
    mismatches: list[Mismatch]
    written_to: str | None = None


@dataclass
class FuzzReport:
    """The outcome of one fuzz campaign."""

    seed: int
    iterations: int
    configurations: int
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz campaign seed={self.seed}: {self.iterations} cases x "
            f"{self.configurations} configurations, {len(self.failures)} failure(s)"
        ]
        for failure in self.failures:
            lines.append(f"  {failure.case.name}:")
            for mismatch in failure.mismatches[:5]:
                lines.append(f"    {mismatch.describe()}")
            if len(failure.mismatches) > 5:
                lines.append(f"    ... and {len(failure.mismatches) - 5} more")
            if failure.written_to:
                lines.append(f"    reproducer: {failure.written_to}")
        return "\n".join(lines)


def run_fuzz(
    seed: int,
    iters: int,
    *,
    regressions_dir: str | pathlib.Path | None = None,
    configs: list[EngineConfig] | None = None,
    runtimes: tuple[str, ...] = ("sequential",),
    check_invariants: bool = True,
    shrink: bool = True,
    on_case: Callable[[int, FuzzCase, list[Mismatch]], None] | None = None,
) -> FuzzReport:
    """Run *iters* differential cases; returns the campaign report.

    Args:
        seed: campaign seed; case ``i`` is drawn from ``Random((seed, i))``.
        iters: number of (layout, query) cases to draw.
        regressions_dir: where shrunk reproducers are written (created on
            first failure); ``None`` disables writing.
        configs: configuration matrix override (default: the full matrix).
        runtimes: execution-runtime axis of the default matrix (ignored
            when an explicit *configs* override is given).
        check_invariants: also audit every produced plan.
        shrink: minimize failing cases before reporting/writing them.
        on_case: progress callback ``(index, case, mismatches)``.
    """
    if configs is None:
        configs = default_configs(runtimes=runtimes)
    report = FuzzReport(seed=seed, iterations=iters, configurations=len(configs))

    def check(case: FuzzCase) -> list[Mismatch]:
        return check_fuzz_case(
            case, configs=configs, check_invariants=check_invariants
        )

    for index in range(iters):
        case = random_case(seed, index)
        mismatches = check(case)
        if on_case is not None:
            on_case(index, case, mismatches)
        if not mismatches:
            continue
        shrunk = shrink_case(case, check) if shrink else case
        shrunk_mismatches = check(shrunk) if shrink else mismatches
        failure = FuzzFailure(case=case, shrunk=shrunk, mismatches=shrunk_mismatches)
        if regressions_dir is not None:
            directory = pathlib.Path(regressions_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"fuzz_seed{seed}_case{index}.json"
            shrunk.description = (
                shrunk.description
                or "shrunk fuzz reproducer; kinds: "
                + ", ".join(sorted({m.kind for m in shrunk_mismatches}))
            )
            path.write_text(shrunk.to_json() + "\n", encoding="utf-8")
            failure.written_to = str(path)
        report.failures.append(failure)
    return report
