"""The naive reference evaluator — slow, obviously correct.

The whole paper rests on one invariant: physical-design-aware and -unaware
QEPs return the *same answers* at different speeds.  This module provides
the ground truth both are compared against: the entire lake is materialized
into a single in-memory RDF graph (relational members are de-normalized
back to triples through their mappings, native graphs are unioned in) and
the SPARQL query is evaluated directly by the local evaluator
(:mod:`repro.sparql.bgp`).  No decomposition, no source selection, no
heuristics, no caches, no network — nothing the planner does can influence
the result.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from ..federation.answers import Solution
from ..federation.endpoints import RDFSource, RelationalSource
from ..mapping.materializer import materialize_source
from ..rdf.graph import Graph
from ..sparql.algebra import SelectQuery
from ..sparql.bgp import evaluate_query
from ..sparql.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - avoids an oracle <-> datalake cycle
    from ..datalake.lake import SemanticDataLake


def materialize_lake(lake: SemanticDataLake) -> Graph:
    """Union every member source of *lake* into one RDF graph.

    Relational members are reverse-materialized through their mappings;
    native RDF members contribute their triples as-is.  Replicated sources
    collapse naturally because a :class:`~repro.rdf.graph.Graph` is a set.
    """
    graph = Graph(f"{lake.name}-materialized")
    for source in lake.sources():
        if isinstance(source, RelationalSource):
            graph.add_all(materialize_source(source.database, source.mapping))
        else:
            assert isinstance(source, RDFSource)
            graph.add_all(source.graph)
    return graph


class ReferenceEvaluator:
    """Answers SPARQL queries against the materialized lake.

    The materialized graph is computed lazily and kept for the lake's
    current catalog version; any write to any member source invalidates it.
    """

    def __init__(self, lake: SemanticDataLake):
        self.lake = lake
        self._graph: Graph | None = None
        self._graph_version: tuple | None = None

    @property
    def graph(self) -> Graph:
        version = self.lake.catalog_version()
        if self._graph is None or self._graph_version != version:
            self._graph = materialize_lake(self.lake)
            self._graph_version = version
        return self._graph

    def answers(self, query: SelectQuery | str) -> list[Solution]:
        """The query's reference answers (full modifier pipeline)."""
        if isinstance(query, str):
            query = parse_query(query)
        return list(evaluate_query(self.graph, query))

    def answers_unlimited(self, query: SelectQuery | str) -> list[Solution]:
        """Reference answers with LIMIT/OFFSET stripped.

        The differential runner compares sliced executions against the
        *complete* answer set, because LIMIT without a total order may
        legitimately select different rows in different plans.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if query.limit is None and query.offset is None:
            return self.answers(query)
        unlimited = replace(query, limit=None, offset=None)
        return list(evaluate_query(self.graph, unlimited))


def reference_answers(lake: SemanticDataLake, query: SelectQuery | str) -> list[Solution]:
    """One-shot convenience: materialize *lake* and evaluate *query*."""
    return ReferenceEvaluator(lake).answers(query)
