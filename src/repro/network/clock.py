"""Clocks: virtual (deterministic, instant) and real (wall-clock sleeps).

The paper produces its delays with ``time.sleep``; the reproduction defaults
to a :class:`VirtualClock` that *accounts* the same durations without
sleeping, making experiment runs deterministic and fast.  A
:class:`RealClock` is provided for demos that want to feel the latency.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """The time source every component of one engine run shares."""

    def now(self) -> float:
        """Current time in seconds (monotonic)."""

    def sleep(self, seconds: float) -> None:
        """Advance time by *seconds* (waiting for real clocks)."""

    def advance_to(self, timestamp: float) -> None:
        """Move forward to *timestamp*; a no-op when already past it.

        The event scheduler uses this to synchronise timelines: an engine
        clock jumps to an event's availability time, and a producer task's
        clock jumps to the moment its consumer resumed it.
        """


class VirtualClock:
    """Deterministic simulated time starting at zero."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        if timestamp > self._now:
            self._now = timestamp

    def reset(self, start: float = 0.0) -> None:
        self._now = start

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"


class RealClock:
    """Wall-clock time via :func:`time.monotonic` / :func:`time.sleep`."""

    def __init__(self):
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def advance_to(self, timestamp: float) -> None:
        remaining = timestamp - self.now()
        if remaining > 0:
            time.sleep(remaining)

    def __repr__(self) -> str:
        return f"RealClock(now={self.now():.6f})"
