"""Network delay models — the paper's four simulated network settings.

The paper delays the retrieval of each answer from a source by a sample of
``numpy.random.gamma(alpha, beta)`` milliseconds:

* **No Delay** — perfect network.
* **Gamma 1** — fast: Γ(α=1, β=0.3), mean 0.3 ms per message.
* **Gamma 2** — medium: Γ(α=3, β=1), mean 3 ms per message.
* **Gamma 3** — slow: Γ(α=3, β=1.5), mean 4.5 ms per message.

Heuristic 2 depends on a notion of "the network speed is low"; a
:class:`NetworkSetting` therefore classifies itself via its mean latency
against a configurable threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Mean per-message latency (seconds) at which a network counts as slow.
DEFAULT_SLOW_THRESHOLD = 0.002


class DelayModel:
    """Per-message delay distribution; samples are in seconds."""

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def sample_block(self, rng: np.random.Generator, n: int) -> list[float]:
        """*n* consecutive samples, bit-identical to *n* ``sample`` calls.

        The batch execution mode buffers delays through this; subclasses
        with a vectorizable distribution override it, and the equivalence
        to the scalar sequence is pinned by tests.
        """
        return [self.sample(rng) for __ in range(n)]

    @property
    def mean_latency(self) -> float:
        """Expected delay per message in seconds."""
        raise NotImplementedError


@dataclass(frozen=True)
class NoDelay(DelayModel):
    """The perfect network."""

    def sample(self, rng: np.random.Generator) -> float:
        return 0.0

    def sample_block(self, rng: np.random.Generator, n: int) -> list[float]:
        return [0.0] * n

    @property
    def mean_latency(self) -> float:
        return 0.0

    def __str__(self) -> str:
        return "NoDelay"


@dataclass(frozen=True)
class FixedDelay(DelayModel):
    """A constant per-message delay (useful in tests)."""

    seconds: float

    def sample(self, rng: np.random.Generator) -> float:
        return self.seconds

    def sample_block(self, rng: np.random.Generator, n: int) -> list[float]:
        return [self.seconds] * n

    @property
    def mean_latency(self) -> float:
        return self.seconds

    def __str__(self) -> str:
        return f"Fixed({self.seconds * 1000:.3f}ms)"


@dataclass(frozen=True)
class GammaDelay(DelayModel):
    """Gamma-distributed delay; *beta_ms* is the scale in milliseconds.

    Matches the paper's use of ``numpy.random.gamma(alpha, beta)`` with the
    result interpreted as milliseconds.
    """

    alpha: float
    beta_ms: float

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.alpha, self.beta_ms)) / 1000.0

    def sample_block(self, rng: np.random.Generator, n: int) -> list[float]:
        # Generator.gamma(size=n) advances the bit stream exactly like n
        # scalar draws, and the elementwise /1000.0 is the same IEEE op as
        # the scalar division — so this is draw-for-draw bit-identical.
        return (rng.gamma(self.alpha, self.beta_ms, size=n) / 1000.0).tolist()

    @property
    def mean_latency(self) -> float:
        return self.alpha * self.beta_ms / 1000.0

    def __str__(self) -> str:
        return f"Gamma(alpha={self.alpha}, beta={self.beta_ms}ms)"


@dataclass(frozen=True)
class ScaledDelay(DelayModel):
    """An inner delay model with every sample multiplied by a factor.

    The doctor's regression-injection harness: scaling consumes exactly
    the same RNG draws as the inner model (one per message), so a scaled
    run is the same schedule with proportionally slower transfers — the
    controlled "network got slower" counterfactual.
    """

    inner: DelayModel
    factor: float

    def sample(self, rng: np.random.Generator) -> float:
        return self.inner.sample(rng) * self.factor

    def sample_block(self, rng: np.random.Generator, n: int) -> list[float]:
        return [value * self.factor for value in self.inner.sample_block(rng, n)]

    @property
    def mean_latency(self) -> float:
        return self.inner.mean_latency * self.factor

    def __str__(self) -> str:
        return f"Scaled({self.inner} x{self.factor})"


@dataclass(frozen=True)
class NetworkSetting:
    """A named network condition of the experiment grid."""

    name: str
    delay: DelayModel
    slow_threshold: float = DEFAULT_SLOW_THRESHOLD

    @property
    def is_slow(self) -> bool:
        """Whether Heuristic 2 should treat this network as slow."""
        return self.delay.mean_latency >= self.slow_threshold

    @property
    def mean_latency(self) -> float:
        return self.delay.mean_latency

    def __str__(self) -> str:
        return self.name

    # -- the paper's four settings -------------------------------------------

    @classmethod
    def no_delay(cls) -> "NetworkSetting":
        """Perfect network with no or negligible latency."""
        return cls("No Delay", NoDelay())

    @classmethod
    def gamma1(cls) -> "NetworkSetting":
        """Fast network: Γ(1, 0.3), average latency 0.3 ms."""
        return cls("Gamma 1", GammaDelay(alpha=1.0, beta_ms=0.3))

    @classmethod
    def gamma2(cls) -> "NetworkSetting":
        """Medium fast network: Γ(3, 1), average latency 3 ms."""
        return cls("Gamma 2", GammaDelay(alpha=3.0, beta_ms=1.0))

    @classmethod
    def gamma3(cls) -> "NetworkSetting":
        """Slow network: Γ(3, 1.5), average latency 4.5 ms."""
        return cls("Gamma 3", GammaDelay(alpha=3.0, beta_ms=1.5))

    @classmethod
    def all_settings(cls) -> list["NetworkSetting"]:
        """The experiment grid's four network conditions, fast to slow."""
        return [cls.no_delay(), cls.gamma1(), cls.gamma2(), cls.gamma3()]

    def scaled(self, factor: float) -> "NetworkSetting":
        """This setting with all delay samples multiplied by *factor*."""
        return NetworkSetting(
            name=f"{self.name} x{factor}",
            delay=ScaledDelay(self.delay, factor),
            slow_threshold=self.slow_threshold,
        )

    @classmethod
    def by_name(cls, name: str) -> "NetworkSetting":
        for setting in cls.all_settings():
            if setting.name.lower().replace(" ", "") == name.lower().replace(" ", ""):
                return setting
        raise KeyError(f"unknown network setting {name!r}")
