"""Network simulation: clocks, delay models, channels and the cost model."""

from .channel import Channel, TransferStats
from .clock import Clock, RealClock, VirtualClock
from .costmodel import CostModel, DEFAULT_COST_MODEL
from .delays import (
    DEFAULT_SLOW_THRESHOLD,
    DelayModel,
    FixedDelay,
    GammaDelay,
    NetworkSetting,
    NoDelay,
)

__all__ = [
    "Channel",
    "Clock",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DEFAULT_SLOW_THRESHOLD",
    "DelayModel",
    "FixedDelay",
    "GammaDelay",
    "NetworkSetting",
    "NoDelay",
    "RealClock",
    "TransferStats",
    "VirtualClock",
]
