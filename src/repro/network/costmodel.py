"""The virtual-time cost model.

The paper measures wall-clock time on a real deployment (MySQL containers +
the Ontario engine).  The reproduction replaces wall-clock with *virtual*
time: every unit of work — a row scanned inside an RDBMS, a tuple probed in
the engine's hash join, a message crossing the (simulated) network — charges
a calibrated duration to the shared clock.

The calibration encodes the physical asymmetries the paper's findings rely
on, rather than the findings themselves:

* B-tree probes are much cheaper than scanning when selective
  (``rdb_index_probe`` + per-match fetches vs ``rdb_row_scan`` × N);
* evaluating string *pattern* predicates (LIKE scans) inside the RDBMS is
  per-row far more expensive than filtering at the engine
  (``rdb_string_filter_eval`` > ``engine_filter_eval`` + shipping overhead)
  — the experience behind Heuristic 2;
* every answer shipped from a source pays a fixed serialization overhead
  plus a network-delay sample — the lever behind Heuristic 1 and behind the
  "delays hurt design-unaware plans more" observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual durations, in seconds.

    ``rdb_*`` price work inside a relational source, ``engine_*`` price work
    inside the federated query engine, and ``message_overhead`` prices the
    serialization/deserialization of one answer independent of network
    latency (which the :class:`~repro.network.delays.DelayModel` adds).
    """

    # Relational source (per operation)
    rdb_row_scan: float = 1.0e-6
    rdb_index_probe: float = 8.0e-6
    rdb_index_row_fetch: float = 1.2e-6
    rdb_filter_eval: float = 0.6e-6
    rdb_string_filter_eval: float = 30.0e-6
    rdb_hash_row: float = 1.0e-6
    rdb_join_output_row: float = 0.5e-6
    rdb_sort_row: float = 1.5e-6
    rdb_distinct_row: float = 0.5e-6
    rdb_output_row: float = 0.5e-6

    # RDF source (per operation)
    rdf_triple_lookup: float = 1.5e-6
    rdf_output_row: float = 0.5e-6

    # Federated engine (per tuple)
    engine_hash_insert: float = 1.2e-6
    engine_hash_probe: float = 0.8e-6
    engine_filter_eval: float = 1.0e-6
    engine_project_row: float = 0.2e-6
    engine_distinct_row: float = 0.4e-6
    engine_join_output_row: float = 0.3e-6
    engine_sort_row: float = 0.6e-6

    # Transfer
    message_overhead: float = 2.0e-6

    def rdb_price_mapping(self) -> dict[str, float]:
        """Meter-kind -> per-operation price, as one fresh dict.

        The batch executor prices whole count *arrays* against this mapping;
        it must stay the exact dict ``price_rdb_operations`` sums over.
        """
        return {
            "rows_scanned": self.rdb_row_scan,
            "index_probes": self.rdb_index_probe,
            "index_row_fetches": self.rdb_index_row_fetch,
            "filter_evals": self.rdb_filter_eval,
            "string_filter_evals": self.rdb_string_filter_eval,
            "hash_build_rows": self.rdb_hash_row,
            "hash_probe_rows": self.rdb_hash_row,
            "join_output_rows": self.rdb_join_output_row,
            "sort_rows": self.rdb_sort_row,
            "distinct_rows": self.rdb_distinct_row,
            "rows_output": self.rdb_output_row,
        }

    def price_rdb_operations(self, counts: Mapping[str, int]) -> float:
        """Price an :class:`~repro.relational.meter.OperationMeter` snapshot."""
        mapping = self.rdb_price_mapping()
        return sum(mapping.get(kind, 0.0) * amount for kind, amount in counts.items())

    def with_overrides(self, **overrides: float) -> "CostModel":
        """A copy of the model with some constants replaced (for ablations)."""
        from dataclasses import replace

        return replace(self, **overrides)


#: The default calibration used by all benchmarks.
DEFAULT_COST_MODEL = CostModel()
