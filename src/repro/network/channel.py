"""A delayed message channel between a source wrapper and the engine.

The channel reproduces the paper's delay injection point: *"Network delays
are simulated within the SQL wrapper of Ontario; delaying the retrieval of
the next answer from the source."*  Each message pulled through the channel
pays one delay sample plus a fixed serialization overhead, charged to the
shared clock, and is counted for the transfer statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, TypeVar

import numpy as np

from .clock import Clock
from .costmodel import CostModel
from .delays import DelayModel, NoDelay

T = TypeVar("T")


@dataclass
class TransferStats:
    """Accounting of what crossed one channel."""

    messages: int = 0
    total_delay: float = 0.0

    def merge(self, other: "TransferStats") -> None:
        self.messages += other.messages
        self.total_delay += other.total_delay


class Channel:
    """Applies network delay + message overhead to an answer stream."""

    def __init__(
        self,
        clock: Clock,
        delay: DelayModel | None = None,
        cost_model: CostModel | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.clock = clock
        self.delay = delay or NoDelay()
        self.cost_model = cost_model or CostModel()
        self.rng = rng or np.random.default_rng()
        self.stats = TransferStats()

    def transfer(self, messages: Iterable[T]) -> Iterator[T]:
        """Stream *messages*, charging delay + overhead per message."""
        for message in messages:
            pause = self.delay.sample(self.rng) + self.cost_model.message_overhead
            self.clock.sleep(pause)
            self.stats.messages += 1
            self.stats.total_delay += pause
            yield message

    def charge_message(self) -> None:
        """Charge one message's cost without carrying a payload (e.g. for
        the request itself or an end-of-stream marker)."""
        pause = self.delay.sample(self.rng) + self.cost_model.message_overhead
        self.clock.sleep(pause)
        self.stats.messages += 1
        self.stats.total_delay += pause
