"""Federation layer: wrappers, adaptive operators, answers and statistics."""

from .answers import ExecutionStats, RunContext, Solution, SourceStats
from .endpoints import DataSource, RDFSource, RelationalSource
from .operators import (
    DependentJoin,
    Distinct,
    EngineFilter,
    FedOperator,
    LeftJoin,
    Limit,
    OrderBy,
    Project,
    ServiceNode,
    SymmetricHashJoin,
    Union,
)
from .wrappers import SPARQLWrapper, SQLWrapper

__all__ = [
    "DataSource",
    "DependentJoin",
    "Distinct",
    "EngineFilter",
    "ExecutionStats",
    "FedOperator",
    "LeftJoin",
    "Limit",
    "OrderBy",
    "Project",
    "RDFSource",
    "RelationalSource",
    "RunContext",
    "SPARQLWrapper",
    "SQLWrapper",
    "ServiceNode",
    "Solution",
    "SourceStats",
    "SymmetricHashJoin",
    "Union",
]
