"""Columnar solution batches: the data plane of the ``exec="batch"`` engine.

The row engine moves one ``dict[str, Term]`` per answer through a chain of
generator frames.  The batch engine keeps the *pull chain* (so every clock
charge and RNG draw happens at exactly the same point as in row mode — the
bit-identity argument in DESIGN.md §12) but replaces the *data* flowing
through it with lightweight handles ``(SolutionBatch, row_index)`` into
shared column vectors.  Building, merging, projecting and deduplicating
solutions then touch O(columns) Python objects instead of O(columns) dict
entries per row, and projections are zero-copy column aliasing.

A :class:`SolutionBatch` stores one column (a plain list of ``Term | None``)
per variable.  ``None`` is a *hole*: the variable is unbound in that row.
Row-mode solutions never map a name to ``None`` (wrappers drop such rows
wholesale and joins omit absent names), so holes unambiguously encode
absence and ``materialize`` can reconstruct the exact row-mode dict.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..rdf.terms import Term
from .answers import DEFAULT_BATCH_SIZE, EXEC_MODES, Solution

__all__ = [
    "EXEC_MODES",
    "DEFAULT_BATCH_SIZE",
    "SolutionBatch",
    "RowView",
    "BatchBuilder",
    "Handle",
    "single_solution_batch",
    "batches_from_solutions",
    "merge_plan",
    "handle_key",
    "handle_identity",
]

#: One shared ``name -> column position`` map per distinct shape.
_NAME_INDEXES: dict[tuple[str, ...], dict[str, int]] = {}


def name_index(names: tuple[str, ...]) -> dict[str, int]:
    """The shared column-position map of one batch shape."""
    index = _NAME_INDEXES.get(names)
    if index is None:
        index = {name: position for position, name in enumerate(names)}
        _NAME_INDEXES[names] = index
    return index


class SolutionBatch:
    """A columnar block of solutions sharing one variable-name shape.

    ``columns[i][j]`` is the value of variable ``names[i]`` in row ``j``
    (``None`` = unbound).  Batches built by a :class:`BatchBuilder` are
    *live*: columns only ever grow, so a handle ``(batch, j)`` stays valid
    while later rows are appended.
    """

    __slots__ = ("names", "columns", "index", "pairs", "sorted_pairs")

    def __init__(self, names: tuple[str, ...], columns: list[list[Term | None]]):
        self.names = names
        self.columns = columns
        self.index = name_index(names)
        self.pairs = list(zip(names, columns))
        self.sorted_pairs = sorted(self.pairs, key=lambda pair: pair[0])

    def rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def materialize(self, idx: int) -> Solution:
        """The row-mode dict of row *idx* (holes omitted)."""
        return {
            name: value
            for name, column in self.pairs
            if (value := column[idx]) is not None
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SolutionBatch(names={self.names!r}, rows={self.rows()})"


#: A handle to one solution inside a batch.
Handle = tuple[SolutionBatch, int]


class RowView(Mapping):
    """A read-only dict view of one batch row.

    Implements exactly the Mapping surface the expression evaluator and the
    sort-key builders use (``in``, ``[]``, iteration), skipping holes so it
    is observationally identical to the row-mode solution dict.
    """

    __slots__ = ("batch", "idx")

    def __init__(self, batch: SolutionBatch, idx: int):
        self.batch = batch
        self.idx = idx

    def __getitem__(self, name: str) -> Term:
        position = self.batch.index.get(name)
        if position is None:
            raise KeyError(name)
        value = self.batch.columns[position][self.idx]
        if value is None:
            raise KeyError(name)
        return value

    def __contains__(self, name: object) -> bool:
        position = self.batch.index.get(name)  # type: ignore[arg-type]
        if position is None:
            return False
        return self.batch.columns[position][self.idx] is not None

    def get(self, name: str, default=None):
        position = self.batch.index.get(name)
        if position is None:
            return default
        value = self.batch.columns[position][self.idx]
        return default if value is None else value

    def __iter__(self) -> Iterator[str]:
        idx = self.idx
        return (name for name, column in self.batch.pairs if column[idx] is not None)

    def __len__(self) -> int:
        idx = self.idx
        return sum(1 for __, column in self.batch.pairs if column[idx] is not None)


class BatchBuilder:
    """Accumulates rows of one shape into a live batch, rotating at capacity.

    ``append`` returns the handle of the appended row.  When the current
    batch reaches *capacity* the builder starts a fresh one and reports the
    completed fill through ``take_completed`` (feeding the obs batch-fill
    histogram); handles into rotated-out batches remain valid.
    """

    __slots__ = ("names", "capacity", "batch", "count", "completed")

    def __init__(self, names: tuple[str, ...], capacity: int):
        self.names = names
        self.capacity = capacity
        self.batch = SolutionBatch(names, [[] for __ in names])
        self.count = 0
        self.completed: list[int] = []

    def append(self, values: Iterable[Term | None]) -> Handle:
        idx = self.count
        if idx >= self.capacity:
            self.completed.append(idx)
            self.batch = SolutionBatch(self.names, [[] for __ in self.names])
            idx = 0
        batch = self.batch
        for column, value in zip(batch.columns, values):
            column.append(value)
        self.count = idx + 1
        return (batch, idx)

    def append_gather(
        self,
        lcolumns: list[list[Term | None]],
        li: int,
        rcolumns: list[list[Term | None]],
        ri: int,
        right_only: tuple[int, ...],
    ) -> Handle:
        """Fused join-output append: left row verbatim + gathered right-only.

        Equivalent to ``append([c[li] for c in lcolumns] + [rcolumns[p][ri]
        for p in right_only])`` without the intermediate row list — the hash
        join's fast path when key equality already proves compatibility.
        """
        idx = self.count
        if idx >= self.capacity:
            self.completed.append(idx)
            self.batch = SolutionBatch(self.names, [[] for __ in self.names])
            idx = 0
        batch = self.batch
        columns = batch.columns
        position = 0
        for column in lcolumns:
            columns[position].append(column[li])
            position += 1
        for rpos in right_only:
            columns[position].append(rcolumns[rpos][ri])
            position += 1
        self.count = idx + 1
        return (batch, idx)

    def take_completed(self) -> list[int]:
        """Fills of all finished batches (including the current partial one)."""
        fills = self.completed
        if self.count:
            fills = fills + [self.count]
        self.completed = []
        return fills


def single_solution_batch(solution: Solution) -> Handle:
    """Wrap one row-mode dict as a single-row batch (adapter fallback)."""
    names = tuple(solution)
    return (SolutionBatch(names, [[solution[name]] for name in names]), 0)


def batches_from_solutions(
    solutions: Iterable[Solution], batch_size: int
) -> Iterator[Handle]:
    """Adapt a row stream into handles, grouping same-shape runs."""
    builders: dict[tuple[str, ...], BatchBuilder] = {}
    for solution in solutions:
        names = tuple(solution)
        builder = builders.get(names)
        if builder is None:
            builder = builders[names] = BatchBuilder(names, batch_size)
        yield builder.append([solution[name] for name in names])


def observe_batches(obs, owner: str, fills: list[int], configured: int) -> None:
    """Record batching effectiveness into the run's MetricsRegistry.

    One histogram sample per completed chunk (``batch_rows_per_chunk``,
    labelled by the producing operator/wrapper) plus the configured batch
    size as a gauge — the ``repro explain`` / metrics view of how full the
    batches actually ran.  No-op for unobserved runs (``obs is None``).
    """
    if obs is None or not fills:
        return
    histogram = obs.metrics.histogram("batch_rows_per_chunk", operator=owner)
    for fill in fills:
        histogram.observe(fill)
    obs.metrics.gauge("batch_configured_size").set(configured)
    obs.metrics.counter("batch_rows", operator=owner).inc(sum(fills))


class MergePlan:
    """The precompiled column routing of one join-output shape.

    Mirrors ``operators._merge``: output names are the left names followed
    by the right-only names; a shared name takes the left value unless it is
    a hole, and two bound, unequal values make the rows incompatible.
    """

    __slots__ = ("names", "left_width", "shared", "right_only")

    def __init__(self, left_names: tuple[str, ...], right_names: tuple[str, ...]):
        right_index = name_index(right_names)
        self.left_width = len(left_names)
        self.shared = [
            (lpos, right_index[name])
            for lpos, name in enumerate(left_names)
            if name in right_index
        ]
        self.right_only = [
            rpos for rpos, name in enumerate(right_names) if name not in left_names
        ]
        self.names = left_names + tuple(right_names[rpos] for rpos in self.right_only)

    def merge_values(
        self, left: SolutionBatch, li: int, right: SolutionBatch, ri: int
    ) -> list[Term | None] | None:
        """The merged row's column values, or None when incompatible."""
        lcols = left.columns
        rcols = right.columns
        out = [lcols[pos][li] for pos in range(self.left_width)]
        for lpos, rpos in self.shared:
            lvalue = out[lpos]
            rvalue = rcols[rpos][ri]
            if lvalue is None:
                out[lpos] = rvalue
            elif rvalue is not None and lvalue != rvalue:
                return None
        for rpos in self.right_only:
            out.append(rcols[rpos][ri])
        return out


_MERGE_PLANS: dict[tuple[tuple[str, ...], tuple[str, ...]], MergePlan] = {}


def merge_plan(left_names: tuple[str, ...], right_names: tuple[str, ...]) -> MergePlan:
    key = (left_names, right_names)
    plan = _MERGE_PLANS.get(key)
    if plan is None:
        plan = MergePlan(left_names, right_names)
        _MERGE_PLANS[key] = plan
    return plan


def handle_key(
    batch: SolutionBatch, idx: int, variables, positions: list[int] | None = None
) -> tuple | None:
    """The join key of one row, or None when any join variable is unbound.

    Mirrors the row engine's ``tuple(solution[v] for v in variables)`` with
    its KeyError-means-skip semantics.
    """
    if positions is None:
        index = batch.index
        positions = [index.get(variable, -1) for variable in variables]
    columns = batch.columns
    key = []
    for position in positions:
        if position < 0:
            return None
        value = columns[position][idx]
        if value is None:
            return None
        key.append(value)
    return tuple(key)


def handle_identity(
    batch: SolutionBatch, idx: int, n3_cache: dict[Term, str]
) -> tuple[tuple[str, str], ...]:
    """The Distinct/identity key of one row.

    Bit-compatible with ``operators.solution_identity``: sorted bound names
    paired with the term's N3 form (memoized per term — terms are frozen
    value objects, so the cache is exact).
    """
    out = []
    for name, column in batch.sorted_pairs:
        value = column[idx]
        if value is None:
            continue
        n3 = n3_cache.get(value)
        if n3 is None:
            n3 = n3_cache[value] = value.n3()
        out.append((name, n3))
    return tuple(out)
