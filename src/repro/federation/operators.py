"""ANAPSID-style adaptive physical operators of the federated engine.

ANAPSID's key property (inherited by Ontario) is that operators are
*non-blocking*: they produce answers as soon as the sources deliver the
tuples needed, instead of waiting for complete inputs.  The symmetric hash
join (`agjoin`) here alternates between its inputs, inserting each arriving
solution into its side's hash table and immediately probing the other side.

Every per-tuple action charges engine time to the shared clock through the
:class:`~repro.federation.answers.RunContext`, which is what makes
engine-level work (joins, filters) visible in the virtual timeline — the
quantity the paper's heuristics trade against source work and transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..rdf.terms import Term
from ..network.clock import VirtualClock
from ..sparql.algebra import Filter, OrderCondition
from ..sparql.expressions import ExpressionError, compile_holds, evaluate, holds
from .answers import ChargeBatch, RunContext, Solution, interned_names
from .batch import (
    BatchBuilder,
    Handle,
    RowView,
    SolutionBatch,
    handle_identity,
    merge_plan,
    single_solution_batch,
)


class FedOperator:
    """Base class of federated plan operators."""

    #: The planner's cardinality estimate for this operator's output, in
    #: rows (None when the operator was built outside the planner).  Set
    #: once at plan time and never mutated by execution, so a cached plan
    #: keeps its estimates; EXPLAIN ANALYZE compares them against observed
    #: ``rows_out`` to compute per-operator q-error.
    estimated_rows: float | None = None

    #: Stable identity of the logical work this operator performs (see
    #: :mod:`repro.core.statskeys`), stamped by the planner on plan units
    #: and joins.  Observed-statistics ingestion records actual ``rows_out``
    #: under this key; operators the planner never stamps stay ``None`` and
    #: are skipped.  Planning metadata only — never read during execution.
    stats_signature: tuple | None = None

    def execute(self, context: RunContext) -> Iterator[Solution]:
        raise NotImplementedError

    def execute_batch(self, context: RunContext) -> Iterator[Handle]:
        """Columnar execution: stream handles into shared solution batches.

        The default adapts the row stream one row at a time, so any
        operator without a vectorized implementation still composes with
        batch-mode neighbours (at row-mode speed).  Charging is whatever
        ``execute`` charges — identical by construction.
        """
        for solution in self.execute(context):
            yield single_solution_batch(solution)

    def children(self) -> list["FedOperator"]:
        return []

    def data_signature(self, context: RunContext) -> tuple | None:
        """A hashable identity of this operator's *data* stream, or None.

        Two streams with equal signatures yield the same row data in the
        same order — network delays, cache state and clock type never enter
        the signature because they never influence the data plane (delays
        only move virtual time; caches only change *charges*, not rows).
        Operators that cannot prove this about themselves return None,
        which disables stream-level memoization above them.
        """
        return None

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        lines.extend(child.explain(indent + 1) for child in self.children())
        return "\n".join(lines)


@dataclass
class ServiceNode(FedOperator):
    """A leaf: one sub-query shipped to one source wrapper.

    ``runner`` encapsulates the wrapper call; ``description`` renders the
    native query for explain output (Figure-1-style plans).
    ``restricted_runner``, when provided by the planner, re-issues the
    sub-query with an IN-restriction on one variable — the capability the
    dependent (bound) join needs.
    """

    source_id: str
    description: str
    runner: Callable[[RunContext], Iterator[Solution]]
    engine_filters: list[Filter] = field(default_factory=list)
    restricted_runner: Callable[..., Iterator[Solution]] | None = None
    #: Variable names this sub-query can bind (set by the planner; the
    #: plan-invariant checker uses it to verify join orderings).
    variables: tuple[str, ...] = ()
    #: Columnar twins of ``runner``/``restricted_runner`` (set by the
    #: planner): same wrapper call, but streaming batch handles.
    batch_runner: Callable[[RunContext], Iterator[Handle]] | None = None
    restricted_batch_runner: Callable[..., Iterator[Handle]] | None = None
    #: Returns ``(store_object, version)`` of the backing store (set by the
    #: planner).  The store object pins identity (two lakes may both be at
    #: version 0), the version invalidates on mutation; together with the
    #: rendered native query they make :meth:`data_signature` sound.
    data_version_provider: Callable[[], object] | None = None

    def _filtered(self, context: RunContext, stream: Iterator[Solution]) -> Iterator[Solution]:
        cost = context.cost_model
        filters = self.engine_filters
        tests = [compile_holds(f.expression) for f in filters]
        for solution in stream:
            if filters:
                context.charge_engine(cost.engine_filter_eval * len(filters))
                if not all(test(solution) for test in tests):
                    continue
            yield solution

    def _filtered_batch(
        self, context: RunContext, stream: Iterator[Handle]
    ) -> Iterator[Handle]:
        filters = self.engine_filters
        if not filters:
            yield from stream
            return
        charge = context.cost_model.engine_filter_eval * len(filters)
        positive = charge > 0
        clock_sleep = context.clock.sleep
        stats = context.stats
        tests = [compile_holds(f.expression) for f in filters]
        for handle in stream:
            if positive:
                clock_sleep(charge)
                stats.engine_cost += charge
            view = RowView(handle[0], handle[1])
            if all(test(view) for test in tests):
                yield handle

    def execute(self, context: RunContext) -> Iterator[Solution]:
        yield from self._filtered(context, self.runner(context))

    def _adapted(self, context: RunContext) -> Iterator[Handle]:
        for solution in self.execute(context):
            yield single_solution_batch(solution)

    def execute_batch(self, context: RunContext) -> Iterator[Handle]:
        # Not a generator function: the unfiltered fast path hands the
        # runner's iterator straight to the consumer, so per-row pulls skip
        # two delegation frames on the hot path.
        if self.batch_runner is None:
            return self._adapted(context)
        if not self.engine_filters:
            return self.batch_runner(context)
        return self._filtered_batch(context, self.batch_runner(context))

    @property
    def supports_restriction(self) -> bool:
        return self.restricted_runner is not None

    def execute_restricted(
        self, context: RunContext, variable: str, terms: list
    ) -> Iterator[Solution]:
        """Run the sub-query restricted to ``variable IN terms``."""
        if self.restricted_runner is None:
            raise RuntimeError(f"service {self.source_id!r} is not restrictable")
        yield from self._filtered(
            context, self.restricted_runner(context, variable, terms)
        )

    def _adapted_restricted(
        self, context: RunContext, variable: str, terms: list
    ) -> Iterator[Handle]:
        for solution in self.execute_restricted(context, variable, terms):
            yield single_solution_batch(solution)

    def execute_restricted_batch(
        self, context: RunContext, variable: str, terms: list
    ) -> Iterator[Handle]:
        """Columnar twin of :meth:`execute_restricted` (not a generator —
        see :meth:`execute_batch`)."""
        if self.restricted_batch_runner is None:
            return self._adapted_restricted(context, variable, terms)
        if not self.engine_filters:
            return self.restricted_batch_runner(context, variable, terms)
        return self._filtered_batch(
            context, self.restricted_batch_runner(context, variable, terms)
        )

    def data_signature(self, context: RunContext) -> tuple | None:
        provider = self.data_version_provider
        if provider is None:
            return None
        return (
            "svc",
            self.source_id,
            self.description,
            tuple(f.expression.n3() for f in self.engine_filters),
            provider(),
        )

    def label(self) -> str:
        base = f"Service[{self.source_id}] {self.description}"
        if self.engine_filters:
            rendered = " AND ".join(f.expression.n3() for f in self.engine_filters)
            base += f" | engine-filter({rendered})"
        return base


def solution_identity(solution: Solution) -> tuple:
    """A hashable identity of a solution, name-sorted (for DISTINCT sets).

    Uses the interned per-shape name tuple so the per-solution sort in the
    DISTINCT hot loop is paid once per solution *shape* instead of once per
    solution.
    """
    return tuple((name, solution[name].n3()) for name in interned_names(solution))


def sort_solutions(
    solutions: list[Solution], conditions: list[OrderCondition]
) -> list[Solution]:
    """Sort *solutions* in place by ORDER BY conditions; returns the list.

    Shared by the pull-based :class:`OrderBy` operator and the event
    runtime's order node so both runtimes use the same typed collation.
    """

    def key_for(condition: OrderCondition):
        def key(solution: Solution):
            try:
                value = evaluate(condition.expression, solution)
            except ExpressionError:
                return (0, "")
            if hasattr(value, "to_python"):
                value = value.to_python()
            elif hasattr(value, "value"):
                value = value.value
            if isinstance(value, bool):
                return (1, int(value))
            if isinstance(value, (int, float)):
                return (2, value)
            return (3, str(value))

        return key

    for condition in reversed(conditions):
        solutions.sort(key=key_for(condition), reverse=not condition.ascending)
    return solutions


def _merge(left: Solution, right: Solution) -> Solution | None:
    """Merge two solutions; None when they disagree on a shared variable."""
    merged = dict(left)
    for name, term in right.items():
        bound = merged.get(name)
        if bound is None:
            merged[name] = term
        elif bound != term:
            return None
    return merged


class _BatchEmitter:
    """Per-execution output builders, one per emitted batch shape."""

    __slots__ = ("batch_size", "builders")

    def __init__(self, context: RunContext):
        self.batch_size = context.batch_size
        self.builders: dict[tuple[str, ...], BatchBuilder] = {}

    def emit(self, names: tuple[str, ...], values: list[Term | None]) -> Handle:
        return self.builder_for(names).append(values)

    def builder_for(self, names: tuple[str, ...]) -> BatchBuilder:
        builder = self.builders.get(names)
        if builder is None:
            builder = self.builders[names] = BatchBuilder(names, self.batch_size)
        return builder


def _positions_cache(variables: tuple[str, ...]):
    """Join-variable column positions, computed once per batch shape."""
    cache: dict[tuple[str, ...], list[int]] = {}

    def positions_for(batch: SolutionBatch) -> list[int]:
        positions = cache.get(batch.names)
        if positions is None:
            index = batch.index
            positions = cache[batch.names] = [
                index.get(name, -1) for name in variables
            ]
        return positions

    return positions_for


#: Cross-run memo of single-variable join *streams*.  Delays and cache
#: state never change which rows arrive or in which order (pull-driven
#: alternation is data-determined), so for signature-stable inputs the
#: join's entire data plane — key extraction, hash tables, merge/gather,
#: output batches — is identical across runs, engines and networks.  The
#: first complete execution records a script of (pull, flush, yield)
#: events; replays re-pull the children live (their charges stay exact)
#: and re-issue the recorded engine flushes bitwise.  Keyed by the child
#: data signatures plus everything that shapes charges and chunking.
_JOIN_STREAM_MEMO: dict = {}
_JOIN_STREAM_MEMO_CAP = 16


@dataclass
class SymmetricHashJoin(FedOperator):
    """ANAPSID's agjoin: a non-blocking symmetric hash join.

    Both inputs are polled in alternation; each arriving solution is
    inserted into its side's hash table (keyed by the join variables) and
    probed against the opposite table, emitting joins immediately.
    """

    left: FedOperator
    right: FedOperator
    join_variables: tuple[str, ...]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        key_of = self._key_function()
        tables: tuple[dict, dict] = ({}, {})
        iterators = [self.left.execute(context), self.right.execute(context)]
        active = [True, True]
        side = 0
        # Insert/probe costs are batched and flushed before every emitted
        # answer (and at stream end): the clock value at each yield — hence
        # every answer timestamp — is identical to per-tuple charging, but
        # non-joining tuples no longer pay two charge calls each.
        charges = ChargeBatch(context)
        insert_probe = cost.engine_hash_insert + cost.engine_hash_probe
        while active[0] or active[1]:
            if not active[side]:
                side = 1 - side
            try:
                solution = next(iterators[side])
            except StopIteration:
                active[side] = False
                side = 1 - side
                continue
            key = key_of(solution)
            if key is None:
                side = 1 - side
                continue
            charges.add(insert_probe)
            tables[side].setdefault(key, []).append(solution)
            other = tables[1 - side]
            for candidate in other.get(key, ()):  # probe
                if side == 0:
                    merged = _merge(solution, candidate)
                else:
                    merged = _merge(candidate, solution)
                if merged is not None:
                    charges.add(cost.engine_join_output_row)
                    charges.flush()
                    yield merged
            side = 1 - side
        charges.flush()

    def execute_batch(self, context: RunContext) -> Iterator[Handle]:
        # Same pull alternation and charge sequence as ``execute``; the
        # pending-charge accumulation inlines ChargeBatch (identical float
        # adds in identical order), and merge plans are compiled once per
        # (left shape, right shape) pair.  When the shared variables of a
        # pair are exactly the join variables, key equality already proves
        # the rows compatible and the merged row is a plain column gather.
        # The single-variable join (the overwhelmingly common shape) gets
        # its own loop with the key fetch reduced to one column access.
        if len(self.join_variables) == 1:
            return self._execute_batch_single(context)
        return self._execute_batch_multi(context)

    def _execute_batch_single(self, context: RunContext) -> Iterator[Handle]:
        cost = context.cost_model
        name = self.join_variables[0]
        memo_key = None
        script: list | None = None
        if context.obs is None:
            left_sig = self.left.data_signature(context)
            if left_sig is not None:
                right_sig = self.right.data_signature(context)
                if right_sig is not None:
                    memo_key = (
                        name,
                        left_sig,
                        right_sig,
                        cost,
                        context.batch_size,
                    )
                    cached = _JOIN_STREAM_MEMO.get(memo_key)
                    if cached is not None:
                        return self._replay_single(context, cached)
                    script = []
        return self._run_single(context, memo_key, script)

    def _run_single(
        self, context: RunContext, memo_key, script: list | None
    ) -> Iterator[Handle]:
        cost = context.cost_model
        name = self.join_variables[0]
        pos_cache: dict[tuple[str, ...], int] = {}
        table0: dict = {}
        table1: dict = {}
        own_other = ((table0, table1), (table1, table0))
        nexts = (
            self.left.execute_batch(context).__next__,
            self.right.execute_batch(context).__next__,
        )
        active = [True, True]
        side = 0
        clock = context.clock
        # Sequential batch runs always use a VirtualClock; advancing its
        # ``_now`` directly is the same float add as ``sleep`` without the
        # call.  Other clock types (event/thread task clocks) keep the call.
        virtual = type(clock) is VirtualClock
        clock_sleep = clock.sleep
        stats = context.stats
        insert_probe = cost.engine_hash_insert + cost.engine_hash_probe
        join_output = cost.engine_join_output_row
        emitter = _BatchEmitter(context)
        pair_cache: dict[tuple, tuple] = {}
        variable_set = frozenset((name,))
        pending = 0.0
        while active[0] or active[1]:
            if not active[side]:
                side = 1 - side
            try:
                batch, idx = nexts[side]()
            except StopIteration:
                active[side] = False
                if script is not None:
                    script.append(side + 2)
                side = 1 - side
                continue
            if script is not None:
                script.append(side)
            shape = batch.names
            position = pos_cache.get(shape)
            if position is None:
                position = pos_cache[shape] = batch.index.get(name, -1)
            if position < 0:
                side = 1 - side
                continue
            key = batch.columns[position][idx]
            if key is None:
                side = 1 - side
                continue
            pending += insert_probe
            table, other = own_other[side]
            bucket = table.get(key)
            if bucket is None:
                table[key] = bucket = []
            bucket.append((batch, idx))
            matches = other.get(key)
            if matches:
                for candidate, cidx in matches:
                    if side == 0:
                        lbatch, li, rbatch, ri = batch, idx, candidate, cidx
                    else:
                        lbatch, li, rbatch, ri = candidate, cidx, batch, idx
                    pair = (lbatch.names, rbatch.names)
                    compiled = pair_cache.get(pair)
                    if compiled is None:
                        plan = merge_plan(pair[0], pair[1])
                        gather = (
                            frozenset(pair[0][lpos] for lpos, __ in plan.shared)
                            <= variable_set
                        )
                        builder = emitter.builder_for(plan.names)
                        compiled = pair_cache[pair] = (
                            plan,
                            gather,
                            builder.append,
                            builder.append_gather,
                            plan.right_only,
                        )
                    plan, gather, append, append_gather, right_only = compiled
                    if gather:
                        pending += join_output
                        flush = pending
                        if flush > 0:
                            if virtual:
                                clock._now += flush
                            else:
                                clock_sleep(flush)
                            stats.engine_cost += flush
                            pending = 0.0
                        handle = append_gather(
                            lbatch.columns, li, rbatch.columns, ri, right_only
                        )
                        if script is not None:
                            script.append((flush, handle))
                        yield handle
                        continue
                    values = plan.merge_values(lbatch, li, rbatch, ri)
                    if values is not None:
                        pending += join_output
                        flush = pending
                        if flush > 0:
                            if virtual:
                                clock._now += flush
                            else:
                                clock_sleep(flush)
                            stats.engine_cost += flush
                            pending = 0.0
                        handle = append(values)
                        if script is not None:
                            script.append((flush, handle))
                        yield handle
            side = 1 - side
        if script is not None:
            # Publish only streams that ran to natural completion; an
            # early-closed generator (LIMIT above the join) never gets
            # here, so partial scripts are never cached.
            if len(_JOIN_STREAM_MEMO) >= _JOIN_STREAM_MEMO_CAP:
                _JOIN_STREAM_MEMO.clear()
            _JOIN_STREAM_MEMO[memo_key] = (tuple(script), pending)
        if pending > 0:
            if virtual:
                clock._now += pending
            else:
                clock_sleep(pending)
            stats.engine_cost += pending

    def _replay_single(self, context: RunContext, cached) -> Iterator[Handle]:
        """Replay a recorded join stream bitwise.

        The children are still pulled live — wrapper and network charges
        depend on cache state and must be issued for real — but every
        engine-side decision (key skips, table ops, merges) is skipped and
        the recorded flush values and output handles are re-issued in the
        recorded order, which is exactly the order the live loop would
        reproduce (pull alternation is data-determined, and the data is
        signature-stable by construction of the memo key).
        """
        script, final_pending = cached
        clock = context.clock
        virtual = type(clock) is VirtualClock
        clock_sleep = clock.sleep
        stats = context.stats
        next0 = self.left.execute_batch(context).__next__
        next1 = self.right.execute_batch(context).__next__
        for entry in script:
            if type(entry) is int:
                if entry == 0:
                    next0()
                elif entry == 1:
                    next1()
                else:
                    try:
                        (next0 if entry == 2 else next1)()
                    except StopIteration:
                        continue
                    raise RuntimeError(
                        "join stream replay out of sync with child stream"
                    )
            else:
                flush = entry[0]
                if flush > 0:
                    if virtual:
                        clock._now += flush
                    else:
                        clock_sleep(flush)
                    stats.engine_cost += flush
                yield entry[1]
        if final_pending > 0:
            if virtual:
                clock._now += final_pending
            else:
                clock_sleep(final_pending)
            stats.engine_cost += final_pending

    def _execute_batch_multi(self, context: RunContext) -> Iterator[Handle]:
        cost = context.cost_model
        variables = self.join_variables
        pos_cache: dict[tuple[str, ...], list[int]] = {}
        tables: tuple[dict, dict] = ({}, {})
        iterators = [
            self.left.execute_batch(context),
            self.right.execute_batch(context),
        ]
        active = [True, True]
        side = 0
        clock = context.clock
        virtual = type(clock) is VirtualClock
        clock_sleep = clock.sleep
        stats = context.stats
        insert_probe = cost.engine_hash_insert + cost.engine_hash_probe
        join_output = cost.engine_join_output_row
        emitter = _BatchEmitter(context)
        pair_cache: dict[tuple, tuple] = {}
        variable_set = frozenset(variables)
        pending = 0.0
        while active[0] or active[1]:
            if not active[side]:
                side = 1 - side
            try:
                batch, idx = next(iterators[side])
            except StopIteration:
                active[side] = False
                side = 1 - side
                continue
            columns = batch.columns
            shape = batch.names
            positions = pos_cache.get(shape)
            if positions is None:
                index = batch.index
                positions = pos_cache[shape] = [
                    index.get(name, -1) for name in variables
                ]
            parts = []
            for position in positions:
                term = None if position < 0 else columns[position][idx]
                if term is None:
                    parts = None
                    break
                parts.append(term)
            key = None if parts is None else tuple(parts)
            if key is None:
                side = 1 - side
                continue
            pending += insert_probe
            table = tables[side]
            bucket = table.get(key)
            if bucket is None:
                table[key] = bucket = []
            bucket.append((batch, idx))
            matches = tables[1 - side].get(key)
            if matches:
                for candidate, cidx in matches:
                    if side == 0:
                        lbatch, li, rbatch, ri = batch, idx, candidate, cidx
                    else:
                        lbatch, li, rbatch, ri = candidate, cidx, batch, idx
                    pair = (lbatch.names, rbatch.names)
                    compiled = pair_cache.get(pair)
                    if compiled is None:
                        plan = merge_plan(pair[0], pair[1])
                        gather = (
                            frozenset(pair[0][lpos] for lpos, __ in plan.shared)
                            <= variable_set
                        )
                        builder = emitter.builder_for(plan.names)
                        compiled = pair_cache[pair] = (
                            plan,
                            gather,
                            builder.append,
                            builder.append_gather,
                            plan.right_only,
                        )
                    plan, gather, append, append_gather, right_only = compiled
                    if gather:
                        pending += join_output
                        if pending > 0:
                            if virtual:
                                clock._now += pending
                            else:
                                clock_sleep(pending)
                            stats.engine_cost += pending
                            pending = 0.0
                        yield append_gather(
                            lbatch.columns, li, rbatch.columns, ri, right_only
                        )
                        continue
                    values = plan.merge_values(lbatch, li, rbatch, ri)
                    if values is not None:
                        pending += join_output
                        if pending > 0:
                            if virtual:
                                clock._now += pending
                            else:
                                clock_sleep(pending)
                            stats.engine_cost += pending
                            pending = 0.0
                        yield append(values)
            side = 1 - side
        if pending > 0:
            if virtual:
                clock._now += pending
            else:
                clock_sleep(pending)
            stats.engine_cost += pending

    def _key_function(self) -> Callable[[Solution], tuple | None]:
        names = self.join_variables

        def key_of(solution: Solution) -> tuple[Term, ...] | None:
            key = []
            for name in names:
                term = solution.get(name)
                if term is None:
                    return None
                key.append(term)
            return tuple(key)

        return key_of

    def children(self) -> list[FedOperator]:
        return [self.left, self.right]

    def data_signature(self, context: RunContext) -> tuple | None:
        left = self.left.data_signature(context)
        if left is None:
            return None
        right = self.right.data_signature(context)
        if right is None:
            return None
        return ("shj", self.join_variables, left, right)

    def label(self) -> str:
        joined = ", ".join(f"?{name}" for name in self.join_variables) or "×"
        return f"SymmetricHashJoin[{joined}]"


@dataclass
class LeftJoin(FedOperator):
    """OPTIONAL: keep every left solution, extend with right matches.

    The right input is materialized into a hash table on the join
    variables (OPTIONAL bodies are typically small); the left streams
    through, emitting each extension — or the bare left solution when the
    optional part has no compatible match.
    """

    left: FedOperator
    right: FedOperator
    join_variables: tuple[str, ...]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        table: dict[tuple, list[Solution]] = {}
        for solution in self.right.execute(context):
            context.charge_engine(cost.engine_hash_insert)
            key = tuple(solution.get(name) for name in self.join_variables)
            table.setdefault(key, []).append(solution)
        for solution in self.left.execute(context):
            context.charge_engine(cost.engine_hash_probe)
            key = tuple(solution.get(name) for name in self.join_variables)
            matched = False
            for candidate in table.get(key, ()):
                merged = _merge(solution, candidate)
                if merged is not None:
                    matched = True
                    context.charge_engine(cost.engine_join_output_row)
                    yield merged
            if not matched:
                yield solution

    def execute_batch(self, context: RunContext) -> Iterator[Handle]:
        cost = context.cost_model
        positions_for = _positions_cache(self.join_variables)
        clock_sleep = context.clock.sleep
        stats = context.stats
        hash_insert = cost.engine_hash_insert
        hash_probe = cost.engine_hash_probe
        output_row = cost.engine_join_output_row
        emitter = _BatchEmitter(context)
        table: dict[tuple, list[Handle]] = {}
        # NB: unlike the symmetric join, unbound join variables participate
        # with a None key component (mirroring ``solution.get`` row mode).
        for batch, idx in self.right.execute_batch(context):
            if hash_insert > 0:
                clock_sleep(hash_insert)
                stats.engine_cost += hash_insert
            columns = batch.columns
            key = tuple(
                None if position < 0 else columns[position][idx]
                for position in positions_for(batch)
            )
            table.setdefault(key, []).append((batch, idx))
        for batch, idx in self.left.execute_batch(context):
            if hash_probe > 0:
                clock_sleep(hash_probe)
                stats.engine_cost += hash_probe
            columns = batch.columns
            key = tuple(
                None if position < 0 else columns[position][idx]
                for position in positions_for(batch)
            )
            matched = False
            for candidate, cidx in table.get(key, ()):
                plan = merge_plan(batch.names, candidate.names)
                values = plan.merge_values(batch, idx, candidate, cidx)
                if values is not None:
                    matched = True
                    if output_row > 0:
                        clock_sleep(output_row)
                        stats.engine_cost += output_row
                    yield emitter.emit(plan.names, values)
            if not matched:
                yield (batch, idx)

    def children(self) -> list[FedOperator]:
        return [self.left, self.right]

    def label(self) -> str:
        joined = ", ".join(f"?{name}" for name in self.join_variables) or "×"
        return f"LeftJoin[{joined}] (OPTIONAL)"


@dataclass
class DependentJoin(FedOperator):
    """ANAPSID-style dependent (bound) join.

    Consumes the outer input in blocks; for each block, the distinct values
    of the join variable are pushed into the inner *service* as an IN
    restriction, so the source only returns joinable rows.  Pays one extra
    request per block but can shrink the transferred inner relation
    dramatically when the outer side is selective.
    """

    outer: FedOperator
    inner: ServiceNode
    join_variable: str
    block_size: int = 50

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        block: list[Solution] = []
        outer_stream = self.outer.execute(context)
        while True:
            block.clear()
            for solution in outer_stream:
                if self.join_variable in solution:
                    block.append(solution)
                    if len(block) >= self.block_size:
                        break
            if not block:
                return
            terms = []
            seen: set = set()
            for solution in block:
                term = solution[self.join_variable]
                if term not in seen:
                    seen.add(term)
                    terms.append(term)
            by_term: dict = {}
            for solution in block:
                context.charge_engine(cost.engine_hash_insert)
                by_term.setdefault(solution[self.join_variable], []).append(solution)
            for inner_solution in self.inner.execute_restricted(
                context, self.join_variable, terms
            ):
                context.charge_engine(cost.engine_hash_probe)
                for outer_solution in by_term.get(inner_solution[self.join_variable], ()):
                    merged = _merge(outer_solution, inner_solution)
                    if merged is not None:
                        context.charge_engine(cost.engine_join_output_row)
                        yield merged
            if len(block) < self.block_size:
                return

    def execute_batch(self, context: RunContext) -> Iterator[Handle]:
        cost = context.cost_model
        variable = self.join_variable
        positions_for = _positions_cache((variable,))
        clock_sleep = context.clock.sleep
        stats = context.stats
        hash_insert = cost.engine_hash_insert
        hash_probe = cost.engine_hash_probe
        output_row = cost.engine_join_output_row
        emitter = _BatchEmitter(context)
        block: list[Handle] = []
        block_terms: list[Term] = []
        outer_stream = self.outer.execute_batch(context)
        while True:
            block.clear()
            block_terms.clear()
            for batch, idx in outer_stream:
                position = positions_for(batch)[0]
                term = None if position < 0 else batch.columns[position][idx]
                if term is not None:
                    block.append((batch, idx))
                    block_terms.append(term)
                    if len(block) >= self.block_size:
                        break
            if not block:
                return
            terms = []
            seen: set = set()
            for term in block_terms:
                if term not in seen:
                    seen.add(term)
                    terms.append(term)
            by_term: dict = {}
            for handle, term in zip(block, block_terms):
                if hash_insert > 0:
                    clock_sleep(hash_insert)
                    stats.engine_cost += hash_insert
                by_term.setdefault(term, []).append(handle)
            for ibatch, iidx in self.inner.execute_restricted_batch(
                context, variable, terms
            ):
                if hash_probe > 0:
                    clock_sleep(hash_probe)
                    stats.engine_cost += hash_probe
                inner_term = ibatch.columns[ibatch.index[variable]][iidx]
                for obatch, oidx in by_term.get(inner_term, ()):
                    plan = merge_plan(obatch.names, ibatch.names)
                    values = plan.merge_values(obatch, oidx, ibatch, iidx)
                    if values is not None:
                        if output_row > 0:
                            clock_sleep(output_row)
                            stats.engine_cost += output_row
                        yield emitter.emit(plan.names, values)
            if len(block) < self.block_size:
                return

    def children(self) -> list[FedOperator]:
        return [self.outer, self.inner]

    def label(self) -> str:
        return f"DependentJoin[?{self.join_variable}, block={self.block_size}]"


@dataclass
class EngineFilter(FedOperator):
    """FILTER evaluated at the query-engine level (Heuristic 2's push-up)."""

    child: FedOperator
    filters: list[Filter]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        tests = [compile_holds(f.expression) for f in self.filters]
        for solution in self.child.execute(context):
            context.charge_engine(cost.engine_filter_eval * len(self.filters))
            if all(test(solution) for test in tests):
                yield solution

    def execute_batch(self, context: RunContext) -> Iterator[Handle]:
        charge = context.cost_model.engine_filter_eval * len(self.filters)
        positive = charge > 0
        clock_sleep = context.clock.sleep
        stats = context.stats
        tests = [compile_holds(f.expression) for f in self.filters]
        for handle in self.child.execute_batch(context):
            if positive:
                clock_sleep(charge)
                stats.engine_cost += charge
            view = RowView(handle[0], handle[1])
            if all(test(view) for test in tests):
                yield handle

    def children(self) -> list[FedOperator]:
        return [self.child]

    def data_signature(self, context: RunContext) -> tuple | None:
        child = self.child.data_signature(context)
        if child is None:
            return None
        return ("filter", tuple(f.expression.n3() for f in self.filters), child)

    def label(self) -> str:
        rendered = " AND ".join(f.expression.n3() for f in self.filters)
        return f"EngineFilter[{rendered}]"


@dataclass
class Project(FedOperator):
    """Restrict solutions to the projected variables."""

    child: FedOperator
    variables: tuple[str, ...]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        names = self.variables
        for solution in self.child.execute(context):
            context.charge_engine(cost.engine_project_row)
            yield {name: solution[name] for name in names if name in solution}

    def execute_batch(self, context: RunContext) -> Iterator[Handle]:
        # Zero-copy: the projected batch aliases the kept input columns
        # (holes already encode per-row absence), built once per distinct
        # input batch.  The input batch is kept in the memo value so its
        # id() stays unique for the memo's lifetime.
        project_cost = context.cost_model.engine_project_row
        positive = project_cost > 0
        clock = context.clock
        virtual = type(clock) is VirtualClock
        clock_sleep = clock.sleep
        stats = context.stats
        names = self.variables
        derived: dict[int, tuple[SolutionBatch, SolutionBatch]] = {}
        for batch, idx in self.child.execute_batch(context):
            if positive:
                if virtual:
                    clock._now += project_cost
                else:
                    clock_sleep(project_cost)
                stats.engine_cost += project_cost
            entry = derived.get(id(batch))
            if entry is None:
                index = batch.index
                kept = tuple(name for name in names if name in index)
                projected = SolutionBatch(
                    kept, [batch.columns[index[name]] for name in kept]
                )
                derived[id(batch)] = entry = (batch, projected)
            yield (entry[1], idx)

    def children(self) -> list[FedOperator]:
        return [self.child]

    def label(self) -> str:
        return "Project[" + ", ".join(f"?{name}" for name in self.variables) + "]"


@dataclass
class Distinct(FedOperator):
    child: FedOperator

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        seen: set[tuple] = set()
        for solution in self.child.execute(context):
            context.charge_engine(cost.engine_distinct_row)
            key = solution_identity(solution)
            if key not in seen:
                seen.add(key)
                yield solution

    def execute_batch(self, context: RunContext) -> Iterator[Handle]:
        distinct_cost = context.cost_model.engine_distinct_row
        positive = distinct_cost > 0
        clock = context.clock
        virtual = type(clock) is VirtualClock
        clock_sleep = clock.sleep
        stats = context.stats
        seen: set[tuple] = set()
        n3_cache: dict[Term, str] = {}
        cache_get = n3_cache.get
        for batch, idx in self.child.execute_batch(context):
            if positive:
                if virtual:
                    clock._now += distinct_cost
                else:
                    clock_sleep(distinct_cost)
                stats.engine_cost += distinct_cost
            # handle_identity, inlined: sorted bound (name, n3) pairs with a
            # per-term n3 memo (bit-compatible with solution_identity).
            out = []
            for name, column in batch.sorted_pairs:
                value = column[idx]
                if value is None:
                    continue
                n3 = cache_get(value)
                if n3 is None:
                    n3 = n3_cache[value] = value.n3()
                out.append((name, n3))
            key = tuple(out)
            if key not in seen:
                seen.add(key)
                yield (batch, idx)

    def children(self) -> list[FedOperator]:
        return [self.child]


@dataclass
class Limit(FedOperator):
    child: FedOperator
    limit: int | None = None
    offset: int | None = None

    def execute(self, context: RunContext) -> Iterator[Solution]:
        skipped = produced = 0
        for solution in self.child.execute(context):
            if self.offset and skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield solution

    def execute_batch(self, context: RunContext) -> Iterator[Handle]:
        skipped = produced = 0
        for handle in self.child.execute_batch(context):
            if self.offset and skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield handle

    def children(self) -> list[FedOperator]:
        return [self.child]

    def label(self) -> str:
        return f"Limit[{self.limit}, offset={self.offset}]"


@dataclass
class OrderBy(FedOperator):
    """Blocking sort by ORDER BY conditions (evaluated at the engine)."""

    child: FedOperator
    conditions: list[OrderCondition]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        solutions = list(self.child.execute(context))
        context.charge_engine(cost.engine_sort_row * len(solutions))
        yield from sort_solutions(solutions, self.conditions)

    def execute_batch(self, context: RunContext) -> Iterator[Handle]:
        # RowView is a Mapping, so the shared typed collation applies
        # unchanged; sorts are stable, so the permutation matches row mode.
        cost = context.cost_model
        views = [
            RowView(batch, idx) for batch, idx in self.child.execute_batch(context)
        ]
        context.charge_engine(cost.engine_sort_row * len(views))
        for view in sort_solutions(views, self.conditions):
            yield (view.batch, view.idx)

    def children(self) -> list[FedOperator]:
        return [self.child]


@dataclass
class Union(FedOperator):
    """Round-robin union of several inputs (no duplicate elimination)."""

    inputs: list[FedOperator]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        iterators = [child.execute(context) for child in self.inputs]
        active = [True] * len(iterators)
        while any(active):
            for position, iterator in enumerate(iterators):
                if not active[position]:
                    continue
                try:
                    yield next(iterator)
                except StopIteration:
                    active[position] = False

    def execute_batch(self, context: RunContext) -> Iterator[Handle]:
        iterators = [child.execute_batch(context) for child in self.inputs]
        active = [True] * len(iterators)
        while any(active):
            for position, iterator in enumerate(iterators):
                if not active[position]:
                    continue
                try:
                    yield next(iterator)
                except StopIteration:
                    active[position] = False

    def children(self) -> list[FedOperator]:
        return list(self.inputs)

    def data_signature(self, context: RunContext) -> tuple | None:
        parts = []
        for child in self.inputs:
            signature = child.data_signature(context)
            if signature is None:
                return None
            parts.append(signature)
        return ("union", tuple(parts))
