"""ANAPSID-style adaptive physical operators of the federated engine.

ANAPSID's key property (inherited by Ontario) is that operators are
*non-blocking*: they produce answers as soon as the sources deliver the
tuples needed, instead of waiting for complete inputs.  The symmetric hash
join (`agjoin`) here alternates between its inputs, inserting each arriving
solution into its side's hash table and immediately probing the other side.

Every per-tuple action charges engine time to the shared clock through the
:class:`~repro.federation.answers.RunContext`, which is what makes
engine-level work (joins, filters) visible in the virtual timeline — the
quantity the paper's heuristics trade against source work and transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..rdf.terms import Term
from ..sparql.algebra import Filter, OrderCondition
from ..sparql.expressions import ExpressionError, evaluate, holds
from .answers import ChargeBatch, RunContext, Solution, interned_names


class FedOperator:
    """Base class of federated plan operators."""

    #: The planner's cardinality estimate for this operator's output, in
    #: rows (None when the operator was built outside the planner).  Set
    #: once at plan time and never mutated by execution, so a cached plan
    #: keeps its estimates; EXPLAIN ANALYZE compares them against observed
    #: ``rows_out`` to compute per-operator q-error.
    estimated_rows: float | None = None

    def execute(self, context: RunContext) -> Iterator[Solution]:
        raise NotImplementedError

    def children(self) -> list["FedOperator"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        lines.extend(child.explain(indent + 1) for child in self.children())
        return "\n".join(lines)


@dataclass
class ServiceNode(FedOperator):
    """A leaf: one sub-query shipped to one source wrapper.

    ``runner`` encapsulates the wrapper call; ``description`` renders the
    native query for explain output (Figure-1-style plans).
    ``restricted_runner``, when provided by the planner, re-issues the
    sub-query with an IN-restriction on one variable — the capability the
    dependent (bound) join needs.
    """

    source_id: str
    description: str
    runner: Callable[[RunContext], Iterator[Solution]]
    engine_filters: list[Filter] = field(default_factory=list)
    restricted_runner: Callable[..., Iterator[Solution]] | None = None
    #: Variable names this sub-query can bind (set by the planner; the
    #: plan-invariant checker uses it to verify join orderings).
    variables: tuple[str, ...] = ()

    def _filtered(self, context: RunContext, stream: Iterator[Solution]) -> Iterator[Solution]:
        cost = context.cost_model
        filters = self.engine_filters
        for solution in stream:
            if filters:
                context.charge_engine(cost.engine_filter_eval * len(filters))
                if not all(holds(f.expression, solution) for f in filters):
                    continue
            yield solution

    def execute(self, context: RunContext) -> Iterator[Solution]:
        yield from self._filtered(context, self.runner(context))

    @property
    def supports_restriction(self) -> bool:
        return self.restricted_runner is not None

    def execute_restricted(
        self, context: RunContext, variable: str, terms: list
    ) -> Iterator[Solution]:
        """Run the sub-query restricted to ``variable IN terms``."""
        if self.restricted_runner is None:
            raise RuntimeError(f"service {self.source_id!r} is not restrictable")
        yield from self._filtered(
            context, self.restricted_runner(context, variable, terms)
        )

    def label(self) -> str:
        base = f"Service[{self.source_id}] {self.description}"
        if self.engine_filters:
            rendered = " AND ".join(f.expression.n3() for f in self.engine_filters)
            base += f" | engine-filter({rendered})"
        return base


def solution_identity(solution: Solution) -> tuple:
    """A hashable identity of a solution, name-sorted (for DISTINCT sets).

    Uses the interned per-shape name tuple so the per-solution sort in the
    DISTINCT hot loop is paid once per solution *shape* instead of once per
    solution.
    """
    return tuple((name, solution[name].n3()) for name in interned_names(solution))


def sort_solutions(
    solutions: list[Solution], conditions: list[OrderCondition]
) -> list[Solution]:
    """Sort *solutions* in place by ORDER BY conditions; returns the list.

    Shared by the pull-based :class:`OrderBy` operator and the event
    runtime's order node so both runtimes use the same typed collation.
    """

    def key_for(condition: OrderCondition):
        def key(solution: Solution):
            try:
                value = evaluate(condition.expression, solution)
            except ExpressionError:
                return (0, "")
            if hasattr(value, "to_python"):
                value = value.to_python()
            elif hasattr(value, "value"):
                value = value.value
            if isinstance(value, bool):
                return (1, int(value))
            if isinstance(value, (int, float)):
                return (2, value)
            return (3, str(value))

        return key

    for condition in reversed(conditions):
        solutions.sort(key=key_for(condition), reverse=not condition.ascending)
    return solutions


def _merge(left: Solution, right: Solution) -> Solution | None:
    """Merge two solutions; None when they disagree on a shared variable."""
    merged = dict(left)
    for name, term in right.items():
        bound = merged.get(name)
        if bound is None:
            merged[name] = term
        elif bound != term:
            return None
    return merged


@dataclass
class SymmetricHashJoin(FedOperator):
    """ANAPSID's agjoin: a non-blocking symmetric hash join.

    Both inputs are polled in alternation; each arriving solution is
    inserted into its side's hash table (keyed by the join variables) and
    probed against the opposite table, emitting joins immediately.
    """

    left: FedOperator
    right: FedOperator
    join_variables: tuple[str, ...]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        key_of = self._key_function()
        tables: tuple[dict, dict] = ({}, {})
        iterators = [self.left.execute(context), self.right.execute(context)]
        active = [True, True]
        side = 0
        # Insert/probe costs are batched and flushed before every emitted
        # answer (and at stream end): the clock value at each yield — hence
        # every answer timestamp — is identical to per-tuple charging, but
        # non-joining tuples no longer pay two charge calls each.
        charges = ChargeBatch(context)
        insert_probe = cost.engine_hash_insert + cost.engine_hash_probe
        while active[0] or active[1]:
            if not active[side]:
                side = 1 - side
            try:
                solution = next(iterators[side])
            except StopIteration:
                active[side] = False
                side = 1 - side
                continue
            key = key_of(solution)
            if key is None:
                side = 1 - side
                continue
            charges.add(insert_probe)
            tables[side].setdefault(key, []).append(solution)
            other = tables[1 - side]
            for candidate in other.get(key, ()):  # probe
                if side == 0:
                    merged = _merge(solution, candidate)
                else:
                    merged = _merge(candidate, solution)
                if merged is not None:
                    charges.add(cost.engine_join_output_row)
                    charges.flush()
                    yield merged
            side = 1 - side
        charges.flush()

    def _key_function(self) -> Callable[[Solution], tuple | None]:
        names = self.join_variables

        def key_of(solution: Solution) -> tuple[Term, ...] | None:
            key = []
            for name in names:
                term = solution.get(name)
                if term is None:
                    return None
                key.append(term)
            return tuple(key)

        return key_of

    def children(self) -> list[FedOperator]:
        return [self.left, self.right]

    def label(self) -> str:
        joined = ", ".join(f"?{name}" for name in self.join_variables) or "×"
        return f"SymmetricHashJoin[{joined}]"


@dataclass
class LeftJoin(FedOperator):
    """OPTIONAL: keep every left solution, extend with right matches.

    The right input is materialized into a hash table on the join
    variables (OPTIONAL bodies are typically small); the left streams
    through, emitting each extension — or the bare left solution when the
    optional part has no compatible match.
    """

    left: FedOperator
    right: FedOperator
    join_variables: tuple[str, ...]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        table: dict[tuple, list[Solution]] = {}
        for solution in self.right.execute(context):
            context.charge_engine(cost.engine_hash_insert)
            key = tuple(solution.get(name) for name in self.join_variables)
            table.setdefault(key, []).append(solution)
        for solution in self.left.execute(context):
            context.charge_engine(cost.engine_hash_probe)
            key = tuple(solution.get(name) for name in self.join_variables)
            matched = False
            for candidate in table.get(key, ()):
                merged = _merge(solution, candidate)
                if merged is not None:
                    matched = True
                    context.charge_engine(cost.engine_join_output_row)
                    yield merged
            if not matched:
                yield solution

    def children(self) -> list[FedOperator]:
        return [self.left, self.right]

    def label(self) -> str:
        joined = ", ".join(f"?{name}" for name in self.join_variables) or "×"
        return f"LeftJoin[{joined}] (OPTIONAL)"


@dataclass
class DependentJoin(FedOperator):
    """ANAPSID-style dependent (bound) join.

    Consumes the outer input in blocks; for each block, the distinct values
    of the join variable are pushed into the inner *service* as an IN
    restriction, so the source only returns joinable rows.  Pays one extra
    request per block but can shrink the transferred inner relation
    dramatically when the outer side is selective.
    """

    outer: FedOperator
    inner: ServiceNode
    join_variable: str
    block_size: int = 50

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        block: list[Solution] = []
        outer_stream = self.outer.execute(context)
        while True:
            block.clear()
            for solution in outer_stream:
                if self.join_variable in solution:
                    block.append(solution)
                    if len(block) >= self.block_size:
                        break
            if not block:
                return
            terms = []
            seen: set = set()
            for solution in block:
                term = solution[self.join_variable]
                if term not in seen:
                    seen.add(term)
                    terms.append(term)
            by_term: dict = {}
            for solution in block:
                context.charge_engine(cost.engine_hash_insert)
                by_term.setdefault(solution[self.join_variable], []).append(solution)
            for inner_solution in self.inner.execute_restricted(
                context, self.join_variable, terms
            ):
                context.charge_engine(cost.engine_hash_probe)
                for outer_solution in by_term.get(inner_solution[self.join_variable], ()):
                    merged = _merge(outer_solution, inner_solution)
                    if merged is not None:
                        context.charge_engine(cost.engine_join_output_row)
                        yield merged
            if len(block) < self.block_size:
                return

    def children(self) -> list[FedOperator]:
        return [self.outer, self.inner]

    def label(self) -> str:
        return f"DependentJoin[?{self.join_variable}, block={self.block_size}]"


@dataclass
class EngineFilter(FedOperator):
    """FILTER evaluated at the query-engine level (Heuristic 2's push-up)."""

    child: FedOperator
    filters: list[Filter]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        for solution in self.child.execute(context):
            context.charge_engine(cost.engine_filter_eval * len(self.filters))
            if all(holds(f.expression, solution) for f in self.filters):
                yield solution

    def children(self) -> list[FedOperator]:
        return [self.child]

    def label(self) -> str:
        rendered = " AND ".join(f.expression.n3() for f in self.filters)
        return f"EngineFilter[{rendered}]"


@dataclass
class Project(FedOperator):
    """Restrict solutions to the projected variables."""

    child: FedOperator
    variables: tuple[str, ...]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        names = self.variables
        for solution in self.child.execute(context):
            context.charge_engine(cost.engine_project_row)
            yield {name: solution[name] for name in names if name in solution}

    def children(self) -> list[FedOperator]:
        return [self.child]

    def label(self) -> str:
        return "Project[" + ", ".join(f"?{name}" for name in self.variables) + "]"


@dataclass
class Distinct(FedOperator):
    child: FedOperator

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        seen: set[tuple] = set()
        for solution in self.child.execute(context):
            context.charge_engine(cost.engine_distinct_row)
            key = solution_identity(solution)
            if key not in seen:
                seen.add(key)
                yield solution

    def children(self) -> list[FedOperator]:
        return [self.child]


@dataclass
class Limit(FedOperator):
    child: FedOperator
    limit: int | None = None
    offset: int | None = None

    def execute(self, context: RunContext) -> Iterator[Solution]:
        skipped = produced = 0
        for solution in self.child.execute(context):
            if self.offset and skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield solution

    def children(self) -> list[FedOperator]:
        return [self.child]

    def label(self) -> str:
        return f"Limit[{self.limit}, offset={self.offset}]"


@dataclass
class OrderBy(FedOperator):
    """Blocking sort by ORDER BY conditions (evaluated at the engine)."""

    child: FedOperator
    conditions: list[OrderCondition]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        cost = context.cost_model
        solutions = list(self.child.execute(context))
        context.charge_engine(cost.engine_sort_row * len(solutions))
        yield from sort_solutions(solutions, self.conditions)

    def children(self) -> list[FedOperator]:
        return [self.child]


@dataclass
class Union(FedOperator):
    """Round-robin union of several inputs (no duplicate elimination)."""

    inputs: list[FedOperator]

    def execute(self, context: RunContext) -> Iterator[Solution]:
        iterators = [child.execute(context) for child in self.inputs]
        active = [True] * len(iterators)
        while any(active):
            for position, iterator in enumerate(iterators):
                if not active[position]:
                    continue
                try:
                    yield next(iterator)
                except StopIteration:
                    active[position] = False

    def children(self) -> list[FedOperator]:
        return list(self.inputs)
