"""Source wrappers: translate sub-queries and stream answers with delays.

The wrapper is where the paper injects network latency: *"Network delays are
simulated within the SQL wrapper of Ontario; delaying the retrieval of the
next answer from the source."*  Both wrappers here follow that design:

* :class:`SQLWrapper` translates the star(s) to SQL, executes them on the
  in-process relational engine (pricing the engine's operation counts into
  virtual source time), and charges one network delay per answer retrieved.
* :class:`SPARQLWrapper` evaluates the star over a native RDF source with
  the local BGP matcher, charging triple-lookup costs and per-answer delays.

Both wrappers consult the run's sub-result cache
(:attr:`RunContext.caches`), FedX-style: a hit replays the recorded stream
— re-charging request, source and per-answer network time exactly like a
cold run, so virtual timelines stay bit-identical under a fixed seed — and
a miss records the stream as it is produced, publishing the entry only once
the source exhausted it (a LIMIT-truncated pull caches nothing).  Keys
embed the source's data version, so any INSERT/DELETE or index change on
the underlying store invalidates silently.
"""

from __future__ import annotations

from typing import Iterator, TYPE_CHECKING
from weakref import WeakKeyDictionary

from ..cache import (
    RecordedSparqlResult,
    RecordedSqlResult,
    sparql_result_key,
    sql_result_key,
)
from ..exceptions import WrapperError

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> federation cycle
    from ..core.decomposer import StarSubquery
from ..mapping.rml import ClassMapping
from ..mapping.translator import TranslationResult, translate_stars
from ..relational.meter import OperationMeter
from ..relational.vexecutor import execute_priced
from ..sparql.algebra import Filter
from ..sparql.bgp import evaluate_bgp, evaluate_bgp_columns
from ..sparql.expressions import compile_holds, holds
from ..network.clock import VirtualClock
from .answers import _DELAY_BLOCK, RunContext, Solution
from .batch import BatchBuilder, Handle, RowView, SolutionBatch, observe_batches
from .endpoints import RDFSource, RelationalSource

#: Columnar block cache for relational sub-queries, the SQL analog of the
#: star-match memo in :mod:`repro.sparql.bgp`: the vectorized result of one
#: statement — decoded columns, per-row price deltas, residual — is fully
#: determined by (SQL text, data version, cost model), so engines in batch
#: mode share the blocks instead of re-scanning immutable tables.  Charges
#: are still issued per row by every run; only the data work is shared.
#: Keyed weakly by database so dropped sources release their blocks; capped
#: per database against mutation-heavy runs.
_SQL_BLOCK_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()
_SQL_BLOCK_CAP = 64


def _obs_track(context: RunContext, source_id: str) -> str:
    """The trace track of one wrapper execution.

    Under the event scheduler every wrapper call runs as a producer task
    with a deterministic key, so each (source, task) pair gets its own
    track — which is what lets a Chrome trace show sibling sources'
    gamma delays overlapping.  The sequential runtime has no tasks; all
    of a source's sub-queries share that source's track.
    """
    key = context.key
    if key:
        return f"{source_id} · task {'.'.join(str(part) for part in key)}"
    return source_id


def _observed_stream(
    context: RunContext,
    source_id: str,
    name: str,
    stream,
    **args: object,
):
    """Wrap a wrapper stream in a span from first charge to stream close.

    The span's start/end come from the *driving* context's virtual clock
    (the task clock under the event runtimes), and the ``finally`` makes
    early-abandoned streams (LIMIT consumers) close their span too.  Cache
    behaviour is read off the context's stats delta: one wrapper call
    performs exactly one sub-result lookup when caching is enabled.
    """
    obs = context.obs
    bus = obs.bus
    stats = context.stats
    hits_before = stats.subresult_cache_hits
    misses_before = stats.subresult_cache_misses
    start = context.now()
    rows = 0
    try:
        for solution in stream:
            rows += 1
            yield solution
    finally:
        if stats.subresult_cache_hits > hits_before:
            cache = "hit"
        elif stats.subresult_cache_misses > misses_before:
            cache = "miss"
        else:
            cache = "off"
        bus.add_span(
            name,
            "wrapper",
            _obs_track(context, source_id),
            start,
            context.now(),
            rows=rows,
            cache=cache,
            source=source_id,
            **args,
        )


class SQLWrapper:
    """Wrapper over one relational source."""

    def __init__(self, source: RelationalSource):
        self.source = source

    @property
    def source_id(self) -> str:
        return self.source.source_id

    def translate(
        self,
        stars: list[tuple[StarSubquery, ClassMapping]],
        pushed_filters: list[Filter] | None = None,
    ) -> TranslationResult:
        """Translate stars (merged when several) into one SQL statement."""
        return translate_stars(stars, pushed_filters=pushed_filters)

    def execute(
        self,
        translation: TranslationResult,
        context: RunContext,
    ) -> Iterator[Solution]:
        """Run the SQL and stream solutions, charging source + network time.

        Work done inside the RDBMS is priced from the executor's operation
        meter *as it happens* (the per-row delta), so the virtual timeline
        interleaves source work and transfer exactly like a streaming
        endpoint would.  With a sub-result cache on the context, a recorded
        stream for the same (SQL, data version) replays instead — saving
        the RDBMS wall-clock work while re-charging identical virtual time.

        Observed runs additionally record one wrapper span per execution
        (same charging: the span only reads the clock, never advances it).

        Under ``exec="batch"`` the columnar pipeline runs underneath and
        each handle is materialized back into a dict — the entry point the
        event/thread runtimes use, where the scheduler transports plain
        solutions between tasks.  Charges are issued by the same per-row
        generator either way, so the virtual timeline is identical.
        """
        if context.exec_mode == "batch":
            stream = (
                batch.materialize(idx)
                for batch, idx in self._execute_batch(translation, context)
            )
        else:
            stream = self._execute(translation, context)
        if context.obs is not None:
            yield from _observed_stream(
                context,
                self.source_id,
                f"SQL {self.source_id}",
                stream,
                sql=translation.sql,
            )
            return
        yield from stream

    def execute_batch(
        self,
        translation: TranslationResult,
        context: RunContext,
    ) -> Iterator[Handle]:
        """Run the SQL and stream *batch handles* (columnar hot path).

        Identical charging to :meth:`execute` — the relational plan is
        drained through the vectorized executor, whose per-row price deltas
        are bit-identical to metering the row executor, and every charge is
        still issued lazily from a per-row generator frame so virtual time
        interleaves with sibling plan branches exactly like row mode.
        (Not a generator function: the unobserved path returns the inner
        stream directly, skipping a delegation frame per pulled row.)
        """
        stream = self._execute_batch(translation, context)
        if context.obs is not None:
            return _observed_stream(
                context,
                self.source_id,
                f"SQL {self.source_id}",
                stream,
                sql=translation.sql,
            )
        return stream

    def _execute(
        self,
        translation: TranslationResult,
        context: RunContext,
    ) -> Iterator[Solution]:
        caches = context.caches
        recording: RecordedSqlResult | None = None
        key = None
        if caches is not None and caches.subresults.enabled:
            key = sql_result_key(
                self.source_id, translation.sql, self.source.database.data_version
            )
            cached = caches.subresults.get(key)
            if cached is not None:
                context.stats.subresult_cache_hits += 1
                context.charge_request(self.source_id)
                yield from cached.replay(self.source_id, context)
                return
            context.stats.subresult_cache_misses += 1
            recording = RecordedSqlResult()
        context.charge_request(self.source_id)
        meter = OperationMeter()
        try:
            result = self.source.database.query(translation.statement, meter)
        except Exception as exc:  # pragma: no cover - defensive
            raise WrapperError(
                f"source {self.source_id!r} failed to execute {translation.sql!r}: {exc}"
            ) from exc
        priced_so_far = 0.0
        cost_model = context.cost_model
        for row in result:
            # Price the relational work performed to produce this row.
            total_price = cost_model.price_rdb_operations(meter.counts)
            delta = total_price - priced_so_far
            context.charge_source(self.source_id, delta)
            priced_so_far = total_price
            # The answer crosses the network.
            context.charge_message(self.source_id)
            solution = translation.solution_for(row)
            if recording is not None:
                recording.rows.append(
                    (delta, dict(solution) if solution is not None else None)
                )
            if solution is not None:
                yield solution
        # Residual source work after the last row (e.g. a final scan tail).
        total_price = cost_model.price_rdb_operations(meter.counts)
        context.charge_source(self.source_id, total_price - priced_so_far)
        if recording is not None:
            # Publish only fully-consumed streams: an early-terminated pull
            # (LIMIT) never reaches this point.
            recording.residual_cost = total_price - priced_so_far
            caches.subresults.put(key, recording)

    def _execute_batch(
        self,
        translation: TranslationResult,
        context: RunContext,
    ) -> Iterator[Handle]:
        caches = context.caches
        recording: RecordedSqlResult | None = None
        key = None
        if caches is not None and caches.subresults.enabled:
            key = sql_result_key(
                self.source_id, translation.sql, self.source.database.data_version
            )
            cached = caches.subresults.get(key)
            if cached is not None:
                context.stats.subresult_cache_hits += 1
                context.charge_request(self.source_id)
                yield from self._replay_batch(cached, context)
                return
            context.stats.subresult_cache_misses += 1
            recording = RecordedSqlResult()
        context.charge_request(self.source_id)
        db = self.source.database
        batch_size = context.batch_size
        per_db = _SQL_BLOCK_CACHE.get(db)
        if per_db is None:
            per_db = _SQL_BLOCK_CACHE[db] = {}
        block_key = (translation.sql, db.data_version, context.cost_model, batch_size)
        block = per_db.get(block_key)
        if block is None:
            # Vectorized fetch + decode + chunking: pure data work (no
            # clock or RNG involvement), fully determined by the cache key,
            # so it runs eagerly and is shared across runs.
            try:
                plan = db.plan(translation.statement)
                rows, deltas, residual = execute_priced(plan, context.cost_model)
            except Exception as exc:  # pragma: no cover - defensive
                raise WrapperError(
                    f"source {self.source_id!r} failed to execute {translation.sql!r}: {exc}"
                ) from exc
            names, columns, invalid = translation.decode_columns(rows)
            count = len(rows)
            handles: list[Handle | None] = [None] * count
            fills: list[int] = []
            valid = (
                range(count)
                if not invalid
                else [i for i in range(count) if i not in invalid]
            )
            for start in range(0, len(valid), batch_size):
                chunk = valid[start : start + batch_size]
                batch = SolutionBatch(
                    names, [[column[i] for i in chunk] for column in columns]
                )
                fills.append(len(chunk))
                for offset, i in enumerate(chunk):
                    handles[i] = (batch, offset)
            pairs = list(zip(names, columns))
            row_events = [
                (
                    deltas[i],
                    {name: column[i] for name, column in pairs}
                    if handles[i] is not None
                    else None,
                )
                for i in range(count)
            ]
            if len(per_db) >= _SQL_BLOCK_CAP:
                per_db.clear()
            block = per_db[block_key] = (deltas, residual, handles, fills, row_events)
        deltas, residual, handles, fills, row_events = block
        count = len(handles)
        source_id = self.source_id
        if recording is not None:
            # The recorded events are prebuilt with the block (the tuples
            # are immutable and row-mode replay copies each solution dict).
            recording.rows = list(row_events)
            recording.residual_cost = residual
        # The loop below inlines context.charge_source + charge_message
        # (including next_delay's buffered block sampling): identical float
        # adds on the same accumulators in the same order, minus the
        # per-row function-call overhead of the row path.
        clock = context.clock
        virtual = type(clock) is VirtualClock
        clock_sleep = clock.sleep
        stats = context.stats
        src = stats.source(source_id)
        overhead = context.cost_model.message_overhead
        sample_block = context.network.delay.sample_block
        rng = context.rng
        try:
            for i in range(count):
                delta = deltas[i]
                if delta > 0:
                    if virtual:
                        clock._now += delta
                    else:
                        clock_sleep(delta)
                    src.virtual_cost += delta
                cursor = context._delay_cursor
                buffer = context._delay_buffer
                if cursor >= len(buffer):
                    buffer = context._delay_buffer = sample_block(rng, _DELAY_BLOCK)
                    cursor = 0
                context._delay_cursor = cursor + 1
                pause = buffer[cursor] + overhead
                if virtual:
                    clock._now += pause
                else:
                    clock_sleep(pause)
                stats.messages += 1
                src.answers += 1
                src.network_delay += pause
                handle = handles[i]
                if handle is not None:
                    yield handle
            if residual > 0:
                if virtual:
                    clock._now += residual
                else:
                    clock_sleep(residual)
                src.virtual_cost += residual
            if recording is not None:
                caches.subresults.put(key, recording)
        finally:
            observe_batches(context.obs, f"SQL {source_id}", fills, batch_size)

    def _replay_batch(
        self, recording: RecordedSqlResult, context: RunContext
    ) -> Iterator[Handle]:
        source_id = self.source_id
        batch_size = context.batch_size
        # Chunk the recorded rows once per (recording, batch size) — pure
        # data work, memoized on the recording — so a warm replay is just
        # the charge loop over prebuilt handles.
        prebuilt = getattr(recording, "_batch_replay", None)
        if prebuilt is None or prebuilt[0] != batch_size:
            builders: dict[tuple[str, ...], BatchBuilder] = {}
            handles: list[Handle | None] = []
            for __, solution in recording.rows:
                if solution is None:
                    handles.append(None)
                    continue
                shape = tuple(solution)
                builder = builders.get(shape)
                if builder is None:
                    builder = builders[shape] = BatchBuilder(shape, batch_size)
                handles.append(builder.append([solution[name] for name in shape]))
            fills: list[int] = []
            for builder in builders.values():
                fills.extend(builder.take_completed())
            prebuilt = recording._batch_replay = (batch_size, handles, fills)
        __, handles, fills = prebuilt
        # Inlined charge_source + charge_message, as in _execute_batch.
        clock = context.clock
        virtual = type(clock) is VirtualClock
        clock_sleep = clock.sleep
        stats = context.stats
        src = stats.source(source_id)
        overhead = context.cost_model.message_overhead
        sample_block = context.network.delay.sample_block
        rng = context.rng
        rows = recording.rows
        try:
            for i in range(len(rows)):
                delta = rows[i][0]
                if delta > 0:
                    if virtual:
                        clock._now += delta
                    else:
                        clock_sleep(delta)
                    src.virtual_cost += delta
                cursor = context._delay_cursor
                buffer = context._delay_buffer
                if cursor >= len(buffer):
                    buffer = context._delay_buffer = sample_block(rng, _DELAY_BLOCK)
                    cursor = 0
                context._delay_cursor = cursor + 1
                pause = buffer[cursor] + overhead
                if virtual:
                    clock._now += pause
                else:
                    clock_sleep(pause)
                stats.messages += 1
                src.answers += 1
                src.network_delay += pause
                handle = handles[i]
                if handle is not None:
                    yield handle
            residual = recording.residual_cost
            if residual > 0:
                if virtual:
                    clock._now += residual
                else:
                    clock_sleep(residual)
                src.virtual_cost += residual
        finally:
            observe_batches(context.obs, f"SQL {source_id}", fills, batch_size)


class SPARQLWrapper:
    """Wrapper over one native RDF source."""

    def __init__(self, source: RDFSource):
        self.source = source

    @property
    def source_id(self) -> str:
        return self.source.source_id

    def execute(
        self,
        star: StarSubquery,
        context: RunContext,
        pushed_filters: list[Filter] | None = None,
        bindings: tuple[str, frozenset] | None = None,
    ) -> Iterator[Solution]:
        """Evaluate the star's BGP over the graph, streaming solutions.

        ``bindings`` restricts one variable to a set of terms — the SPARQL
        equivalent of a VALUES clause, used by the dependent (bound) join.
        Restricted-out solutions are filtered *at the source*: they never
        cross the network.

        Under ``exec="batch"`` the columnar pipeline runs underneath and
        handles are materialized back into dicts (event/thread entry point);
        the charge sequence is identical either way.
        """
        if context.exec_mode == "batch":
            stream = (
                batch.materialize(idx)
                for batch, idx in self._execute_batch(
                    star, context, pushed_filters, bindings
                )
            )
        else:
            stream = self._execute(star, context, pushed_filters, bindings)
        if context.obs is not None:
            patterns = " . ".join(p.n3().rstrip(" .") for p in star.patterns)
            yield from _observed_stream(
                context,
                self.source_id,
                f"SPARQL {self.source_id}",
                stream,
                patterns=patterns,
                restricted=bindings is not None,
            )
            return
        yield from stream

    def execute_batch(
        self,
        star: StarSubquery,
        context: RunContext,
        pushed_filters: list[Filter] | None = None,
        bindings: tuple[str, frozenset] | None = None,
    ) -> Iterator[Handle]:
        """Evaluate the star and stream *batch handles* (columnar hot path).

        Not a generator function — the unobserved path returns the inner
        stream directly, skipping a delegation frame per pulled row.
        """
        stream = self._execute_batch(star, context, pushed_filters, bindings)
        if context.obs is not None:
            patterns = " . ".join(p.n3().rstrip(" .") for p in star.patterns)
            return _observed_stream(
                context,
                self.source_id,
                f"SPARQL {self.source_id}",
                stream,
                patterns=patterns,
                restricted=bindings is not None,
            )
        return stream

    def _execute(
        self,
        star: StarSubquery,
        context: RunContext,
        pushed_filters: list[Filter] | None = None,
        bindings: tuple[str, frozenset] | None = None,
    ) -> Iterator[Solution]:
        cost_model = context.cost_model
        lookup_cost = cost_model.rdf_triple_lookup * len(star.patterns)
        caches = context.caches
        recording: RecordedSparqlResult | None = None
        key = None
        if caches is not None and caches.subresults.enabled:
            key = sparql_result_key(
                self.source_id,
                " . ".join(pattern.n3() for pattern in star.patterns),
                " && ".join(f.n3() for f in pushed_filters or []),
                None
                if bindings is None
                else (bindings[0], tuple(sorted(term.n3() for term in bindings[1]))),
                self.source.graph.version,
            )
            cached = caches.subresults.get(key)
            if cached is not None:
                context.stats.subresult_cache_hits += 1
                context.charge_request(self.source_id)
                yield from cached.replay(self.source_id, context)
                return
            context.stats.subresult_cache_misses += 1
            recording = RecordedSparqlResult(
                lookup_cost=lookup_cost, output_cost=cost_model.rdf_output_row
            )
        context.charge_request(self.source_id)
        filters = list(pushed_filters or [])
        tests = [compile_holds(f.expression) for f in filters]
        for solution in evaluate_bgp(self.source.graph, star.patterns):
            # Each solution required one lookup per triple pattern (amortized).
            context.charge_source(self.source_id, lookup_cost)
            dropped = False
            if bindings is not None:
                variable, terms = bindings
                dropped = solution.get(variable) not in terms
            if not dropped and filters:
                dropped = not all(test(solution) for test in tests)
            if recording is not None:
                recording.matches.append(None if dropped else dict(solution))
            if dropped:
                continue
            context.charge_source(self.source_id, cost_model.rdf_output_row)
            context.charge_message(self.source_id)
            yield dict(solution)
        if recording is not None:
            caches.subresults.put(key, recording)

    def _execute_batch(
        self,
        star: StarSubquery,
        context: RunContext,
        pushed_filters: list[Filter] | None = None,
        bindings: tuple[str, frozenset] | None = None,
    ) -> Iterator[Handle]:
        cost_model = context.cost_model
        lookup_cost = cost_model.rdf_triple_lookup * len(star.patterns)
        caches = context.caches
        recording: RecordedSparqlResult | None = None
        key = None
        if caches is not None and caches.subresults.enabled:
            key = sparql_result_key(
                self.source_id,
                " . ".join(pattern.n3() for pattern in star.patterns),
                " && ".join(f.n3() for f in pushed_filters or []),
                None
                if bindings is None
                else (bindings[0], tuple(sorted(term.n3() for term in bindings[1]))),
                self.source.graph.version,
            )
            cached = caches.subresults.get(key)
            if cached is not None:
                context.stats.subresult_cache_hits += 1
                context.charge_request(self.source_id)
                yield from self._replay_batch(cached, context)
                return
            context.stats.subresult_cache_misses += 1
            recording = RecordedSparqlResult(
                lookup_cost=lookup_cost, output_cost=cost_model.rdf_output_row
            )
        context.charge_request(self.source_id)
        filters = list(pushed_filters or [])
        tests = [compile_holds(f.expression) for f in filters]
        output_cost = cost_model.rdf_output_row
        source_id = self.source_id
        charge_source = context.charge_source
        charge_message = context.charge_message
        batch_size = context.batch_size
        columnar = evaluate_bgp_columns(self.source.graph, star.patterns)
        if columnar is not None:
            names, columns = columnar
            count = len(columns[0]) if columns else 0
            # Restriction/filter checks and chunking are pure data work (no
            # clock or RNG), so they run eagerly; charges are then issued
            # per match from the generator loop, exactly like row mode.
            kept: list[int] | range
            if bindings is None and not filters:
                kept = range(count)
            else:
                check_batch = SolutionBatch(names, columns) if filters else None
                terms: frozenset | None = None
                bind_pos = -1
                if bindings is not None:
                    variable, terms = bindings
                    bind_pos = names.index(variable) if variable in names else -1
                kept = []
                for i in range(count):
                    if terms is not None:
                        value = columns[bind_pos][i] if bind_pos >= 0 else None
                        if value not in terms:
                            continue
                    if check_batch is not None:
                        view = RowView(check_batch, i)
                        if not all(test(view) for test in tests):
                            continue
                    kept.append(i)
            handles: list[Handle | None] = [None] * count
            fills: list[int] = []
            if isinstance(kept, range):
                for start in range(0, count, batch_size):
                    stop = min(start + batch_size, count)
                    chunk_batch = SolutionBatch(
                        names, [column[start:stop] for column in columns]
                    )
                    fills.append(stop - start)
                    for offset in range(stop - start):
                        handles[start + offset] = (chunk_batch, offset)
            else:
                for start in range(0, len(kept), batch_size):
                    chunk = kept[start : start + batch_size]
                    chunk_batch = SolutionBatch(
                        names, [[column[i] for i in chunk] for column in columns]
                    )
                    fills.append(len(chunk))
                    for offset, i in enumerate(chunk):
                        handles[i] = (chunk_batch, offset)
            pairs = list(zip(names, columns))
            # Inlined charge_source + charge_message (see the SQL wrapper).
            clock = context.clock
            virtual = type(clock) is VirtualClock
            clock_sleep = clock.sleep
            stats = context.stats
            src = stats.source(source_id)
            overhead = cost_model.message_overhead
            sample_block = context.network.delay.sample_block
            rng = context.rng
            lookup_positive = lookup_cost > 0
            output_positive = output_cost > 0
            record = recording.matches.append if recording is not None else None
            try:
                for i in range(count):
                    if lookup_positive:
                        if virtual:
                            clock._now += lookup_cost
                        else:
                            clock_sleep(lookup_cost)
                        src.virtual_cost += lookup_cost
                    handle = handles[i]
                    if record is not None:
                        record(
                            None
                            if handle is None
                            else {name: column[i] for name, column in pairs}
                        )
                    if handle is None:
                        continue
                    if output_positive:
                        if virtual:
                            clock._now += output_cost
                        else:
                            clock_sleep(output_cost)
                        src.virtual_cost += output_cost
                    cursor = context._delay_cursor
                    buffer = context._delay_buffer
                    if cursor >= len(buffer):
                        buffer = context._delay_buffer = sample_block(
                            rng, _DELAY_BLOCK
                        )
                        cursor = 0
                    context._delay_cursor = cursor + 1
                    pause = buffer[cursor] + overhead
                    if virtual:
                        clock._now += pause
                    else:
                        clock_sleep(pause)
                    stats.messages += 1
                    src.answers += 1
                    src.network_delay += pause
                    yield handle
                if recording is not None:
                    caches.subresults.put(key, recording)
            finally:
                observe_batches(context.obs, f"SPARQL {source_id}", fills, batch_size)
            return
        builders: dict[tuple[str, ...], BatchBuilder] = {}
        try:
            for solution in evaluate_bgp(self.source.graph, star.patterns):
                charge_source(source_id, lookup_cost)
                dropped = False
                if bindings is not None:
                    variable, terms = bindings
                    dropped = solution.get(variable) not in terms
                if not dropped and filters:
                    dropped = not all(test(solution) for test in tests)
                if recording is not None:
                    recording.matches.append(None if dropped else dict(solution))
                if dropped:
                    continue
                charge_source(source_id, output_cost)
                charge_message(source_id)
                shape = tuple(solution)
                builder = builders.get(shape)
                if builder is None:
                    builder = builders[shape] = BatchBuilder(shape, batch_size)
                yield builder.append([solution[name] for name in shape])
            if recording is not None:
                caches.subresults.put(key, recording)
        finally:
            for builder in builders.values():
                observe_batches(
                    context.obs,
                    f"SPARQL {source_id}",
                    builder.take_completed(),
                    batch_size,
                )

    def _replay_batch(
        self, recording: RecordedSparqlResult, context: RunContext
    ) -> Iterator[Handle]:
        source_id = self.source_id
        lookup_cost = recording.lookup_cost
        output_cost = recording.output_cost
        batch_size = context.batch_size
        # Prebuilt chunk handles, memoized on the recording (see the SQL
        # wrapper's _replay_batch).
        prebuilt = getattr(recording, "_batch_replay", None)
        if prebuilt is None or prebuilt[0] != batch_size:
            builders: dict[tuple[str, ...], BatchBuilder] = {}
            handles: list[Handle | None] = []
            for solution in recording.matches:
                if solution is None:
                    handles.append(None)
                    continue
                shape = tuple(solution)
                builder = builders.get(shape)
                if builder is None:
                    builder = builders[shape] = BatchBuilder(shape, batch_size)
                handles.append(builder.append([solution[name] for name in shape]))
            fills: list[int] = []
            for builder in builders.values():
                fills.extend(builder.take_completed())
            prebuilt = recording._batch_replay = (batch_size, handles, fills)
        __, handles, fills = prebuilt
        # Inlined charge_source + charge_message, as in _execute_batch.
        clock = context.clock
        virtual = type(clock) is VirtualClock
        clock_sleep = clock.sleep
        stats = context.stats
        src = stats.source(source_id)
        overhead = context.cost_model.message_overhead
        sample_block = context.network.delay.sample_block
        rng = context.rng
        lookup_positive = lookup_cost > 0
        output_positive = output_cost > 0
        try:
            for handle in handles:
                if lookup_positive:
                    if virtual:
                        clock._now += lookup_cost
                    else:
                        clock_sleep(lookup_cost)
                    src.virtual_cost += lookup_cost
                if handle is None:
                    continue
                if output_positive:
                    if virtual:
                        clock._now += output_cost
                    else:
                        clock_sleep(output_cost)
                    src.virtual_cost += output_cost
                cursor = context._delay_cursor
                buffer = context._delay_buffer
                if cursor >= len(buffer):
                    buffer = context._delay_buffer = sample_block(rng, _DELAY_BLOCK)
                    cursor = 0
                context._delay_cursor = cursor + 1
                pause = buffer[cursor] + overhead
                if virtual:
                    clock._now += pause
                else:
                    clock_sleep(pause)
                stats.messages += 1
                src.answers += 1
                src.network_delay += pause
                yield handle
        finally:
            observe_batches(context.obs, f"SPARQL {source_id}", fills, batch_size)

    def execute_restricted(
        self,
        star: StarSubquery,
        context: RunContext,
        variable: str,
        terms: list,
        pushed_filters: list[Filter] | None = None,
    ) -> Iterator[Solution]:
        """VALUES-style restricted evaluation (dependent join support)."""
        yield from self.execute(
            star,
            context,
            pushed_filters=pushed_filters,
            bindings=(variable, frozenset(terms)),
        )

    def execute_restricted_batch(
        self,
        star: StarSubquery,
        context: RunContext,
        variable: str,
        terms: list,
        pushed_filters: list[Filter] | None = None,
    ) -> Iterator[Handle]:
        """Restricted evaluation on the columnar hot path."""
        return self.execute_batch(
            star,
            context,
            pushed_filters=pushed_filters,
            bindings=(variable, frozenset(terms)),
        )
