"""Source wrappers: translate sub-queries and stream answers with delays.

The wrapper is where the paper injects network latency: *"Network delays are
simulated within the SQL wrapper of Ontario; delaying the retrieval of the
next answer from the source."*  Both wrappers here follow that design:

* :class:`SQLWrapper` translates the star(s) to SQL, executes them on the
  in-process relational engine (pricing the engine's operation counts into
  virtual source time), and charges one network delay per answer retrieved.
* :class:`SPARQLWrapper` evaluates the star over a native RDF source with
  the local BGP matcher, charging triple-lookup costs and per-answer delays.

Both wrappers consult the run's sub-result cache
(:attr:`RunContext.caches`), FedX-style: a hit replays the recorded stream
— re-charging request, source and per-answer network time exactly like a
cold run, so virtual timelines stay bit-identical under a fixed seed — and
a miss records the stream as it is produced, publishing the entry only once
the source exhausted it (a LIMIT-truncated pull caches nothing).  Keys
embed the source's data version, so any INSERT/DELETE or index change on
the underlying store invalidates silently.
"""

from __future__ import annotations

from typing import Iterator, TYPE_CHECKING

from ..cache import (
    RecordedSparqlResult,
    RecordedSqlResult,
    sparql_result_key,
    sql_result_key,
)
from ..exceptions import WrapperError

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> federation cycle
    from ..core.decomposer import StarSubquery
from ..mapping.rml import ClassMapping
from ..mapping.translator import TranslationResult, translate_stars
from ..relational.meter import OperationMeter
from ..sparql.algebra import Filter
from ..sparql.bgp import evaluate_bgp
from ..sparql.expressions import holds
from .answers import RunContext, Solution
from .endpoints import RDFSource, RelationalSource


def _obs_track(context: RunContext, source_id: str) -> str:
    """The trace track of one wrapper execution.

    Under the event scheduler every wrapper call runs as a producer task
    with a deterministic key, so each (source, task) pair gets its own
    track — which is what lets a Chrome trace show sibling sources'
    gamma delays overlapping.  The sequential runtime has no tasks; all
    of a source's sub-queries share that source's track.
    """
    key = context.key
    if key:
        return f"{source_id} · task {'.'.join(str(part) for part in key)}"
    return source_id


def _observed_stream(
    context: RunContext,
    source_id: str,
    name: str,
    stream,
    **args: object,
):
    """Wrap a wrapper stream in a span from first charge to stream close.

    The span's start/end come from the *driving* context's virtual clock
    (the task clock under the event runtimes), and the ``finally`` makes
    early-abandoned streams (LIMIT consumers) close their span too.  Cache
    behaviour is read off the context's stats delta: one wrapper call
    performs exactly one sub-result lookup when caching is enabled.
    """
    obs = context.obs
    bus = obs.bus
    stats = context.stats
    hits_before = stats.subresult_cache_hits
    misses_before = stats.subresult_cache_misses
    start = context.now()
    rows = 0
    try:
        for solution in stream:
            rows += 1
            yield solution
    finally:
        if stats.subresult_cache_hits > hits_before:
            cache = "hit"
        elif stats.subresult_cache_misses > misses_before:
            cache = "miss"
        else:
            cache = "off"
        bus.add_span(
            name,
            "wrapper",
            _obs_track(context, source_id),
            start,
            context.now(),
            rows=rows,
            cache=cache,
            source=source_id,
            **args,
        )


class SQLWrapper:
    """Wrapper over one relational source."""

    def __init__(self, source: RelationalSource):
        self.source = source

    @property
    def source_id(self) -> str:
        return self.source.source_id

    def translate(
        self,
        stars: list[tuple[StarSubquery, ClassMapping]],
        pushed_filters: list[Filter] | None = None,
    ) -> TranslationResult:
        """Translate stars (merged when several) into one SQL statement."""
        return translate_stars(stars, pushed_filters=pushed_filters)

    def execute(
        self,
        translation: TranslationResult,
        context: RunContext,
    ) -> Iterator[Solution]:
        """Run the SQL and stream solutions, charging source + network time.

        Work done inside the RDBMS is priced from the executor's operation
        meter *as it happens* (the per-row delta), so the virtual timeline
        interleaves source work and transfer exactly like a streaming
        endpoint would.  With a sub-result cache on the context, a recorded
        stream for the same (SQL, data version) replays instead — saving
        the RDBMS wall-clock work while re-charging identical virtual time.

        Observed runs additionally record one wrapper span per execution
        (same charging: the span only reads the clock, never advances it).
        """
        if context.obs is not None:
            yield from _observed_stream(
                context,
                self.source_id,
                f"SQL {self.source_id}",
                self._execute(translation, context),
                sql=translation.sql,
            )
            return
        yield from self._execute(translation, context)

    def _execute(
        self,
        translation: TranslationResult,
        context: RunContext,
    ) -> Iterator[Solution]:
        caches = context.caches
        recording: RecordedSqlResult | None = None
        key = None
        if caches is not None and caches.subresults.enabled:
            key = sql_result_key(
                self.source_id, translation.sql, self.source.database.data_version
            )
            cached = caches.subresults.get(key)
            if cached is not None:
                context.stats.subresult_cache_hits += 1
                context.charge_request(self.source_id)
                yield from cached.replay(self.source_id, context)
                return
            context.stats.subresult_cache_misses += 1
            recording = RecordedSqlResult()
        context.charge_request(self.source_id)
        meter = OperationMeter()
        try:
            result = self.source.database.query(translation.statement, meter)
        except Exception as exc:  # pragma: no cover - defensive
            raise WrapperError(
                f"source {self.source_id!r} failed to execute {translation.sql!r}: {exc}"
            ) from exc
        priced_so_far = 0.0
        cost_model = context.cost_model
        for row in result:
            # Price the relational work performed to produce this row.
            total_price = cost_model.price_rdb_operations(meter.counts)
            delta = total_price - priced_so_far
            context.charge_source(self.source_id, delta)
            priced_so_far = total_price
            # The answer crosses the network.
            context.charge_message(self.source_id)
            solution = translation.solution_for(row)
            if recording is not None:
                recording.rows.append(
                    (delta, dict(solution) if solution is not None else None)
                )
            if solution is not None:
                yield solution
        # Residual source work after the last row (e.g. a final scan tail).
        total_price = cost_model.price_rdb_operations(meter.counts)
        context.charge_source(self.source_id, total_price - priced_so_far)
        if recording is not None:
            # Publish only fully-consumed streams: an early-terminated pull
            # (LIMIT) never reaches this point.
            recording.residual_cost = total_price - priced_so_far
            caches.subresults.put(key, recording)


class SPARQLWrapper:
    """Wrapper over one native RDF source."""

    def __init__(self, source: RDFSource):
        self.source = source

    @property
    def source_id(self) -> str:
        return self.source.source_id

    def execute(
        self,
        star: StarSubquery,
        context: RunContext,
        pushed_filters: list[Filter] | None = None,
        bindings: tuple[str, frozenset] | None = None,
    ) -> Iterator[Solution]:
        """Evaluate the star's BGP over the graph, streaming solutions.

        ``bindings`` restricts one variable to a set of terms — the SPARQL
        equivalent of a VALUES clause, used by the dependent (bound) join.
        Restricted-out solutions are filtered *at the source*: they never
        cross the network.
        """
        if context.obs is not None:
            patterns = " . ".join(p.n3().rstrip(" .") for p in star.patterns)
            yield from _observed_stream(
                context,
                self.source_id,
                f"SPARQL {self.source_id}",
                self._execute(star, context, pushed_filters, bindings),
                patterns=patterns,
                restricted=bindings is not None,
            )
            return
        yield from self._execute(star, context, pushed_filters, bindings)

    def _execute(
        self,
        star: StarSubquery,
        context: RunContext,
        pushed_filters: list[Filter] | None = None,
        bindings: tuple[str, frozenset] | None = None,
    ) -> Iterator[Solution]:
        cost_model = context.cost_model
        lookup_cost = cost_model.rdf_triple_lookup * len(star.patterns)
        caches = context.caches
        recording: RecordedSparqlResult | None = None
        key = None
        if caches is not None and caches.subresults.enabled:
            key = sparql_result_key(
                self.source_id,
                " . ".join(pattern.n3() for pattern in star.patterns),
                " && ".join(f.n3() for f in pushed_filters or []),
                None
                if bindings is None
                else (bindings[0], tuple(sorted(term.n3() for term in bindings[1]))),
                self.source.graph.version,
            )
            cached = caches.subresults.get(key)
            if cached is not None:
                context.stats.subresult_cache_hits += 1
                context.charge_request(self.source_id)
                yield from cached.replay(self.source_id, context)
                return
            context.stats.subresult_cache_misses += 1
            recording = RecordedSparqlResult(
                lookup_cost=lookup_cost, output_cost=cost_model.rdf_output_row
            )
        context.charge_request(self.source_id)
        filters = list(pushed_filters or [])
        for solution in evaluate_bgp(self.source.graph, star.patterns):
            # Each solution required one lookup per triple pattern (amortized).
            context.charge_source(self.source_id, lookup_cost)
            dropped = False
            if bindings is not None:
                variable, terms = bindings
                dropped = solution.get(variable) not in terms
            if not dropped and filters:
                dropped = not all(holds(f.expression, solution) for f in filters)
            if recording is not None:
                recording.matches.append(None if dropped else dict(solution))
            if dropped:
                continue
            context.charge_source(self.source_id, cost_model.rdf_output_row)
            context.charge_message(self.source_id)
            yield dict(solution)
        if recording is not None:
            caches.subresults.put(key, recording)

    def execute_restricted(
        self,
        star: StarSubquery,
        context: RunContext,
        variable: str,
        terms: list,
        pushed_filters: list[Filter] | None = None,
    ) -> Iterator[Solution]:
        """VALUES-style restricted evaluation (dependent join support)."""
        yield from self.execute(
            star,
            context,
            pushed_filters=pushed_filters,
            bindings=(variable, frozenset(terms)),
        )
