"""Source wrappers: translate sub-queries and stream answers with delays.

The wrapper is where the paper injects network latency: *"Network delays are
simulated within the SQL wrapper of Ontario; delaying the retrieval of the
next answer from the source."*  Both wrappers here follow that design:

* :class:`SQLWrapper` translates the star(s) to SQL, executes them on the
  in-process relational engine (pricing the engine's operation counts into
  virtual source time), and charges one network delay per answer retrieved.
* :class:`SPARQLWrapper` evaluates the star over a native RDF source with
  the local BGP matcher, charging triple-lookup costs and per-answer delays.
"""

from __future__ import annotations

from typing import Iterator, TYPE_CHECKING

from ..exceptions import WrapperError

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> federation cycle
    from ..core.decomposer import StarSubquery
from ..mapping.rml import ClassMapping
from ..mapping.translator import TranslationResult, translate_stars
from ..relational.meter import OperationMeter
from ..sparql.algebra import Filter
from ..sparql.bgp import evaluate_bgp
from ..sparql.expressions import holds
from .answers import RunContext, Solution
from .endpoints import RDFSource, RelationalSource


class SQLWrapper:
    """Wrapper over one relational source."""

    def __init__(self, source: RelationalSource):
        self.source = source

    @property
    def source_id(self) -> str:
        return self.source.source_id

    def translate(
        self,
        stars: list[tuple[StarSubquery, ClassMapping]],
        pushed_filters: list[Filter] | None = None,
    ) -> TranslationResult:
        """Translate stars (merged when several) into one SQL statement."""
        return translate_stars(stars, pushed_filters=pushed_filters)

    def execute(
        self,
        translation: TranslationResult,
        context: RunContext,
    ) -> Iterator[Solution]:
        """Run the SQL and stream solutions, charging source + network time.

        Work done inside the RDBMS is priced from the executor's operation
        meter *as it happens* (the per-row delta), so the virtual timeline
        interleaves source work and transfer exactly like a streaming
        endpoint would.
        """
        context.charge_request(self.source_id)
        meter = OperationMeter()
        try:
            result = self.source.database.query(translation.statement, meter)
        except Exception as exc:  # pragma: no cover - defensive
            raise WrapperError(
                f"source {self.source_id!r} failed to execute {translation.sql!r}: {exc}"
            ) from exc
        priced_so_far = 0.0
        cost_model = context.cost_model
        for row in result:
            # Price the relational work performed to produce this row.
            total_price = cost_model.price_rdb_operations(meter.counts)
            context.charge_source(self.source_id, total_price - priced_so_far)
            priced_so_far = total_price
            # The answer crosses the network.
            context.charge_message(self.source_id)
            solution = translation.solution_for(row)
            if solution is not None:
                yield solution
        # Residual source work after the last row (e.g. a final scan tail).
        total_price = cost_model.price_rdb_operations(meter.counts)
        context.charge_source(self.source_id, total_price - priced_so_far)


class SPARQLWrapper:
    """Wrapper over one native RDF source."""

    def __init__(self, source: RDFSource):
        self.source = source

    @property
    def source_id(self) -> str:
        return self.source.source_id

    def execute(
        self,
        star: StarSubquery,
        context: RunContext,
        pushed_filters: list[Filter] | None = None,
        bindings: tuple[str, frozenset] | None = None,
    ) -> Iterator[Solution]:
        """Evaluate the star's BGP over the graph, streaming solutions.

        ``bindings`` restricts one variable to a set of terms — the SPARQL
        equivalent of a VALUES clause, used by the dependent (bound) join.
        Restricted-out solutions are filtered *at the source*: they never
        cross the network.
        """
        context.charge_request(self.source_id)
        cost_model = context.cost_model
        lookup_cost = cost_model.rdf_triple_lookup * len(star.patterns)
        filters = list(pushed_filters or [])
        for solution in evaluate_bgp(self.source.graph, star.patterns):
            # Each solution required one lookup per triple pattern (amortized).
            context.charge_source(self.source_id, lookup_cost)
            if bindings is not None:
                variable, terms = bindings
                if solution.get(variable) not in terms:
                    continue
            if filters and not all(holds(f.expression, solution) for f in filters):
                continue
            context.charge_source(self.source_id, cost_model.rdf_output_row)
            context.charge_message(self.source_id)
            yield dict(solution)

    def execute_restricted(
        self,
        star: StarSubquery,
        context: RunContext,
        variable: str,
        terms: list,
        pushed_filters: list[Filter] | None = None,
    ) -> Iterator[Solution]:
        """VALUES-style restricted evaluation (dependent join support)."""
        yield from self.execute(
            star,
            context,
            pushed_filters=pushed_filters,
            bindings=(variable, frozenset(terms)),
        )
