"""Answers, run context and execution statistics.

A *solution* is a ``dict[str, Term]`` (variable name -> RDF term).  The
:class:`RunContext` bundles everything one query execution shares: the
clock, the cost model, the network setting, the RNG and the statistics
being collected — including the **answer trace** (time, answer index) that
reproduces the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..cache import CacheRegistry
from ..network.clock import Clock, VirtualClock
from ..network.costmodel import CostModel, DEFAULT_COST_MODEL
from ..network.delays import NetworkSetting
from ..rdf.terms import Term

if TYPE_CHECKING:  # pragma: no cover
    pass

Solution = dict[str, Term]

#: Engine execution modes: ``row`` is the original dict-per-answer pull
#: chain, ``batch`` the columnar data plane of ``federation.batch``.
EXEC_MODES = ("row", "batch")

#: Default rows per columnar batch chunk (overridable per engine via
#: ``batch_size=``, the ``--batch-size`` flag, or ``REPRO_BATCH_SIZE``).
DEFAULT_BATCH_SIZE = 256

#: How many network-delay samples a batch-mode context draws per RNG refill.
_DELAY_BLOCK = 512

#: Interned sorted variable-name tuples, keyed by the (insertion-ordered)
#: names of a solution.  Query executions see a handful of distinct
#: solution shapes but millions of solutions; sharing one sorted tuple per
#: shape removes a per-solution sort from every Distinct/key hot loop.
_NAME_TUPLES: dict[tuple[str, ...], tuple[str, ...]] = {}


def interned_names(solution: Solution) -> tuple[str, ...]:
    """The solution's variable names as one shared, sorted tuple."""
    key = tuple(solution)
    cached = _NAME_TUPLES.get(key)
    if cached is None:
        cached = tuple(sorted(key))
        _NAME_TUPLES[key] = cached
    return cached


class ChargeBatch:
    """Accumulates engine charges and applies them to the clock in blocks.

    Per-tuple ``charge_engine`` calls dominate the Python overhead of the
    symmetric hash join's insert/probe loop.  Batching is safe because a
    virtual clock only *sums* durations: as long as every pending charge is
    flushed before an answer leaves the operator (and at stream end), the
    clock value observed at each yield — and therefore every answer
    timestamp and the final execution time — is unchanged.
    """

    __slots__ = ("_context", "_pending")

    def __init__(self, context: "RunContext"):
        self._context = context
        self._pending = 0.0

    def add(self, seconds: float) -> None:
        self._pending += seconds

    def flush(self) -> None:
        if self._pending:
            self._context.charge_engine(self._pending)
            self._pending = 0.0


@dataclass
class SourceStats:
    """Per-source accounting of one run."""

    requests: int = 0
    answers: int = 0
    virtual_cost: float = 0.0
    #: Network time (sampled delay + message overhead) charged for this
    #: source's requests and answer transfers — the per-source "delay
    #: charged" series the observability layer reports.
    network_delay: float = 0.0


@dataclass
class ExecutionStats:
    """Everything measured during one query execution.

    The ``*_cache_*`` fields report this run's cache behaviour only; the
    virtual-time metrics above them are cache-neutral by construction
    (cached replays re-charge the clock identically to a cold run).
    ``plan_cache_hit`` is None when no plan cache was consulted.
    """

    answers: int = 0
    execution_time: float = 0.0
    time_to_first_answer: float | None = None
    trace: list[tuple[float, int]] = field(default_factory=list)
    messages: int = 0
    engine_cost: float = 0.0
    source_stats: dict[str, SourceStats] = field(default_factory=dict)
    plan_cache_hit: bool | None = None
    subresult_cache_hits: int = 0
    subresult_cache_misses: int = 0

    def cache_summary(self) -> str:
        plan = (
            "off"
            if self.plan_cache_hit is None
            else ("hit" if self.plan_cache_hit else "miss")
        )
        return (
            f"plan={plan} subresults={self.subresult_cache_hits} hit / "
            f"{self.subresult_cache_misses} miss"
        )

    def record_answer(self, timestamp: float) -> None:
        self.answers += 1
        if self.time_to_first_answer is None:
            self.time_to_first_answer = timestamp
        self.trace.append((timestamp, self.answers))

    def source(self, source_id: str) -> SourceStats:
        if source_id not in self.source_stats:
            self.source_stats[source_id] = SourceStats()
        return self.source_stats[source_id]

    def absorb_transfer(self, other: "ExecutionStats") -> None:
        """Fold a producer task's private transfer accounting into this run.

        The event scheduler gives every producer task its own stats object
        (so thread-pool workers never race on shared counters) and merges
        them here when the task's stream closes.  Only the commutative
        transfer counters move; the engine-side metrics (trace, engine
        cost, execution time) always live on the run's main stats.
        """
        self.messages += other.messages
        self.subresult_cache_hits += other.subresult_cache_hits
        self.subresult_cache_misses += other.subresult_cache_misses
        for source_id, stats in other.source_stats.items():
            mine = self.source(source_id)
            mine.requests += stats.requests
            mine.answers += stats.answers
            mine.virtual_cost += stats.virtual_cost
            mine.network_delay += stats.network_delay

    def blame_components(self) -> dict:
        """Accumulator view of where this run's time went, by blame class.

        Engine charges are ``engine_work``, source-side virtual cost is
        ``cache_miss_penalty`` (the price of actually touching the source
        instead of a cache) and transfer pauses are ``network_delay``.
        Under the event/thread runtimes sibling sources overlap, so these
        components can sum to *more* than ``execution_time`` — they feed
        per-class histograms and accumulator-based attribution, not the
        exact critical-path tiling (see :mod:`repro.obs.critpath`).
        """
        network = 0.0
        cache = 0.0
        per_source: dict[str, dict[str, float]] = {}
        for source_id in sorted(self.source_stats):
            source = self.source_stats[source_id]
            network += source.network_delay
            cache += source.virtual_cost
            per_source[source_id] = {
                "network_delay": source.network_delay,
                "cache_miss_penalty": source.virtual_cost,
            }
        return {
            "engine_work": self.engine_cost,
            "network_delay": network,
            "cache_miss_penalty": cache,
            "sources": per_source,
            "total": self.execution_time,
        }

    @property
    def throughput(self) -> float:
        """Answers per (virtual) second over the whole execution."""
        if self.execution_time <= 0:
            return 0.0
        return self.answers / self.execution_time

    def answers_at(self, timestamp: float) -> int:
        """How many answers had been produced by *timestamp* (dief@t-style)."""
        produced = 0
        for when, count in self.trace:
            if when <= timestamp:
                produced = count
            else:
                break
        return produced

    def trace_area(self, until: float | None = None) -> float:
        """Area under the answer trace (dief@t); larger = more diefficient."""
        horizon = until if until is not None else self.execution_time
        area = 0.0
        previous_time = 0.0
        previous_count = 0
        for when, count in self.trace:
            if when > horizon:
                break
            area += previous_count * (when - previous_time)
            previous_time, previous_count = when, count
        area += previous_count * max(0.0, horizon - previous_time)
        return area


class RunContext:
    """Shared state of one query execution."""

    def __init__(
        self,
        network: NetworkSetting | None = None,
        cost_model: CostModel | None = None,
        clock: Clock | None = None,
        seed: int | None = None,
        caches: CacheRegistry | None = None,
        exec_mode: str = "row",
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        self.network = network or NetworkSetting.no_delay()
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.clock = clock if clock is not None else VirtualClock()
        #: The run seed as given.  The sequential runtime feeds it straight
        #: into one shared RNG; the event scheduler derives one independent
        #: substream per producer task from it (see ``repro.runtime.task``).
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.stats = ExecutionStats()
        #: The owning engine's cache registry; None means wrappers run
        #: uncached (e.g. a bare RunContext in tests).
        self.caches = caches
        #: The run's :class:`~repro.obs.observation.RunObservation`, or
        #: None for an unobserved run.  Every instrumentation hook guards
        #: on this being None, which is what makes observation
        #: zero-cost-when-off on the hot paths.
        self.obs = None
        #: The deterministic task identity under the event scheduler (see
        #: :class:`~repro.runtime.task.TaskContext`); the empty tuple marks
        #: the engine-side context of a run.
        self.key: tuple[int, ...] = ()
        #: ``"row"`` or ``"batch"`` — which data plane the wrappers and
        #: operators run.  Charging semantics are identical either way.
        self.exec_mode = exec_mode
        #: Rows per columnar chunk in batch mode.
        self.batch_size = batch_size
        #: Block-sampled network delays (batch mode only).  All delay draws
        #: of one context come from one distribution (``network.delay``), so
        #: the i-th buffered draw equals the i-th scalar draw regardless of
        #: which stream consumes it — refilling in blocks is bit-neutral.
        self._delay_buffer: list[float] = []
        self._delay_cursor = 0

    # -- network-delay sampling ----------------------------------------------

    def next_delay(self) -> float:
        """The next network-delay sample of this context.

        Row mode draws one scalar per message (the original code path);
        batch mode consumes a block-sampled buffer, which is bit-identical
        draw for draw (``sample_block`` is pinned to the scalar sequence by
        tests) but amortizes the RNG call overhead.
        """
        if self.exec_mode != "batch":
            return self.network.delay.sample(self.rng)
        cursor = self._delay_cursor
        buffer = self._delay_buffer
        if cursor >= len(buffer):
            buffer = self._delay_buffer = self.network.delay.sample_block(
                self.rng, _DELAY_BLOCK
            )
            cursor = 0
        self._delay_cursor = cursor + 1
        return buffer[cursor]

    # -- cost charging -------------------------------------------------------

    def charge_engine(self, seconds: float) -> None:
        """Charge engine-side work to the clock."""
        if seconds > 0:
            self.clock.sleep(seconds)
            self.stats.engine_cost += seconds

    def charge_source(self, source_id: str, seconds: float) -> None:
        """Charge source-side (RDB / triple-store) work to the clock."""
        if seconds > 0:
            self.clock.sleep(seconds)
            self.stats.source(source_id).virtual_cost += seconds

    def charge_message(self, source_id: str) -> None:
        """One answer crossing the network: overhead + sampled delay.

        This is the paper's injection point: the wrapper delays the
        retrieval of the next answer from the source.
        """
        pause = self.next_delay() + self.cost_model.message_overhead
        self.clock.sleep(pause)
        self.stats.messages += 1
        source = self.stats.source(source_id)
        source.answers += 1
        source.network_delay += pause

    def charge_request(self, source_id: str) -> None:
        """The round trip that ships one sub-query to a source."""
        pause = self.next_delay() + self.cost_model.message_overhead
        self.clock.sleep(pause)
        self.stats.messages += 1
        source = self.stats.source(source_id)
        source.requests += 1
        source.network_delay += pause

    def now(self) -> float:
        return self.clock.now()
