"""Data-source descriptors of the Semantic Data Lake.

Each member of the lake keeps its original data model (the defining property
of a Semantic Data Lake): relational sources wrap a
:class:`~repro.relational.database.Database` plus the R2RML-style mapping
that lifts it to RDF semantics; native RDF sources wrap a triple store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mapping.rml import SourceMapping
from ..rdf.graph import Graph
from ..rdf.molecules import RDFMoleculeTemplate, extract_molecule_templates
from ..rdf.terms import IRI
from ..relational.database import Database


@dataclass
class DataSource:
    """Base descriptor: a stable id plus the data-model kind."""

    source_id: str

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def molecule_templates(self) -> list[RDFMoleculeTemplate]:
        raise NotImplementedError


@dataclass
class RelationalSource(DataSource):
    """A relational member of the lake (one MySQL container in the paper)."""

    database: Database = None  # type: ignore[assignment]
    mapping: SourceMapping = None  # type: ignore[assignment]

    @property
    def kind(self) -> str:
        return "rdb"

    def molecule_templates(self) -> list[RDFMoleculeTemplate]:
        """Derive RDF-MTs from the mapping + table statistics."""
        molecules = []
        for class_iri, class_mapping in sorted(
            self.mapping.classes.items(), key=lambda item: item[0].value
        ):
            molecule = RDFMoleculeTemplate(
                source_id=self.source_id,
                class_iri=class_iri,
                predicates=set(class_mapping.predicates),
                cardinality=len(self.database.table(class_mapping.table)),
            )
            from ..rdf.namespaces import RDF_TYPE

            molecule.predicates.add(RDF_TYPE)
            for predicate, predicate_mapping in class_mapping.predicates.items():
                if predicate_mapping.kind == "multivalued":
                    molecule.predicate_cardinality[predicate] = len(
                        self.database.table(predicate_mapping.table)
                    )
                else:
                    statistics = self.database.statistics(class_mapping.table)
                    column_statistics = statistics.column(predicate_mapping.column)
                    molecule.predicate_cardinality[predicate] = (
                        column_statistics.non_null_count
                    )
            molecules.append(molecule)
        return molecules

    def class_mapping_for(self, class_iri: IRI):
        return self.mapping.class_mapping(class_iri)


@dataclass
class RDFSource(DataSource):
    """A native RDF member of the lake (a SPARQL endpoint over a graph)."""

    graph: Graph = None  # type: ignore[assignment]
    _molecules: list[RDFMoleculeTemplate] | None = field(default=None, repr=False)

    @property
    def kind(self) -> str:
        return "rdf"

    def molecule_templates(self) -> list[RDFMoleculeTemplate]:
        if self._molecules is None:
            self._molecules = extract_molecule_templates(self.graph, self.source_id)
        return self._molecules
