"""Tokenizer for the SPARQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SPARQLParseError

# Multi-character punctuation first so the scanner is greedy.
_PUNCTUATION = (
    "^^",
    "&&",
    "||",
    "!=",
    "<=",
    ">=",
    "{",
    "}",
    "(",
    ")",
    ".",
    ";",
    ",",
    "=",
    "<",
    ">",
    "!",
    "+",
    "-",
    "*",
    "/",
)

KEYWORDS = frozenset(
    {
        "SELECT",
        "WHERE",
        "FILTER",
        "PREFIX",
        "BASE",
        "DISTINCT",
        "REDUCED",
        "OPTIONAL",
        "UNION",
        "LIMIT",
        "OFFSET",
        "ORDER",
        "BY",
        "ASC",
        "DESC",
        "TRUE",
        "FALSE",
        "A",
    }
)


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token with source position for error reporting."""

    kind: str  # IRIREF | PNAME | VAR | STRING | INTEGER | DECIMAL | KEYWORD | NAME | PUNCT | LANGTAG | EOF
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Hand-rolled scanner producing :class:`Token` objects."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> SPARQLParseError:
        return SPARQLParseError(message, line=self.line, column=self.column)

    def _advance(self, count: int = 1) -> None:
        for __ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self._advance()
            elif char == "#":
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self._advance()
            else:
                return

    def tokens(self) -> list[Token]:
        """Scan the whole input; always ends with an EOF token."""
        result: list[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.kind == "EOF":
                return result

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.text):
            return Token("EOF", "", self.line, self.column)
        line, column = self.line, self.column
        char = self._peek()

        if char == "<" and self._looks_like_iri():
            return self._read_iri(line, column)
        if char in "?$":
            return self._read_variable(line, column)
        if char in "\"'":
            return self._read_string(line, column)
        if char == "@":
            return self._read_langtag(line, column)
        if char.isdigit():
            return self._read_number(line, column)
        if char == "_" and self._peek(1) == ":":
            return self._read_bnode(line, column)
        for punct in _PUNCTUATION:
            if self.text.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token("PUNCT", punct, line, column)
        if char.isalpha():
            return self._read_word(line, column)
        raise self.error(f"unexpected character {char!r}")

    def _looks_like_iri(self) -> bool:
        """Disambiguate ``<`` as IRI-open vs less-than.

        An IRIREF contains no whitespace and closes with ``>`` before any
        character illegal in IRIs appears.
        """
        index = self.pos + 1
        while index < len(self.text):
            char = self.text[index]
            if char == ">":
                return True
            if char in ' \t\r\n"{}|^`\\' or char == "<":
                return False
            index += 1
        return False

    def _read_iri(self, line: int, column: int) -> Token:
        end = self.text.find(">", self.pos + 1)
        if end < 0:
            raise self.error("unterminated IRI")
        value = self.text[self.pos + 1:end]
        self._advance(end - self.pos + 1)
        return Token("IRIREF", value, line, column)

    def _read_variable(self, line: int, column: int) -> Token:
        self._advance()  # ? or $
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        if self.pos == start:
            raise self.error("empty variable name")
        return Token("VAR", self.text[start:self.pos], line, column)

    def _read_string(self, line: int, column: int) -> Token:
        quote = self._peek()
        self._advance()
        parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error("unterminated string literal")
            char = self._peek()
            if char == quote:
                self._advance()
                return Token("STRING", "".join(parts), line, column)
            if char == "\\":
                self._advance()
                escape = self._peek()
                mapping = {"t": "\t", "n": "\n", "r": "\r", "\\": "\\", '"': '"', "'": "'"}
                if escape not in mapping:
                    raise self.error(f"unknown string escape \\{escape}")
                parts.append(mapping[escape])
                self._advance()
            else:
                parts.append(char)
                self._advance()

    def _read_langtag(self, line: int, column: int) -> Token:
        self._advance()  # @
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() == "-"):
            self._advance()
        if self.pos == start:
            raise self.error("empty language tag")
        return Token("LANGTAG", self.text[start:self.pos], line, column)

    def _read_number(self, line: int, column: int) -> Token:
        start = self.pos
        if self._peek() in "+-":
            self._advance()
        saw_dot = False
        saw_exp = False
        while self.pos < len(self.text):
            char = self._peek()
            if char.isdigit():
                self._advance()
            elif char == "." and not saw_dot and not saw_exp and self._peek(1).isdigit():
                saw_dot = True
                self._advance()
            elif char in "eE" and not saw_exp and (self._peek(1).isdigit() or self._peek(1) in "+-"):
                saw_exp = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
            else:
                break
        value = self.text[start:self.pos]
        kind = "DECIMAL" if (saw_dot or saw_exp) else "INTEGER"
        return Token(kind, value, line, column)

    def _read_bnode(self, line: int, column: int) -> Token:
        self._advance(2)  # _:
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() in "-_."):
            self._advance()
        if self.pos == start:
            raise self.error("empty blank node label")
        return Token("BNODE", self.text[start:self.pos], line, column)

    def _read_word(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() in "_-"):
            self._advance()
        word = self.text[start:self.pos]
        # A prefixed name: word followed by ':' (possibly empty prefix handled above).
        if self._peek() == ":":
            self._advance()
            local_start = self.pos
            while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() in "_-."):
                self._advance()
            local = self.text[local_start:self.pos]
            # PN_LOCAL must not end with '.'
            while local.endswith("."):
                local = local[:-1]
                self.pos -= 1
                self.column -= 1
            return Token("PNAME", f"{word}:{local}", line, column)
        if word.upper() in KEYWORDS:
            return Token("KEYWORD", word.upper(), line, column)
        return Token("NAME", word, line, column)


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`SPARQLParseError` on malformed input."""
    return Lexer(text).tokens()
