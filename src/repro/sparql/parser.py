"""Recursive-descent parser for the SPARQL SELECT subset.

Grammar (informal)::

    Query        := Prefix* Select
    Prefix       := 'PREFIX' PNAME ':' IRIREF            # colon folded in PNAME
    Select       := 'SELECT' ('DISTINCT')? ('*' | Var+) 'WHERE'? Group Modifiers
    Group        := '{' (Triples | Filter | Optional | UnionGroup)* '}'
    Triples      := Term Term Term ('.'?)                # plus ';' ',' abbreviations
    Filter       := 'FILTER' '(' Expression ')'
    Optional     := 'OPTIONAL' Group
    UnionGroup   := Group ('UNION' Group)+
    Modifiers    := ('ORDER' 'BY' OrderKey+)? ('LIMIT' INT)? ('OFFSET' INT)?

Expressions use the usual precedence: ``||`` < ``&&`` < comparison <
additive < multiplicative < unary < primary.
"""

from __future__ import annotations

from ..exceptions import SPARQLParseError
from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import (
    BNode,
    IRI,
    Literal,
    PatternTerm,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_INTEGER,
)
from .algebra import (
    BinaryOp,
    Expression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    OrderCondition,
    SelectQuery,
    SUPPORTED_FUNCTIONS,
    TermExpr,
    TriplePattern,
    UnaryOp,
    VariableExpr,
)
from .lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self.prefixes: dict[str, str] = {}

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def error(self, message: str, token: Token | None = None) -> SPARQLParseError:
        token = token or self.peek()
        return SPARQLParseError(message, line=token.line, column=token.column)

    def expect_punct(self, value: str) -> Token:
        token = self.peek()
        if token.kind != "PUNCT" or token.value != value:
            raise self.error(f"expected {value!r}, found {token.value!r}")
        return self.advance()

    def expect_keyword(self, value: str) -> Token:
        token = self.peek()
        if token.kind != "KEYWORD" or token.value != value:
            raise self.error(f"expected {value}, found {token.value!r}")
        return self.advance()

    def at_keyword(self, value: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.value == value

    def at_punct(self, value: str) -> bool:
        token = self.peek()
        return token.kind == "PUNCT" and token.value == value

    # -- entry point --------------------------------------------------------

    def parse_query(self) -> SelectQuery:
        while self.at_keyword("PREFIX") or self.at_keyword("BASE"):
            if self.at_keyword("BASE"):
                raise self.error("BASE declarations are not supported")
            self.parse_prefix()
        query = self.parse_select()
        if self.peek().kind != "EOF":
            raise self.error(f"unexpected trailing token {self.peek().value!r}")
        return query

    def parse_prefix(self) -> None:
        self.expect_keyword("PREFIX")
        token = self.peek()
        if token.kind != "PNAME":
            raise self.error("expected a prefix declaration like `ex:`")
        prefix, __, local = token.value.partition(":")
        if local:
            raise self.error("prefix declaration must end with ':'", token)
        self.advance()
        iri_token = self.peek()
        if iri_token.kind != "IRIREF":
            raise self.error("expected IRI in prefix declaration")
        self.advance()
        self.prefixes[prefix] = iri_token.value

    def parse_select(self) -> SelectQuery:
        self.expect_keyword("SELECT")
        distinct = False
        if self.at_keyword("DISTINCT") or self.at_keyword("REDUCED"):
            distinct = self.peek().value == "DISTINCT"
            self.advance()
        variables: list[Variable] = []
        if self.at_punct("*"):
            self.advance()
        else:
            while self.peek().kind == "VAR":
                variables.append(Variable(self.advance().value))
            if not variables:
                raise self.error("SELECT needs '*' or at least one variable")
        if self.at_keyword("WHERE"):
            self.advance()
        where = self.parse_group()
        order_by: list[OrderCondition] = []
        limit: int | None = None
        offset: int | None = None
        if self.at_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            order_by = self.parse_order_keys()
        if self.at_keyword("LIMIT"):
            self.advance()
            limit = self.parse_non_negative_int("LIMIT")
        if self.at_keyword("OFFSET"):
            self.advance()
            offset = self.parse_non_negative_int("OFFSET")
        return SelectQuery(
            variables=variables,
            where=where,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            offset=offset,
            prefixes=dict(self.prefixes),
        )

    def parse_non_negative_int(self, clause: str) -> int:
        token = self.peek()
        if token.kind != "INTEGER":
            raise self.error(f"{clause} expects a non-negative integer")
        self.advance()
        value = int(token.value)
        if value < 0:
            raise self.error(f"{clause} expects a non-negative integer", token)
        return value

    def parse_order_keys(self) -> list[OrderCondition]:
        keys: list[OrderCondition] = []
        while True:
            if self.at_keyword("ASC") or self.at_keyword("DESC"):
                ascending = self.advance().value == "ASC"
                self.expect_punct("(")
                expression = self.parse_expression()
                self.expect_punct(")")
                keys.append(OrderCondition(expression, ascending))
            elif self.peek().kind == "VAR":
                keys.append(OrderCondition(VariableExpr(Variable(self.advance().value))))
            else:
                break
        if not keys:
            raise self.error("ORDER BY expects at least one key")
        return keys

    # -- graph patterns -----------------------------------------------------

    def parse_group(self) -> GroupGraphPattern:
        self.expect_punct("{")
        group = GroupGraphPattern()
        while not self.at_punct("}"):
            token = self.peek()
            if token.kind == "EOF":
                raise self.error("unterminated group: missing '}'")
            if self.at_keyword("FILTER"):
                self.advance()
                self.expect_punct("(")
                expression = self.parse_expression()
                self.expect_punct(")")
                group.filters.append(Filter(expression))
            elif self.at_keyword("OPTIONAL"):
                self.advance()
                group.optionals.append(self.parse_group())
            elif self.at_punct("{"):
                branches = [self.parse_group()]
                while self.at_keyword("UNION"):
                    self.advance()
                    branches.append(self.parse_group())
                if len(branches) == 1:
                    # A plain nested group: merge it into the parent.
                    nested = branches[0]
                    group.patterns.extend(nested.patterns)
                    group.filters.extend(nested.filters)
                    group.optionals.extend(nested.optionals)
                    group.unions.extend(nested.unions)
                else:
                    group.unions.append(branches)
            else:
                self.parse_triples_block(group)
        self.expect_punct("}")
        return group

    def parse_triples_block(self, group: GroupGraphPattern) -> None:
        subject = self.parse_term(position="subject")
        while True:
            predicate = self.parse_term(position="predicate")
            while True:
                obj = self.parse_term(position="object")
                group.patterns.append(TriplePattern(subject, predicate, obj))
                if self.at_punct(","):
                    self.advance()
                    continue
                break
            if self.at_punct(";"):
                self.advance()
                # allow trailing ';' before '.' or '}'
                if self.at_punct(".") or self.at_punct("}"):
                    break
                continue
            break
        if self.at_punct("."):
            self.advance()

    def parse_term(self, position: str) -> PatternTerm:
        token = self.peek()
        if token.kind == "VAR":
            self.advance()
            return Variable(token.value)
        if token.kind == "IRIREF":
            self.advance()
            return IRI(token.value)
        if token.kind == "PNAME":
            self.advance()
            return self.expand_pname(token)
        if token.kind == "KEYWORD" and token.value == "A" and position == "predicate":
            self.advance()
            return RDF_TYPE
        if token.kind == "BNODE":
            self.advance()
            return BNode(token.value)
        if token.kind in ("STRING", "INTEGER", "DECIMAL"):
            if position != "object":
                raise self.error(f"literal not allowed in {position} position")
            return self.parse_literal()
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            if position != "object":
                raise self.error(f"literal not allowed in {position} position")
            self.advance()
            return Literal(token.value.lower(), XSD_BOOLEAN)
        raise self.error(f"expected a term, found {token.value!r}")

    def expand_pname(self, token: Token) -> IRI:
        prefix, __, local = token.value.partition(":")
        if prefix not in self.prefixes:
            raise self.error(f"unknown prefix {prefix!r}", token)
        return IRI(self.prefixes[prefix] + local)

    def parse_literal(self) -> Literal:
        token = self.advance()
        if token.kind == "INTEGER":
            return Literal(token.value, XSD_INTEGER)
        if token.kind == "DECIMAL":
            return Literal(token.value, XSD_DECIMAL)
        lexical = token.value
        next_token = self.peek()
        if next_token.kind == "LANGTAG":
            self.advance()
            return Literal(lexical, language=next_token.value)
        if next_token.kind == "PUNCT" and next_token.value == "^^":
            self.advance()
            datatype_token = self.peek()
            if datatype_token.kind == "IRIREF":
                self.advance()
                return Literal(lexical, datatype=datatype_token.value)
            if datatype_token.kind == "PNAME":
                self.advance()
                return Literal(lexical, datatype=self.expand_pname(datatype_token).value)
            raise self.error("expected datatype IRI after '^^'")
        return Literal(lexical)

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.at_punct("||"):
            self.advance()
            left = BinaryOp("||", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_comparison()
        while self.at_punct("&&"):
            self.advance()
            left = BinaryOp("&&", left, self.parse_comparison())
        return left

    def parse_comparison(self) -> Expression:
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "PUNCT" and token.value in ("=", "!=", "<", ">", "<=", ">="):
            self.advance()
            return BinaryOp(token.value, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while self.at_punct("+") or self.at_punct("-"):
            operator = self.advance().value
            left = BinaryOp(operator, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while self.at_punct("*") or self.at_punct("/"):
            operator = self.advance().value
            left = BinaryOp(operator, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expression:
        if self.at_punct("!"):
            self.advance()
            return UnaryOp("!", self.parse_unary())
        if self.at_punct("-"):
            self.advance()
            return UnaryOp("-", self.parse_unary())
        if self.at_punct("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.peek()
        if token.kind == "PUNCT" and token.value == "(":
            self.advance()
            expression = self.parse_expression()
            self.expect_punct(")")
            return expression
        if token.kind == "VAR":
            self.advance()
            return VariableExpr(Variable(token.value))
        if token.kind in ("STRING", "INTEGER", "DECIMAL"):
            return TermExpr(self.parse_literal())
        if token.kind == "IRIREF":
            self.advance()
            return TermExpr(IRI(token.value))
        if token.kind == "PNAME":
            self.advance()
            return TermExpr(self.expand_pname(token))
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self.advance()
            return TermExpr(Literal(token.value.lower(), XSD_BOOLEAN))
        if token.kind == "NAME":
            return self.parse_function_call()
        raise self.error(f"expected an expression, found {token.value!r}")

    def parse_function_call(self) -> Expression:
        token = self.advance()
        name = token.value.upper()
        if name not in SUPPORTED_FUNCTIONS:
            raise self.error(f"unsupported function {token.value!r}", token)
        self.expect_punct("(")
        args: list[Expression] = []
        if not self.at_punct(")"):
            args.append(self.parse_expression())
            while self.at_punct(","):
                self.advance()
                args.append(self.parse_expression())
        self.expect_punct(")")
        return FunctionCall(name, tuple(args))


def parse_query(text: str) -> SelectQuery:
    """Parse a SPARQL SELECT query string into a :class:`SelectQuery`."""
    return _Parser(tokenize(text)).parse_query()
