"""Evaluation of SPARQL filter expressions over solution mappings.

A *solution mapping* is a ``dict[str, Term]`` from variable name to RDF term.
Evaluation follows SPARQL's three-valued logic: type errors propagate as
:class:`ExpressionError` and make the enclosing FILTER reject the solution
(unless absorbed by ``||`` / ``!`` semantics like the spec prescribes).
"""

from __future__ import annotations

import re
from typing import Mapping

from ..exceptions import ExpressionError
from ..rdf.terms import (
    BNode,
    IRI,
    Literal,
    Term,
    XSD_BOOLEAN,
    XSD_STRING,
)
from .algebra import (
    BinaryOp,
    Expression,
    FunctionCall,
    TermExpr,
    UnaryOp,
    VariableExpr,
)

Solution = Mapping[str, Term]


def evaluate(expression: Expression, solution: Solution) -> Term | bool | int | float | str:
    """Evaluate *expression* under *solution*.

    Returns either a Python value (for operators) or an RDF term (for
    constants / variables), letting callers coerce as needed.
    """
    if isinstance(expression, TermExpr):
        return expression.term
    if isinstance(expression, VariableExpr):
        name = expression.variable.name
        if name not in solution:
            raise ExpressionError(f"unbound variable ?{name}")
        return solution[name]
    if isinstance(expression, UnaryOp):
        return _evaluate_unary(expression, solution)
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, solution)
    if isinstance(expression, FunctionCall):
        return _evaluate_function(expression, solution)
    raise ExpressionError(f"unknown expression node {expression!r}")


def effective_boolean_value(value: Term | bool | int | float | str) -> bool:
    """SPARQL EBV: booleans, numbers and strings coerce; IRIs are errors."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    if isinstance(value, Literal):
        if value.datatype == XSD_BOOLEAN:
            return value.lexical.strip().lower() in ("true", "1")
        if value.is_numeric:
            python_value = value.to_python()
            if isinstance(python_value, (int, float)):
                return python_value != 0
            raise ExpressionError(f"invalid numeric literal {value.lexical!r}")
        return bool(value.lexical)
    raise ExpressionError(f"no effective boolean value for {value!r}")


def holds(expression: Expression, solution: Solution) -> bool:
    """Return True when the FILTER expression accepts *solution*.

    Evaluation errors reject the solution, mirroring SPARQL semantics where
    an error in a FILTER removes the row.
    """
    try:
        return effective_boolean_value(evaluate(expression, solution))
    except ExpressionError:
        return False


# -- compiled filter predicates ---------------------------------------------

#: Structural memo of compiled FILTER predicates.  Algebra nodes are frozen
#: dataclasses, so equal expressions from different parses share one entry;
#: capped so fuzz runs with many distinct filters cannot grow it unboundedly.
_COMPILED_HOLDS: dict = {}
_COMPILED_HOLDS_CAP = 256

_FLIPPED = {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


def compile_holds(expression: Expression):
    """A compiled ``solution -> bool`` equivalent of ``holds(expression, .)``.

    The common FILTER shape ``?var OP constant`` (either operand order) is
    compiled into a direct closure — constant side coerced once, comparison
    operator bound at compile time — decision-identical to the interpreter
    including its error semantics (unbound variable, mixed-type order, and
    TypeError all reject the row).  Every other shape falls back to the
    interpreter unchanged.
    """
    fn = _COMPILED_HOLDS.get(expression)
    if fn is None:
        if len(_COMPILED_HOLDS) >= _COMPILED_HOLDS_CAP:
            _COMPILED_HOLDS.clear()
        fn = _COMPILED_HOLDS[expression] = _compile_holds(expression)
    return fn


def _compile_holds(expression: Expression):
    if isinstance(expression, BinaryOp) and expression.operator in _FLIPPED:
        left, right = expression.left, expression.right
        operator = expression.operator
        if isinstance(left, TermExpr) and isinstance(right, VariableExpr):
            # constant OP ?var  ==  ?var flipped-OP constant (the mixed-type
            # and error rules of _compare are symmetric in its operands).
            left, right = right, left
            operator = _FLIPPED[operator]
        if isinstance(left, VariableExpr) and isinstance(right, TermExpr):
            return _compile_comparison(left.variable.name, operator, right.term)

    def interpreted(solution: Solution) -> bool:
        return holds(expression, solution)

    return interpreted


def _compile_comparison(name: str, operator: str, term: Term):
    import operator as _operator

    compare = {
        "=": _operator.eq,
        "!=": _operator.ne,
        "<": _operator.lt,
        ">": _operator.gt,
        "<=": _operator.le,
        ">=": _operator.ge,
    }[operator]
    right_value = _to_python(term)
    right_is_number = isinstance(right_value, (int, float)) and not isinstance(
        right_value, bool
    )
    # Mixed number/non-number operands: =/!= decide directly, orderings are
    # type errors and reject the row (holds-of-ExpressionError semantics).
    equality = operator in ("=", "!=")
    mixed_result = operator == "!="

    def compiled(solution: Solution) -> bool:
        value = solution.get(name)
        if value is None:
            # Unbound variable: the interpreter raises and holds() rejects.
            return False
        left_value = _to_python(value)
        left_is_number = isinstance(left_value, (int, float)) and not isinstance(
            left_value, bool
        )
        if left_is_number != right_is_number:
            return mixed_result if equality else False
        try:
            return compare(left_value, right_value) is True
        except TypeError:
            return False

    return compiled


# -- helpers ----------------------------------------------------------------


def _to_python(value: Term | bool | int | float | str) -> bool | int | float | str:
    if isinstance(value, Literal):
        return value.to_python()
    if isinstance(value, IRI):
        return value.value
    if isinstance(value, BNode):
        return value.label
    return value


def _numeric(value: Term | bool | int | float | str) -> int | float:
    python_value = _to_python(value)
    if isinstance(python_value, bool):
        raise ExpressionError("boolean used in numeric context")
    if isinstance(python_value, (int, float)):
        return python_value
    raise ExpressionError(f"not a number: {python_value!r}")


def _string(value: Term | bool | int | float | str) -> str:
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, IRI):
        return value.value
    if isinstance(value, str):
        return value
    raise ExpressionError(f"not a string: {value!r}")


def _evaluate_unary(expression: UnaryOp, solution: Solution):
    if expression.operator == "!":
        # !E is an error only if E is an error; evaluate eagerly.
        return not effective_boolean_value(evaluate(expression.operand, solution))
    if expression.operator == "-":
        return -_numeric(evaluate(expression.operand, solution))
    raise ExpressionError(f"unknown unary operator {expression.operator!r}")


def _compare(operator: str, left, right) -> bool:
    left_value = _to_python(left)
    right_value = _to_python(right)
    left_is_number = isinstance(left_value, (int, float)) and not isinstance(left_value, bool)
    right_is_number = isinstance(right_value, (int, float)) and not isinstance(right_value, bool)
    if left_is_number != right_is_number:
        if operator == "=":
            return False
        if operator == "!=":
            return True
        raise ExpressionError("cannot order a number against a non-number")
    if operator == "=":
        return left_value == right_value
    if operator == "!=":
        return left_value != right_value
    try:
        if operator == "<":
            return left_value < right_value
        if operator == ">":
            return left_value > right_value
        if operator == "<=":
            return left_value <= right_value
        if operator == ">=":
            return left_value >= right_value
    except TypeError as exc:
        raise ExpressionError(str(exc)) from exc
    raise ExpressionError(f"unknown comparison {operator!r}")


def _evaluate_binary(expression: BinaryOp, solution: Solution):
    operator = expression.operator
    if operator == "&&":
        # SPARQL logical-and: false dominates errors.
        try:
            left = effective_boolean_value(evaluate(expression.left, solution))
        except ExpressionError:
            right = effective_boolean_value(evaluate(expression.right, solution))
            if right is False:
                return False
            raise
        if not left:
            return False
        return effective_boolean_value(evaluate(expression.right, solution))
    if operator == "||":
        # SPARQL logical-or: true dominates errors.
        try:
            left = effective_boolean_value(evaluate(expression.left, solution))
        except ExpressionError:
            right = effective_boolean_value(evaluate(expression.right, solution))
            if right is True:
                return True
            raise
        if left:
            return True
        return effective_boolean_value(evaluate(expression.right, solution))

    left = evaluate(expression.left, solution)
    right = evaluate(expression.right, solution)
    if operator in ("=", "!=", "<", ">", "<=", ">="):
        return _compare(operator, left, right)
    if operator in ("+", "-", "*", "/"):
        left_number = _numeric(left)
        right_number = _numeric(right)
        if operator == "+":
            return left_number + right_number
        if operator == "-":
            return left_number - right_number
        if operator == "*":
            return left_number * right_number
        if right_number == 0:
            raise ExpressionError("division by zero")
        return left_number / right_number
    raise ExpressionError(f"unknown binary operator {operator!r}")


def _evaluate_function(expression: FunctionCall, solution: Solution):
    name = expression.name

    if name == "BOUND":
        if len(expression.args) != 1 or not isinstance(expression.args[0], VariableExpr):
            raise ExpressionError("BOUND expects a single variable")
        return expression.args[0].variable.name in solution

    args = [evaluate(arg, solution) for arg in expression.args]

    def arity(expected: int) -> None:
        if len(args) != expected:
            raise ExpressionError(f"{name} expects {expected} argument(s), got {len(args)}")

    if name == "REGEX":
        if len(args) not in (2, 3):
            raise ExpressionError("REGEX expects 2 or 3 arguments")
        flags = 0
        if len(args) == 3 and "i" in _string(args[2]):
            flags |= re.IGNORECASE
        try:
            return re.search(_string(args[1]), _string(args[0]), flags) is not None
        except re.error as exc:
            raise ExpressionError(f"invalid regular expression: {exc}") from exc
    if name == "CONTAINS":
        arity(2)
        return _string(args[1]) in _string(args[0])
    if name == "STRSTARTS":
        arity(2)
        return _string(args[0]).startswith(_string(args[1]))
    if name == "STRENDS":
        arity(2)
        return _string(args[0]).endswith(_string(args[1]))
    if name == "LCASE":
        arity(1)
        return Literal(_string(args[0]).lower())
    if name == "UCASE":
        arity(1)
        return Literal(_string(args[0]).upper())
    if name == "STR":
        arity(1)
        return Literal(_string(args[0]))
    if name == "STRLEN":
        arity(1)
        return len(_string(args[0]))
    if name == "ABS":
        arity(1)
        return abs(_numeric(args[0]))
    if name == "LANG":
        arity(1)
        if isinstance(args[0], Literal):
            return Literal(args[0].language or "")
        raise ExpressionError("LANG expects a literal")
    if name == "DATATYPE":
        arity(1)
        if isinstance(args[0], Literal):
            return IRI(args[0].datatype or XSD_STRING)
        raise ExpressionError("DATATYPE expects a literal")
    if name in ("ISIRI", "ISURI"):
        arity(1)
        return isinstance(args[0], IRI)
    if name == "ISLITERAL":
        arity(1)
        return isinstance(args[0], Literal)
    if name == "ISBLANK":
        arity(1)
        return isinstance(args[0], BNode)
    if name == "ISNUMERIC":
        arity(1)
        return isinstance(args[0], Literal) and args[0].is_numeric
    raise ExpressionError(f"unsupported function {name}")
