"""SPARQL subset: parser, algebra, expression evaluation, local evaluation."""

from .algebra import (
    BinaryOp,
    COMPARISON_OPERATORS,
    Expression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    OrderCondition,
    SelectQuery,
    SUPPORTED_FUNCTIONS,
    TermExpr,
    TriplePattern,
    UnaryOp,
    VariableExpr,
    expression_variables,
    format_query,
)
from .bgp import evaluate_bgp, evaluate_group, evaluate_query, match_pattern
from .expressions import effective_boolean_value, evaluate, holds
from .lexer import Token, tokenize
from .parser import parse_query

__all__ = [
    "BinaryOp",
    "COMPARISON_OPERATORS",
    "Expression",
    "Filter",
    "FunctionCall",
    "GroupGraphPattern",
    "OrderCondition",
    "SUPPORTED_FUNCTIONS",
    "SelectQuery",
    "TermExpr",
    "Token",
    "TriplePattern",
    "UnaryOp",
    "VariableExpr",
    "effective_boolean_value",
    "evaluate",
    "evaluate_bgp",
    "evaluate_group",
    "evaluate_query",
    "expression_variables",
    "format_query",
    "holds",
    "match_pattern",
    "parse_query",
    "tokenize",
]
