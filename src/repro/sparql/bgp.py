"""Local SPARQL evaluation over an in-memory :class:`~repro.rdf.graph.Graph`.

This is the evaluator behind the native-RDF wrapper of the federation: it
answers basic graph patterns with filters, OPTIONAL and UNION, applying the
solution-modifier pipeline (DISTINCT / ORDER BY / LIMIT / OFFSET).

For the batch execution mode, :func:`evaluate_bgp_columns` provides a
columnar fast path for star-shaped BGPs (one shared subject variable,
ground predicates): it walks the same indexes in the same order as
:func:`evaluate_bgp` but materializes column vectors directly, skipping the
per-level solution-dict copies and Triple allocations of the generic
evaluator.  Results are identical row for row, in the same order.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator
from weakref import WeakKeyDictionary

from ..rdf.graph import Graph
from ..rdf.terms import IRI, PatternTerm, Term, Variable
from .algebra import (
    Filter,
    GroupGraphPattern,
    OrderCondition,
    SelectQuery,
    TriplePattern,
)
from .expressions import ExpressionError, compile_holds, evaluate, holds

Solution = dict[str, Term]


def _bind(term: PatternTerm, solution: Solution) -> PatternTerm:
    """Substitute a variable by its binding when present."""
    if isinstance(term, Variable) and term.name in solution:
        return solution[term.name]
    return term


def match_pattern(graph: Graph, pattern: TriplePattern, solution: Solution) -> Iterator[Solution]:
    """Extend *solution* with every match of *pattern* in *graph*."""
    subject = _bind(pattern.subject, solution)
    predicate = _bind(pattern.predicate, solution)
    obj = _bind(pattern.object, solution)
    for triple in graph.triples(subject, predicate, obj):
        extended = dict(solution)
        consistent = True
        for position, value in (
            (pattern.subject, triple.subject),
            (pattern.predicate, triple.predicate),
            (pattern.object, triple.object),
        ):
            if isinstance(position, Variable):
                bound = extended.get(position.name)
                if bound is None:
                    extended[position.name] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield extended


def _pattern_order(graph: Graph, patterns: list[TriplePattern]) -> list[TriplePattern]:
    """Greedy selectivity ordering: start from the most selective pattern,
    then repeatedly pick the pattern sharing variables with what is bound."""
    if len(patterns) <= 1:
        return list(patterns)
    remaining = list(patterns)
    remaining.sort(key=lambda p: graph.count(p.subject, p.predicate, p.object))
    ordered = [remaining.pop(0)]
    bound = ordered[0].variable_names()
    while remaining:
        connected = [p for p in remaining if p.variable_names() & bound]
        chosen = connected[0] if connected else remaining[0]
        remaining.remove(chosen)
        ordered.append(chosen)
        bound |= chosen.variable_names()
    return ordered


def evaluate_bgp(
    graph: Graph,
    patterns: list[TriplePattern],
    initial: Solution | None = None,
) -> Iterator[Solution]:
    """Evaluate a basic graph pattern with greedy join ordering."""
    def extend(solutions: Iterable[Solution], pattern: TriplePattern) -> Iterator[Solution]:
        for solution in solutions:
            yield from match_pattern(graph, pattern, solution)

    solutions: Iterable[Solution] = [dict(initial) if initial else {}]
    for pattern in _pattern_order(graph, patterns):
        solutions = extend(solutions, pattern)
    return iter(solutions)


#: Columnar star-match memo: graph -> {(version, patterns key): (names, columns)}.
#: Keyed weakly so dropped graphs release their materialized matches; capped
#: per graph so mutation-heavy runs (fuzz) cannot grow it unboundedly.
_STAR_COLUMNS_MEMO: "WeakKeyDictionary[Graph, dict]" = WeakKeyDictionary()
_STAR_MEMO_CAP = 32


def _star_shape(patterns: list[TriplePattern]) -> str | None:
    """The shared subject variable of a star BGP, or None when not a star.

    A star (for the columnar fast path) means: every pattern has the same
    subject *variable*, a ground IRI predicate, and an object that is either
    ground or a variable distinct from the subject and from every other
    object variable.  Anything else falls back to the generic evaluator.
    """
    if not patterns:
        return None
    subject = patterns[0].subject
    if not isinstance(subject, Variable):
        return None
    names = {subject.name}
    for pattern in patterns:
        if not isinstance(pattern.subject, Variable) or pattern.subject.name != subject.name:
            return None
        if not isinstance(pattern.predicate, IRI):
            return None
        obj = pattern.object
        if isinstance(obj, Variable):
            if obj.name in names:
                return None
            names.add(obj.name)
    return subject.name


def evaluate_bgp_columns(
    graph: Graph, patterns: list[TriplePattern]
) -> tuple[tuple[str, ...], list[list[Term]]] | None:
    """Columnar star-BGP evaluation; None when the shape is unsupported.

    Returns ``(names, columns)`` where row *i* of the columns is exactly the
    *i*-th solution :func:`evaluate_bgp` would yield (same variable binding
    order, same row order — the index walks are identical).  Matches are
    memoized per (graph, data version), so repeated evaluations (dependent
    join blocks, benchmark reruns) reuse the materialized columns.
    """
    subject_name = _star_shape(patterns)
    if subject_name is None:
        return None
    per_graph = _STAR_COLUMNS_MEMO.get(graph)
    if per_graph is None:
        per_graph = _STAR_COLUMNS_MEMO[graph] = {}
    key = (graph.version, tuple(pattern.n3() for pattern in patterns))
    cached = per_graph.get(key)
    if cached is not None:
        return cached

    ordered = _pattern_order(graph, patterns)
    first = ordered[0]
    rest = ordered[1:]
    # Binding order replicates match_pattern: the first pattern binds the
    # subject then its object variable; each later pattern appends its
    # object variable when unbound.
    names: list[str] = [subject_name]
    if isinstance(first.object, Variable):
        names.append(first.object.name)
    for pattern in rest:
        if isinstance(pattern.object, Variable):
            names.append(pattern.object.name)
    columns: list[list[Term]] = [[] for __ in names]

    # First pattern drives the subject iteration in graph.triples order.
    heads: Iterable[tuple[Term, ...]]
    if isinstance(first.object, Variable):
        heads = (
            (triple.subject, triple.object)
            for triple in graph.triples(first.subject, first.predicate, first.object)
        )
    else:
        heads = (
            (triple.subject,)
            for triple in graph.triples(first.subject, first.predicate, first.object)
        )
    spo = graph._spo
    for head in heads:
        subject = head[0]
        by_predicate = spo.get(subject)
        option_lists: list[tuple[Term, ...]] = []
        alive = by_predicate is not None
        if alive:
            for pattern in rest:
                objects = by_predicate.get(pattern.predicate)
                if not objects:
                    alive = False
                    break
                obj = pattern.object
                if isinstance(obj, Variable):
                    option_lists.append(tuple(objects))
                elif obj not in objects:
                    alive = False
                    break
        if not alive:
            continue
        if option_lists:
            for tail in product(*option_lists):
                for column, value in zip(columns, head + tail):
                    column.append(value)
        else:
            for column, value in zip(columns, head):
                column.append(value)

    if len(per_graph) >= _STAR_MEMO_CAP:
        per_graph.clear()
    result = (tuple(names), columns)
    per_graph[key] = result
    return result


def _apply_filters(solutions: Iterable[Solution], filters: list[Filter]) -> Iterator[Solution]:
    tests = [compile_holds(filter_.expression) for filter_ in filters]
    for solution in solutions:
        if all(test(solution) for test in tests):
            yield solution


def evaluate_group(
    graph: Graph,
    group: GroupGraphPattern,
    initial: Solution | None = None,
) -> Iterator[Solution]:
    """Evaluate a group graph pattern (BGP + UNION + OPTIONAL + FILTER)."""
    solutions: Iterable[Solution] = evaluate_bgp(graph, group.patterns, initial)
    for union in group.unions:
        solutions = _join_union(graph, solutions, union)
    for optional in group.optionals:
        solutions = _left_join(graph, solutions, optional)
    return _apply_filters(solutions, group.filters)


def _join_union(
    graph: Graph,
    solutions: Iterable[Solution],
    branches: list[GroupGraphPattern],
) -> Iterator[Solution]:
    for solution in solutions:
        for branch in branches:
            yield from evaluate_group(graph, branch, solution)


def _left_join(
    graph: Graph,
    solutions: Iterable[Solution],
    optional: GroupGraphPattern,
) -> Iterator[Solution]:
    for solution in solutions:
        matched = False
        for extended in evaluate_group(graph, optional, solution):
            matched = True
            yield extended
        if not matched:
            yield solution


def _order_key(condition: OrderCondition, solution: Solution):
    try:
        value = evaluate(condition.expression, solution)
    except ExpressionError:
        return (0, "")
    if hasattr(value, "to_python"):
        value = value.to_python()
    elif hasattr(value, "value"):
        value = value.value
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))


def _apply_modifiers(solutions: Iterator[Solution], query: SelectQuery) -> Iterator[Solution]:
    projected = [variable.name for variable in query.projected_variables()]

    def project(solution: Solution) -> Solution:
        return {name: solution[name] for name in projected if name in solution}

    stream: Iterable[Solution] = (project(solution) for solution in solutions)
    if query.order_by:
        materialized = list(stream)
        for condition in reversed(query.order_by):
            materialized.sort(
                key=lambda solution: _order_key(condition, solution),
                reverse=not condition.ascending,
            )
        stream = materialized
    if query.distinct:
        stream = _distinct(stream)
    if query.offset:
        stream = _drop(stream, query.offset)
    if query.limit is not None:
        stream = _take(stream, query.limit)
    return iter(stream)


def _distinct(solutions: Iterable[Solution]) -> Iterator[Solution]:
    seen: set[tuple] = set()
    for solution in solutions:
        key = tuple(sorted(solution.items()))
        if key not in seen:
            seen.add(key)
            yield solution


def _drop(solutions: Iterable[Solution], count: int) -> Iterator[Solution]:
    iterator = iter(solutions)
    for __ in range(count):
        if next(iterator, None) is None:
            return iter(())
    return iterator


def _take(solutions: Iterable[Solution], count: int) -> Iterator[Solution]:
    iterator = iter(solutions)
    for __ in range(count):
        item = next(iterator, None)
        if item is None:
            return
        yield item


def evaluate_query(graph: Graph, query: SelectQuery) -> Iterator[Solution]:
    """Evaluate a full SELECT query against one local graph."""
    return _apply_modifiers(evaluate_group(graph, query.where), query)
