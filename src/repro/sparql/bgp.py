"""Local SPARQL evaluation over an in-memory :class:`~repro.rdf.graph.Graph`.

This is the evaluator behind the native-RDF wrapper of the federation: it
answers basic graph patterns with filters, OPTIONAL and UNION, applying the
solution-modifier pipeline (DISTINCT / ORDER BY / LIMIT / OFFSET).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..rdf.graph import Graph
from ..rdf.terms import PatternTerm, Term, Variable
from .algebra import (
    Filter,
    GroupGraphPattern,
    OrderCondition,
    SelectQuery,
    TriplePattern,
)
from .expressions import ExpressionError, evaluate, holds

Solution = dict[str, Term]


def _bind(term: PatternTerm, solution: Solution) -> PatternTerm:
    """Substitute a variable by its binding when present."""
    if isinstance(term, Variable) and term.name in solution:
        return solution[term.name]
    return term


def match_pattern(graph: Graph, pattern: TriplePattern, solution: Solution) -> Iterator[Solution]:
    """Extend *solution* with every match of *pattern* in *graph*."""
    subject = _bind(pattern.subject, solution)
    predicate = _bind(pattern.predicate, solution)
    obj = _bind(pattern.object, solution)
    for triple in graph.triples(subject, predicate, obj):
        extended = dict(solution)
        consistent = True
        for position, value in (
            (pattern.subject, triple.subject),
            (pattern.predicate, triple.predicate),
            (pattern.object, triple.object),
        ):
            if isinstance(position, Variable):
                bound = extended.get(position.name)
                if bound is None:
                    extended[position.name] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield extended


def _pattern_order(graph: Graph, patterns: list[TriplePattern]) -> list[TriplePattern]:
    """Greedy selectivity ordering: start from the most selective pattern,
    then repeatedly pick the pattern sharing variables with what is bound."""
    if len(patterns) <= 1:
        return list(patterns)
    remaining = list(patterns)
    remaining.sort(key=lambda p: graph.count(p.subject, p.predicate, p.object))
    ordered = [remaining.pop(0)]
    bound = ordered[0].variable_names()
    while remaining:
        connected = [p for p in remaining if p.variable_names() & bound]
        chosen = connected[0] if connected else remaining[0]
        remaining.remove(chosen)
        ordered.append(chosen)
        bound |= chosen.variable_names()
    return ordered


def evaluate_bgp(
    graph: Graph,
    patterns: list[TriplePattern],
    initial: Solution | None = None,
) -> Iterator[Solution]:
    """Evaluate a basic graph pattern with greedy join ordering."""
    def extend(solutions: Iterable[Solution], pattern: TriplePattern) -> Iterator[Solution]:
        for solution in solutions:
            yield from match_pattern(graph, pattern, solution)

    solutions: Iterable[Solution] = [dict(initial) if initial else {}]
    for pattern in _pattern_order(graph, patterns):
        solutions = extend(solutions, pattern)
    return iter(solutions)


def _apply_filters(solutions: Iterable[Solution], filters: list[Filter]) -> Iterator[Solution]:
    for solution in solutions:
        if all(holds(filter_.expression, solution) for filter_ in filters):
            yield solution


def evaluate_group(
    graph: Graph,
    group: GroupGraphPattern,
    initial: Solution | None = None,
) -> Iterator[Solution]:
    """Evaluate a group graph pattern (BGP + UNION + OPTIONAL + FILTER)."""
    solutions: Iterable[Solution] = evaluate_bgp(graph, group.patterns, initial)
    for union in group.unions:
        solutions = _join_union(graph, solutions, union)
    for optional in group.optionals:
        solutions = _left_join(graph, solutions, optional)
    return _apply_filters(solutions, group.filters)


def _join_union(
    graph: Graph,
    solutions: Iterable[Solution],
    branches: list[GroupGraphPattern],
) -> Iterator[Solution]:
    for solution in solutions:
        for branch in branches:
            yield from evaluate_group(graph, branch, solution)


def _left_join(
    graph: Graph,
    solutions: Iterable[Solution],
    optional: GroupGraphPattern,
) -> Iterator[Solution]:
    for solution in solutions:
        matched = False
        for extended in evaluate_group(graph, optional, solution):
            matched = True
            yield extended
        if not matched:
            yield solution


def _order_key(condition: OrderCondition, solution: Solution):
    try:
        value = evaluate(condition.expression, solution)
    except ExpressionError:
        return (0, "")
    if hasattr(value, "to_python"):
        value = value.to_python()
    elif hasattr(value, "value"):
        value = value.value
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))


def _apply_modifiers(solutions: Iterator[Solution], query: SelectQuery) -> Iterator[Solution]:
    projected = [variable.name for variable in query.projected_variables()]

    def project(solution: Solution) -> Solution:
        return {name: solution[name] for name in projected if name in solution}

    stream: Iterable[Solution] = (project(solution) for solution in solutions)
    if query.order_by:
        materialized = list(stream)
        for condition in reversed(query.order_by):
            materialized.sort(
                key=lambda solution: _order_key(condition, solution),
                reverse=not condition.ascending,
            )
        stream = materialized
    if query.distinct:
        stream = _distinct(stream)
    if query.offset:
        stream = _drop(stream, query.offset)
    if query.limit is not None:
        stream = _take(stream, query.limit)
    return iter(stream)


def _distinct(solutions: Iterable[Solution]) -> Iterator[Solution]:
    seen: set[tuple] = set()
    for solution in solutions:
        key = tuple(sorted(solution.items()))
        if key not in seen:
            seen.add(key)
            yield solution


def _drop(solutions: Iterable[Solution], count: int) -> Iterator[Solution]:
    iterator = iter(solutions)
    for __ in range(count):
        if next(iterator, None) is None:
            return iter(())
    return iterator


def _take(solutions: Iterable[Solution], count: int) -> Iterator[Solution]:
    iterator = iter(solutions)
    for __ in range(count):
        item = next(iterator, None)
        if item is None:
            return
        yield item


def evaluate_query(graph: Graph, query: SelectQuery) -> Iterator[Solution]:
    """Evaluate a full SELECT query against one local graph."""
    return _apply_modifiers(evaluate_group(graph, query.where), query)
