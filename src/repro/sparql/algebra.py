"""SPARQL algebra: triple patterns, graph patterns, expressions and queries.

The types here are the common currency of the whole engine: the parser
produces them, the decomposer groups them into star-shaped sub-queries, the
planner rearranges them, and the wrappers translate them to native queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

from ..rdf.terms import IRI, Literal, PatternTerm, Term, Variable


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern: any position may be a variable."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> set[Variable]:
        return {
            term
            for term in (self.subject, self.predicate, self.object)
            if isinstance(term, Variable)
        }

    def variable_names(self) -> set[str]:
        return {variable.name for variable in self.variables()}

    def is_ground(self) -> bool:
        return not self.variables()

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))


# --------------------------------------------------------------------------
# Filter expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class VariableExpr:
    """Reference to a variable inside an expression."""

    variable: Variable

    def n3(self) -> str:
        return self.variable.n3()


@dataclass(frozen=True, slots=True)
class TermExpr:
    """A constant RDF term inside an expression."""

    term: Term

    def n3(self) -> str:
        return self.term.n3()


@dataclass(frozen=True, slots=True)
class UnaryOp:
    """``!expr`` or ``-expr``."""

    operator: str
    operand: "Expression"

    def n3(self) -> str:
        return f"{self.operator}({self.operand.n3()})"


@dataclass(frozen=True, slots=True)
class BinaryOp:
    """Logical, comparison or arithmetic binary operator."""

    operator: str
    left: "Expression"
    right: "Expression"

    def n3(self) -> str:
        return f"({self.left.n3()} {self.operator} {self.right.n3()})"


@dataclass(frozen=True, slots=True)
class FunctionCall:
    """Built-in call such as ``REGEX``, ``CONTAINS``, ``BOUND`` or ``STR``."""

    name: str
    args: tuple["Expression", ...]

    def n3(self) -> str:
        rendered = ", ".join(arg.n3() for arg in self.args)
        return f"{self.name}({rendered})"


Expression = Union[VariableExpr, TermExpr, UnaryOp, BinaryOp, FunctionCall]

#: Comparison operators understood by the evaluator and translators.
COMPARISON_OPERATORS = frozenset({"=", "!=", "<", ">", "<=", ">="})
#: Logical connectives.
LOGICAL_OPERATORS = frozenset({"&&", "||"})
#: Arithmetic operators.
ARITHMETIC_OPERATORS = frozenset({"+", "-", "*", "/"})
#: Built-in functions the engine evaluates.
SUPPORTED_FUNCTIONS = frozenset(
    {
        "REGEX",
        "CONTAINS",
        "STRSTARTS",
        "STRENDS",
        "LCASE",
        "UCASE",
        "STR",
        "STRLEN",
        "LANG",
        "DATATYPE",
        "BOUND",
        "ISIRI",
        "ISURI",
        "ISLITERAL",
        "ISBLANK",
        "ISNUMERIC",
        "ABS",
    }
)


def expression_variables(expression: Expression) -> set[Variable]:
    """Collect every variable mentioned anywhere inside *expression*."""
    if isinstance(expression, VariableExpr):
        return {expression.variable}
    if isinstance(expression, TermExpr):
        return set()
    if isinstance(expression, UnaryOp):
        return expression_variables(expression.operand)
    if isinstance(expression, BinaryOp):
        return expression_variables(expression.left) | expression_variables(expression.right)
    if isinstance(expression, FunctionCall):
        result: set[Variable] = set()
        for arg in expression.args:
            result |= expression_variables(arg)
        return result
    raise TypeError(f"unknown expression node: {expression!r}")


@dataclass(frozen=True, slots=True)
class Filter:
    """A FILTER constraint over a graph pattern."""

    expression: Expression

    def variables(self) -> set[Variable]:
        return expression_variables(self.expression)

    def n3(self) -> str:
        return f"FILTER({self.expression.n3()})"


# --------------------------------------------------------------------------
# Graph patterns and queries
# --------------------------------------------------------------------------


@dataclass
class GroupGraphPattern:
    """A `{ ... }` group: a BGP plus filters, OPTIONALs and UNIONs.

    The federated planner handles the BGP + filters fragment; OPTIONAL and
    UNION are honoured by the local evaluator (:mod:`repro.sparql.bgp`).
    """

    patterns: list[TriplePattern] = field(default_factory=list)
    filters: list[Filter] = field(default_factory=list)
    optionals: list["GroupGraphPattern"] = field(default_factory=list)
    unions: list[list["GroupGraphPattern"]] = field(default_factory=list)

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        for filter_ in self.filters:
            result |= filter_.variables()
        for optional in self.optionals:
            result |= optional.variables()
        for union in self.unions:
            for branch in union:
                result |= branch.variables()
        return result

    def is_basic(self) -> bool:
        """True when the group is only a BGP with filters (no OPTIONAL/UNION)."""
        return not self.optionals and not self.unions

    def all_triple_patterns(self) -> Iterator[TriplePattern]:
        yield from self.patterns
        for optional in self.optionals:
            yield from optional.all_triple_patterns()
        for union in self.unions:
            for branch in union:
                yield from branch.all_triple_patterns()


@dataclass(frozen=True, slots=True)
class OrderCondition:
    """One ORDER BY key."""

    expression: Expression
    ascending: bool = True


@dataclass
class SelectQuery:
    """A parsed SELECT query.

    Attributes:
        variables: projected variables; empty means ``SELECT *``.
        where: the WHERE group.
        distinct: whether DISTINCT was requested.
        order_by: ORDER BY conditions, in priority order.
        limit: LIMIT value or None.
        offset: OFFSET value or None.
        prefixes: prefix bindings declared in the query text.
    """

    variables: list[Variable]
    where: GroupGraphPattern
    distinct: bool = False
    order_by: list[OrderCondition] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    prefixes: dict[str, str] = field(default_factory=dict)

    def projected_variables(self) -> list[Variable]:
        """The variables the query answers carry (`*` expands to all)."""
        if self.variables:
            return list(self.variables)
        return sorted(self.where.variables(), key=lambda v: v.name)

    def is_select_star(self) -> bool:
        return not self.variables


def format_term(term: PatternTerm) -> str:
    """Render a pattern term in SPARQL surface syntax."""
    if isinstance(term, (IRI, Variable, Literal)):
        return term.n3()
    return term.n3()


def format_query(query: SelectQuery) -> str:
    """Serialize a query back to SPARQL text (canonical layout).

    Only the fragment the engine supports is rendered; used for logging,
    explain output and round-trip testing.
    """
    lines: list[str] = []
    for prefix, base in query.prefixes.items():
        lines.append(f"PREFIX {prefix}: <{base}>")
    projection = "*" if query.is_select_star() else " ".join(v.n3() for v in query.variables)
    distinct = "DISTINCT " if query.distinct else ""
    lines.append(f"SELECT {distinct}{projection} WHERE {{")
    lines.extend(_format_group(query.where, indent="  "))
    lines.append("}")
    if query.order_by:
        keys = []
        for condition in query.order_by:
            rendered = condition.expression.n3()
            keys.append(rendered if condition.ascending else f"DESC({rendered})")
        lines.append("ORDER BY " + " ".join(keys))
    if query.limit is not None:
        lines.append(f"LIMIT {query.limit}")
    if query.offset is not None:
        lines.append(f"OFFSET {query.offset}")
    return "\n".join(lines)


def _format_group(group: GroupGraphPattern, indent: str) -> list[str]:
    lines = [indent + pattern.n3() for pattern in group.patterns]
    for union in group.unions:
        rendered_branches = []
        for branch in union:
            body = "\n".join(_format_group(branch, indent + "  "))
            rendered_branches.append(f"{indent}{{\n{body}\n{indent}}}")
        lines.append(f"\n{indent}UNION\n".join(rendered_branches))
    for optional in group.optionals:
        body = "\n".join(_format_group(optional, indent + "  "))
        lines.append(f"{indent}OPTIONAL {{\n{body}\n{indent}}}")
    lines.extend(indent + filter_.n3() for filter_ in group.filters)
    return lines
