"""RDF -> 3NF relational normalization.

The paper's experiment pipeline: *"The RDF version of each data set is
transformed into relational tables.  These tables are then normalized to
3NF.  Indexes are created for the primary keys."*  This module reproduces
that pipeline:

* every RDF class becomes a **base table** whose primary key is the subject
  key (extracted from the subject IRIs' shared template) — the paper's
  "subjects of a SPARQL query are modeled as the primary keys" best case
  (Jozashoori & Vidal, MapSDI);
* functional datatype properties become typed columns;
* functional object properties become foreign-key columns;
* multi-valued properties move to satellite tables (removing the
  multi-valued dependency — the step that takes the schema to 3NF);
* the primary-key indexes are created automatically; *additional* indexes
  are the experimenter's choice (see the physical-design catalog), matching
  the paper's setup.
"""

from __future__ import annotations

import os.path
from collections import defaultdict
from dataclasses import dataclass, field

from ..exceptions import SchemaError
from ..rdf.graph import Graph
from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import IRI, Literal, Term, XSD_DOUBLE, XSD_INTEGER
from ..relational.database import Database
from ..relational.schema import Column, ForeignKey
from ..relational.types import SQLType
from .rml import (
    ClassMapping,
    PredicateMapping,
    SourceMapping,
    datatype_for_sql_type,
    extract_value,
    sql_type_for_datatype,
)


@dataclass
class NormalizationReport:
    """What the normalizer produced for one source."""

    source_id: str
    base_tables: list[str] = field(default_factory=list)
    satellite_tables: list[str] = field(default_factory=list)
    column_counts: dict[str, int] = field(default_factory=dict)
    row_counts: dict[str, int] = field(default_factory=dict)


def _local_name(iri: IRI) -> str:
    name = iri.local_name()
    cleaned = "".join(char if char.isalnum() else "_" for char in name).strip("_")
    return cleaned.lower() or "entity"


def _subject_template(instances: list[IRI]) -> str:
    """Derive the shared IRI template of a class's instances."""
    values = [iri.value for iri in instances]
    prefix = os.path.commonprefix(values)
    # Never split inside the key: back off to the last separator.
    while prefix and prefix[-1] not in "/#:=":
        prefix = prefix[:-1]
    if not prefix:
        raise SchemaError("cannot derive a subject template: no common IRI prefix")
    return prefix + "{}"


def _infer_sql_type(values: list[Term]) -> SQLType:
    saw_real = False
    for value in values:
        if not isinstance(value, Literal):
            return SQLType.TEXT
        if value.datatype == XSD_INTEGER:
            continue
        if value.datatype == XSD_DOUBLE or value.datatype.endswith("#decimal"):
            saw_real = True
            continue
        try:
            int(value.lexical)
        except ValueError:
            try:
                float(value.lexical)
            except ValueError:
                return SQLType.TEXT
            saw_real = True
    return SQLType.REAL if saw_real else SQLType.INTEGER


def _key_sql_type(keys: list[str]) -> SQLType:
    for key in keys:
        try:
            int(key)
        except ValueError:
            return SQLType.TEXT
    return SQLType.INTEGER


class Normalizer:
    """Builds a 3NF database + mapping from one RDF graph."""

    def __init__(self, source_id: str):
        self.source_id = source_id

    def normalize(self, graph: Graph, database: Database | None = None):
        """Normalize *graph* into (database, source_mapping, report)."""
        database = database or Database(self.source_id)
        mapping = SourceMapping(source_id=self.source_id)
        report = NormalizationReport(source_id=self.source_id)

        classes = self._classes_of(graph)
        templates: dict[IRI, str] = {}
        key_types: dict[IRI, SQLType] = {}
        for class_iri, instances in classes.items():
            templates[class_iri] = _subject_template(instances)
            keys = [extract_value(templates[class_iri], iri) or "" for iri in instances]
            key_types[class_iri] = _key_sql_type(keys)

        instance_class: dict[IRI, IRI] = {}
        for class_iri, instances in classes.items():
            for instance in instances:
                instance_class[instance] = class_iri

        # Two passes: declare all schemas first so FK targets exist, then load.
        plans = {
            class_iri: self._plan_class(
                graph, class_iri, classes[class_iri], templates, key_types, instance_class
            )
            for class_iri in sorted(classes, key=lambda c: c.value)
        }
        for class_iri, plan in plans.items():
            self._create_schema(database, plan, report)
            mapping.add(plan.class_mapping)
        for class_iri, plan in plans.items():
            self._load_rows(graph, database, plan, report)
        database.analyze()
        return database, mapping, report

    # -- helpers --------------------------------------------------------------

    def _classes_of(self, graph: Graph) -> dict[IRI, list[IRI]]:
        classes: dict[IRI, list[IRI]] = defaultdict(list)
        for triple in graph.triples(None, RDF_TYPE, None):
            if isinstance(triple.subject, IRI) and isinstance(triple.object, IRI):
                classes[triple.object].append(triple.subject)
        for class_iri in classes:
            classes[class_iri] = sorted(set(classes[class_iri]), key=lambda iri: iri.value)
        if not classes:
            raise SchemaError(
                f"source {self.source_id!r}: no typed subjects found; "
                "normalization needs rdf:type statements"
            )
        return dict(classes)

    def _plan_class(self, graph, class_iri, instances, templates, key_types, instance_class):
        table = _local_name(class_iri)
        template = templates[class_iri]
        key_type = key_types[class_iri]

        # Predicate inventory: per predicate, max values per subject + samples.
        values_per_subject: dict[IRI, dict[IRI, list[Term]]] = defaultdict(lambda: defaultdict(list))
        for instance in instances:
            for triple in graph.triples(instance, None, None):
                if triple.predicate == RDF_TYPE:
                    continue
                values_per_subject[triple.predicate][instance].append(triple.object)

        column_specs: list[_ColumnSpec] = []
        satellite_specs: list[_SatelliteSpec] = []
        used_names = {"id"}
        for predicate in sorted(values_per_subject, key=lambda p: p.value):
            per_subject = values_per_subject[predicate]
            samples = [value for values in per_subject.values() for value in values]
            functional = all(len(values) <= 1 for values in per_subject.values())
            column_name = _local_name(predicate)
            suffix = 2
            while column_name in used_names:
                column_name = f"{_local_name(predicate)}_{suffix}"
                suffix += 1
            used_names.add(column_name)
            is_object_property = all(isinstance(value, IRI) for value in samples)
            if is_object_property:
                target_classes = {
                    instance_class[value] for value in samples if value in instance_class
                }
                if len(target_classes) == 1:
                    target = next(iter(target_classes))
                    object_template = templates[target]
                    value_type = key_types[target]
                    fk_target = (_local_name(target), "id")
                else:
                    object_template = "{}"  # store the full IRI
                    value_type = SQLType.TEXT
                    fk_target = None
            else:
                object_template = None
                value_type = _infer_sql_type(samples)
                fk_target = None
            datatype = datatype_for_sql_type(value_type)
            if functional:
                column_specs.append(
                    _ColumnSpec(predicate, column_name, value_type, object_template, datatype, fk_target)
                )
            else:
                satellite_specs.append(
                    _SatelliteSpec(
                        predicate,
                        f"{table}_{column_name}",
                        value_type,
                        object_template,
                        datatype,
                        fk_target,
                    )
                )

        predicates: dict[IRI, PredicateMapping] = {}
        for spec in column_specs:
            predicates[spec.predicate] = PredicateMapping(
                predicate=spec.predicate,
                kind="link" if spec.object_template else "column",
                column=spec.column,
                object_template=spec.object_template,
                datatype=spec.datatype,
            )
        for spec in satellite_specs:
            predicates[spec.predicate] = PredicateMapping(
                predicate=spec.predicate,
                kind="multivalued",
                table=spec.table,
                key_column=f"{table}_id",
                value_column="value",
                object_template=spec.object_template,
                datatype=spec.datatype,
            )

        class_mapping = ClassMapping(
            class_iri=class_iri,
            source_id=self.source_id,
            table=table,
            subject_column="id",
            subject_template=template,
            predicates=predicates,
        )
        return _ClassPlan(
            class_iri=class_iri,
            instances=instances,
            table=table,
            key_type=key_type,
            column_specs=column_specs,
            satellite_specs=satellite_specs,
            class_mapping=class_mapping,
        )

    def _create_schema(self, database: Database, plan: "_ClassPlan", report) -> None:
        columns = [Column("id", plan.key_type, nullable=False)]
        foreign_keys = []
        for spec in plan.column_specs:
            columns.append(Column(spec.column, spec.sql_type, nullable=True))
            if spec.fk_target is not None:
                foreign_keys.append(ForeignKey(spec.column, *spec.fk_target))
        database.create_table(plan.table, columns, primary_key=("id",), foreign_keys=foreign_keys)
        report.base_tables.append(plan.table)
        report.column_counts[plan.table] = len(columns)
        for spec in plan.satellite_specs:
            satellite_key = f"{plan.table}_id"
            satellite_columns = [
                Column(satellite_key, plan.key_type, nullable=False),
                Column("value", spec.sql_type, nullable=False),
            ]
            satellite_fks = [ForeignKey(satellite_key, plan.table, "id")]
            if spec.fk_target is not None:
                satellite_fks.append(ForeignKey("value", *spec.fk_target))
            database.create_table(
                spec.table,
                satellite_columns,
                primary_key=(satellite_key, "value"),
                foreign_keys=satellite_fks,
            )
            # Satellites are joined through their key column: index it.
            database.create_index(spec.table, [satellite_key])
            report.satellite_tables.append(spec.table)
            report.column_counts[spec.table] = 2

    def _load_rows(self, graph: Graph, database: Database, plan: "_ClassPlan", report) -> None:
        mapping = plan.class_mapping
        base_rows = 0
        satellite_rows: dict[str, int] = {spec.table: 0 for spec in plan.satellite_specs}
        for instance in plan.instances:
            key = mapping.subject_key(instance)
            row: dict[str, object] = {"id": key}
            for spec in plan.column_specs:
                predicate_mapping = mapping.predicates[spec.predicate]
                value_term = graph.value(instance, spec.predicate)
                row[spec.column] = (
                    predicate_mapping.value_for_term(value_term)
                    if value_term is not None
                    else None
                )
            database.insert(plan.table, row)
            base_rows += 1
            for spec in plan.satellite_specs:
                predicate_mapping = mapping.predicates[spec.predicate]
                seen: set[object] = set()
                for value_term in graph.objects(instance, spec.predicate):
                    value = predicate_mapping.value_for_term(value_term)
                    if value in seen:
                        continue
                    seen.add(value)
                    database.insert(
                        spec.table, {f"{plan.table}_id": key, "value": value}
                    )
                    satellite_rows[spec.table] += 1
        report.row_counts[plan.table] = base_rows
        report.row_counts.update(satellite_rows)


@dataclass
class _ColumnSpec:
    predicate: IRI
    column: str
    sql_type: SQLType
    object_template: str | None
    datatype: str
    fk_target: tuple[str, str] | None


@dataclass
class _SatelliteSpec:
    predicate: IRI
    table: str
    sql_type: SQLType
    object_template: str | None
    datatype: str
    fk_target: tuple[str, str] | None


@dataclass
class _ClassPlan:
    class_iri: IRI
    instances: list[IRI]
    table: str
    key_type: SQLType
    column_specs: list[_ColumnSpec]
    satellite_specs: list[_SatelliteSpec]
    class_mapping: ClassMapping


def normalize_graph(source_id: str, graph: Graph):
    """Convenience wrapper: normalize *graph* into a fresh database.

    Returns:
        (database, source_mapping, report)
    """
    return Normalizer(source_id).normalize(graph)
