"""Translation of star-shaped sub-queries (SSQs) into SQL.

This is Ontario's "query translation" component.  A single SSQ over one
class becomes a single-table SELECT (plus satellite joins for multi-valued
predicates).  The paper's Heuristic 1 merges *several* SSQs over the same
relational endpoint into one SQL statement — :func:`translate_stars` accepts
any number of stars and emits the merged join query.

The paper explicitly notes that Ontario's own SPARQL-to-SQL translation was
not optimized for combined stars, which *increased* execution time, and that
hand-optimized SQL halved Q2's runtime; this translator produces the
optimized form directly (one flat join over base tables).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..exceptions import TranslationError
from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import IRI, Literal, Term, Variable
from ..sparql.algebra import (
    BinaryOp,
    Expression,
    Filter,
    FunctionCall,
    TermExpr,
    UnaryOp,
    VariableExpr,
)
from ..relational.sql.ast import (
    AndExpr,
    ColumnRef,
    Comparison,
    Constant,
    InPredicate,
    IsNullPredicate,
    JoinClause,
    LikePredicate,
    NotExpr,
    OrExpr,
    SelectItem,
    SelectStatement,
    TableRef,
    WhereExpr,
    conjunction,
)
from ..relational.types import SQLValue
from .rml import ClassMapping, PredicateMapping, render_iri

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> mapping import cycle
    from ..core.decomposer import StarSubquery

_SQL_COMPARISONS = {"=": "=", "!=": "<>", "<": "<", ">": ">", "<=": "<=", ">=": ">="}


@dataclass(frozen=True)
class VariableBinding:
    """How one SPARQL variable surfaces in the translated SQL."""

    variable: str
    column: ColumnRef
    template: str | None  # IRI template when the variable denotes an entity
    datatype: str  # XSD datatype for literal reconstruction

    def term_for(self, value: SQLValue) -> Term | None:
        if value is None:
            return None
        if self.template is not None:
            return render_iri(self.template, value)
        if isinstance(value, bool):
            return Literal("true" if value else "false", self.datatype)
        return Literal(str(value), self.datatype)

    def value_for(self, term: Term) -> SQLValue:
        """Invert :meth:`term_for`: the stored SQL value of an RDF term.

        Used by the dependent join to push bound values down as an IN list.

        Raises:
            TranslationError: when the term does not fit this binding's
                value space (wrong IRI template, non-literal, ...).
        """
        from ..exceptions import TranslationError
        from ..rdf.terms import IRI as _IRI
        from .rml import extract_value, _coerce_key

        if self.template is not None:
            if not isinstance(term, _IRI):
                raise TranslationError(
                    f"variable ?{self.variable} expects an IRI, got {term!r}"
                )
            value = extract_value(self.template, term)
            if value is None:
                raise TranslationError(
                    f"IRI {term.value} does not match template {self.template!r}"
                )
            return _coerce_key(value)
        if not isinstance(term, Literal):
            raise TranslationError(
                f"variable ?{self.variable} expects a literal, got {term!r}"
            )
        python_value = term.to_python()
        if isinstance(python_value, (int, float, bool, str)):
            return python_value
        raise TranslationError(f"cannot convert {term!r} to a SQL value")


#: Per-binding ``SQL value -> Term | None`` decode memos.  Bindings are
#: frozen value objects and terms are immutable, so the memo is exact; the
#: value space is the (bounded) set of distinct column values per source.
_TERM_MEMOS: dict[VariableBinding, dict[SQLValue, Term | None]] = {}


def _term_memo(binding: VariableBinding) -> dict[SQLValue, Term | None]:
    memo = _TERM_MEMOS.get(binding)
    if memo is None:
        memo = _TERM_MEMOS[binding] = {}
    return memo


@dataclass
class TranslationResult:
    """The SQL statement plus the recipe to rebuild solution mappings."""

    statement: SelectStatement
    outputs: list[VariableBinding]
    pushed_filters: list[Filter] = field(default_factory=list)

    @property
    def sql(self) -> str:
        return self.statement.sql()

    def restricted(self, variable: str, terms: list[Term]) -> "TranslationResult":
        """A copy of this translation with ``variable IN (terms)`` added.

        This is the dependent (bound) join's push-down: the already-known
        bindings of the join variable restrict the sub-query shipped to the
        source.  Terms outside the variable's value space are dropped (they
        could never join anyway).
        """
        from ..exceptions import TranslationError

        binding = next((b for b in self.outputs if b.variable == variable), None)
        if binding is None:
            raise TranslationError(f"translation does not bind ?{variable}")
        values = []
        for term in terms:
            try:
                values.append(binding.value_for(term))
            except TranslationError:
                continue
        if not values:
            # Nothing can join: an always-false restriction.
            restriction: WhereExpr = Comparison(
                "=", Constant(0), Constant(1)
            )
        else:
            restriction = InPredicate(binding.column, tuple(values))
        statement = SelectStatement(
            items=self.statement.items,
            table=self.statement.table,
            joins=list(self.statement.joins),
            where=conjunction(
                ([self.statement.where] if self.statement.where is not None else [])
                + [restriction]
            ),
            distinct=self.statement.distinct,
            order_by=list(self.statement.order_by),
            limit=self.statement.limit,
            offset=self.statement.offset,
        )
        return TranslationResult(
            statement=statement,
            outputs=self.outputs,
            pushed_filters=list(self.pushed_filters),
        )

    def decode_columns(
        self, rows: list[tuple]
    ) -> tuple[tuple[str, ...], list[list[Term | None]], set[int]]:
        """Columnar form of :meth:`solution_for` over a whole result.

        Returns ``(names, columns, invalid)`` where ``invalid`` holds the
        indices of rows whose solution would be None (a NULL binding).
        Term decoding is memoized per binding — terms are frozen value
        objects, so a memoized term is indistinguishable from a fresh one.
        """
        names = tuple(binding.variable for binding in self.outputs)
        columns: list[list[Term | None]] = []
        invalid: set[int] = set()
        for position, binding in enumerate(self.outputs):
            memo = _term_memo(binding)
            memo_get = memo.get
            term_for = binding.term_for
            column: list[Term | None] = []
            append = column.append
            for row in rows:
                value = row[position]
                term = memo_get(value)
                if term is None and value not in memo:
                    term = memo[value] = term_for(value)
                append(term)
            if None in column:
                for index, term in enumerate(column):
                    if term is None:
                        invalid.add(index)
            columns.append(column)
        return names, columns, invalid

    def solution_for(self, row: tuple) -> dict[str, Term] | None:
        """Convert one SQL row into a SPARQL solution mapping.

        Returns None when a required binding is NULL (cannot happen for
        correctly generated statements, which add IS NOT NULL guards).
        """
        solution: dict[str, Term] = {}
        for binding, value in zip(self.outputs, row):
            term = binding.term_for(value)
            if term is None:
                return None
            solution[binding.variable] = term
        return solution


class _StarContext:
    """Mutable translation state of one star."""

    def __init__(self, ssq: StarSubquery, mapping: ClassMapping, alias: str):
        self.ssq = ssq
        self.mapping = mapping
        self.alias = alias
        self.satellite_count = 0

    def subject_column(self) -> ColumnRef:
        return ColumnRef(self.alias, self.mapping.subject_column)

    def next_satellite_alias(self) -> str:
        self.satellite_count += 1
        return f"{self.alias}s{self.satellite_count}"


class _Translator:
    def __init__(self):
        self.bindings: dict[str, VariableBinding] = {}
        self.joins: list[JoinClause] = []
        self.where: list[WhereExpr] = []
        self.from_table: TableRef | None = None

    # -- star translation --------------------------------------------------

    def add_star(self, context: _StarContext, join_to_existing: bool) -> None:
        mapping = context.mapping
        base_ref = TableRef(mapping.table, context.alias)

        join_condition: tuple[ColumnRef, ColumnRef] | None = None
        subject = context.ssq.subject
        if isinstance(subject, Variable):
            existing = self.bindings.get(subject.name)
            if existing is not None:
                if existing.template != mapping.subject_template:
                    raise TranslationError(
                        f"variable ?{subject.name} spans incompatible IRI templates "
                        f"({existing.template!r} vs {mapping.subject_template!r})"
                    )
                join_condition = (existing.column, context.subject_column())
            self._bind(
                subject.name,
                context.subject_column(),
                mapping.subject_template,
                datatype="",
            )
        # Pre-compute object bindings to find a join column if the subject
        # did not provide one.
        pending_conditions: list[WhereExpr] = []
        for pattern in context.ssq.patterns:
            if pattern.predicate == RDF_TYPE:
                type_object = pattern.object
                if isinstance(type_object, IRI) and type_object != mapping.class_iri:
                    raise TranslationError(
                        f"star typed as {type_object.value} but mapped class is "
                        f"{mapping.class_iri.value}"
                    )
                if isinstance(type_object, Variable):
                    raise TranslationError("variable rdf:type objects are not supported")
                continue
            if not isinstance(pattern.predicate, IRI):
                raise TranslationError(f"variable predicate in {pattern.n3()}")
            predicate_mapping = mapping.predicate_mapping(pattern.predicate)
            condition = self._add_pattern(context, pattern, predicate_mapping)
            if condition is not None:
                if join_to_existing and join_condition is None and isinstance(condition, tuple):
                    join_condition = condition
                elif isinstance(condition, tuple):
                    pending_conditions.append(Comparison("=", condition[0], condition[1]))
                else:
                    pending_conditions.append(condition)

        if not isinstance(subject, Variable):
            if not isinstance(subject, IRI):
                raise TranslationError("blank-node subjects are not supported")
            key = mapping.subject_key(subject)
            pending_conditions.append(
                Comparison("=", context.subject_column(), Constant(key))
            )

        if self.from_table is None:
            self.from_table = base_ref
        else:
            if join_condition is None:
                raise TranslationError(
                    "merged stars must share a variable that maps to base-table columns"
                )
            left, right = join_condition
            self.joins.append(JoinClause(base_ref, left, right))
            join_condition = None
        if join_condition is not None:
            # Subject var was shared: emit the equality as a join-on condition
            # replacement (the base table is FROM, so use WHERE).
            left, right = join_condition
            pending_conditions.append(Comparison("=", left, right))
        self.where.extend(pending_conditions)

    def _add_pattern(
        self,
        context: _StarContext,
        pattern,
        predicate_mapping: PredicateMapping,
    ):
        """Translate one (subject, predicate, object) of a star.

        Returns an optional condition: either a (existing_col, new_col) tuple
        usable as a join condition, or a WhereExpr, or None.
        """
        if predicate_mapping.kind in ("column", "link"):
            column = ColumnRef(context.alias, predicate_mapping.column)
        else:  # multivalued: join the satellite table
            satellite_alias = context.next_satellite_alias()
            self.joins.append(
                JoinClause(
                    TableRef(predicate_mapping.table, satellite_alias),
                    ColumnRef(context.alias, context.mapping.subject_column),
                    ColumnRef(satellite_alias, predicate_mapping.key_column),
                )
            )
            column = ColumnRef(satellite_alias, predicate_mapping.value_column)

        obj = pattern.object
        if isinstance(obj, Variable):
            existing = self.bindings.get(obj.name)
            template = predicate_mapping.object_template
            if existing is not None:
                if existing.template != template:
                    raise TranslationError(
                        f"variable ?{obj.name} spans incompatible value spaces"
                    )
                if predicate_mapping.kind in ("column", "link"):
                    self.where.append(IsNullPredicate(column, negated=True))
                return (existing.column, column)
            self._bind(obj.name, column, template, predicate_mapping.datatype)
            if predicate_mapping.kind in ("column", "link"):
                # SPARQL requires the property to be present: exclude NULLs.
                self.where.append(IsNullPredicate(column, negated=True))
            return None
        # Ground object: constant equality.
        value = predicate_mapping.value_for_term(obj)
        return Comparison("=", column, Constant(value))

    def _bind(self, name: str, column: ColumnRef, template: str | None, datatype: str) -> None:
        self.bindings[name] = VariableBinding(name, column, template, datatype)

    # -- filters -------------------------------------------------------------

    def translate_filter(self, filter_: Filter) -> WhereExpr:
        return self._translate_expression(filter_.expression)

    def _translate_expression(self, expression: Expression) -> WhereExpr:
        if isinstance(expression, BinaryOp):
            operator = expression.operator
            if operator in ("&&", "||"):
                left = self._translate_expression(expression.left)
                right = self._translate_expression(expression.right)
                if operator == "&&":
                    return AndExpr((left, right))
                return OrExpr((left, right))
            if operator in _SQL_COMPARISONS:
                return self._translate_comparison(expression)
            raise TranslationError(f"operator {operator!r} is not translatable to SQL")
        if isinstance(expression, UnaryOp) and expression.operator == "!":
            return NotExpr(self._translate_expression(expression.operand))
        if isinstance(expression, FunctionCall):
            return self._translate_function(expression)
        raise TranslationError(f"expression {expression!r} is not translatable to SQL")

    def _translate_comparison(self, expression: BinaryOp) -> WhereExpr:
        left = self._translate_operand(expression.left)
        right = self._translate_operand(expression.right)
        if isinstance(left, Constant) and isinstance(right, Constant):
            raise TranslationError("constant-only comparisons are not pushed down")
        return Comparison(_SQL_COMPARISONS[expression.operator], left, right)

    def _translate_operand(self, expression: Expression):
        if isinstance(expression, VariableExpr):
            return self._column_of(expression.variable)
        if isinstance(expression, TermExpr):
            term = expression.term
            if isinstance(term, Literal):
                python_value = term.to_python()
                if isinstance(python_value, (int, float, bool, str)):
                    return Constant(python_value)
            raise TranslationError(f"term {term!r} is not translatable to SQL")
        raise TranslationError(f"operand {expression!r} is not translatable to SQL")

    def _column_of(self, variable: Variable) -> ColumnRef:
        binding = self.bindings.get(variable.name)
        if binding is None:
            raise TranslationError(f"filter references unbound variable ?{variable.name}")
        if binding.template is not None:
            raise TranslationError(
                f"filters over entity variables (?{variable.name}) are not pushed down"
            )
        return binding.column

    def _translate_function(self, expression: FunctionCall) -> WhereExpr:
        name = expression.name
        if name in ("CONTAINS", "STRSTARTS", "STRENDS"):
            if len(expression.args) != 2:
                raise TranslationError(f"{name} expects two arguments")
            target, needle = expression.args
            if not isinstance(target, VariableExpr) or not isinstance(needle, TermExpr):
                raise TranslationError(f"{name} must be variable-vs-constant to push down")
            column = self._column_of(target.variable)
            if not isinstance(needle.term, Literal):
                raise TranslationError(f"{name} needs a literal pattern")
            raw = needle.term.lexical
            escaped = raw.replace("%", r"\%").replace("_", r"\_")
            if escaped != raw:
                raise TranslationError("pattern contains LIKE wildcards; not pushed down")
            if name == "CONTAINS":
                pattern = f"%{raw}%"
            elif name == "STRSTARTS":
                pattern = f"{raw}%"
            else:
                pattern = f"%{raw}"
            return LikePredicate(column, pattern)
        raise TranslationError(f"function {name} is not translatable to SQL")


#: LRU memo for star→SQL translation, keyed structurally: the N3
#: serialization of every pattern and filter plus the full mapping layout.
#: Equal keys therefore mean structurally identical inputs, even across
#: re-parsed copies of the same query.  Entries are shared read-only: every
#: consumer (including ``TranslationResult.restricted``) copies before
#: modifying.
_TRANSLATION_MEMO_CAPACITY = 256
_translation_memo: "OrderedDict[tuple, TranslationResult]" = OrderedDict()
_MEMOIZE_TRANSLATIONS = True


def set_translation_memoization(enabled: bool) -> None:
    """Toggle the process-wide star→SQL translation memo (clears it off)."""
    global _MEMOIZE_TRANSLATIONS
    _MEMOIZE_TRANSLATIONS = enabled
    if not enabled:
        _translation_memo.clear()


def _mapping_key(mapping: ClassMapping) -> tuple:
    return (
        mapping.source_id,
        mapping.class_iri.value,
        mapping.table,
        mapping.subject_column,
        mapping.subject_template,
        tuple(
            sorted(
                (predicate.value, repr(predicate_mapping))
                for predicate, predicate_mapping in mapping.predicates.items()
            )
        ),
    )


def _translation_key(
    stars: list[tuple[StarSubquery, ClassMapping]],
    pushed_filters: list[Filter] | None,
    distinct: bool,
) -> tuple:
    return (
        tuple(
            (
                tuple(pattern.n3() for pattern in star.patterns),
                _mapping_key(mapping),
            )
            for star, mapping in stars
        ),
        tuple(filter_.n3() for filter_ in pushed_filters or []),
        distinct,
    )


def translate_stars(
    stars: list[tuple[StarSubquery, ClassMapping]],
    pushed_filters: list[Filter] | None = None,
    distinct: bool = False,
) -> TranslationResult:
    """Translate one or more stars (same source) into a single SELECT.

    Args:
        stars: (SSQ, class mapping) pairs; stars after the first must share
            a variable with the part already translated (Heuristic 1's
            star-join), otherwise :class:`TranslationError` is raised.
        pushed_filters: SPARQL filters to translate into the WHERE clause;
            untranslatable filters raise :class:`TranslationError` (callers
            decide placement — that is Heuristic 2's job).
        distinct: emit SELECT DISTINCT.
    """
    if not stars:
        raise TranslationError("translate_stars needs at least one star")
    key = None
    if _MEMOIZE_TRANSLATIONS:
        key = _translation_key(stars, pushed_filters, distinct)
        cached = _translation_memo.get(key)
        if cached is not None:
            _translation_memo.move_to_end(key)
            return cached
    result = _translate_stars(stars, pushed_filters, distinct)
    if key is not None:
        _translation_memo[key] = result
        while len(_translation_memo) > _TRANSLATION_MEMO_CAPACITY:
            _translation_memo.popitem(last=False)
    return result


def _translate_stars(
    stars: list[tuple[StarSubquery, ClassMapping]],
    pushed_filters: list[Filter] | None,
    distinct: bool,
) -> TranslationResult:
    translator = _Translator()
    for position, (ssq, mapping) in enumerate(stars):
        context = _StarContext(ssq, mapping, alias=f"t{position}")
        translator.add_star(context, join_to_existing=position > 0)
    for filter_ in pushed_filters or []:
        translator.where.append(translator.translate_filter(filter_))

    outputs = [translator.bindings[name] for name in sorted(translator.bindings)]
    items = [
        SelectItem(binding.column, alias=f"v_{binding.variable}") for binding in outputs
    ]
    statement = SelectStatement(
        items=items,
        table=translator.from_table,
        joins=translator.joins,
        where=conjunction(translator.where),
        distinct=distinct,
    )
    return TranslationResult(
        statement=statement,
        outputs=outputs,
        pushed_filters=list(pushed_filters or []),
    )


def stars_variable_columns(
    stars: list[tuple[StarSubquery, ClassMapping]]
) -> dict[str, tuple[str, str]]:
    """Map each variable of the stars to its backing ``(table, column)``.

    The physical-design heuristics use this to ask the catalog whether the
    join/filter attributes are indexed.
    """
    translator = _Translator()
    alias_tables: dict[str, str] = {}
    for position, (ssq, mapping) in enumerate(stars):
        alias = f"t{position}"
        alias_tables[alias] = mapping.table
        context = _StarContext(ssq, mapping, alias=alias)
        translator.add_star(context, join_to_existing=position > 0)
    for join in translator.joins:
        alias_tables.setdefault(join.table.binding, join.table.name)
    return {
        name: (alias_tables[binding.column.table], binding.column.column)
        for name, binding in translator.bindings.items()
    }


def can_translate_filter(
    filter_: Filter, stars: list[tuple[StarSubquery, ClassMapping]]
) -> bool:
    """True when *filter_* would push down onto the given stars."""
    try:
        translate_stars(stars, pushed_filters=[filter_])
    except TranslationError:
        return False
    return True


def filter_columns(
    filter_: Filter, stars: list[tuple[StarSubquery, ClassMapping]]
) -> list[tuple[str, str]]:
    """The ``(table, column)`` pairs a filter touches once translated.

    Used by Heuristic 2 to check whether the filtered attributes are
    indexed.  Raises :class:`TranslationError` for untranslatable filters.
    """
    translator = _Translator()
    for position, (ssq, mapping) in enumerate(stars):
        context = _StarContext(ssq, mapping, alias=f"t{position}")
        translator.add_star(context, join_to_existing=position > 0)
    alias_tables = {f"t{position}": mapping.table for position, (__, mapping) in enumerate(stars)}
    # Satellite aliases resolve through the join list.
    for join in translator.joins:
        alias_tables.setdefault(join.table.binding, join.table.name)
    expression = translator.translate_filter(filter_)
    columns: list[tuple[str, str]] = []

    def walk(node: WhereExpr) -> None:
        if isinstance(node, Comparison):
            for operand in (node.left, node.right):
                if isinstance(operand, ColumnRef):
                    columns.append((alias_tables.get(operand.table, operand.table), operand.column))
        elif isinstance(node, (LikePredicate, InPredicate, IsNullPredicate)):
            column = node.column
            columns.append((alias_tables.get(column.table, column.table), column.column))
        elif isinstance(node, NotExpr):
            walk(node.operand)
        elif isinstance(node, (AndExpr, OrExpr)):
            for operand in node.operands:
                walk(operand)

    walk(expression)
    return columns
