"""R2RML-style mappings between RDF molecules and relational tables.

A :class:`ClassMapping` describes how one RDF class is stored relationally:
the base table, the primary-key column holding the subject key, and one
:class:`PredicateMapping` per property — a plain column, a foreign-key link
to another entity, or a satellite table for multi-valued properties (the
3NF decomposition the paper assumes).

IRI templates use a single ``{}`` placeholder, e.g.
``http://example.org/diseasome/gene/{}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal as TypingLiteral

from ..exceptions import TranslationError
from ..rdf.terms import IRI, Literal, Term, XSD_DOUBLE, XSD_INTEGER, XSD_STRING
from ..relational.types import SQLType, SQLValue

PredicateKind = TypingLiteral["column", "link", "multivalued"]


def render_iri(template: str, value: SQLValue) -> IRI:
    """Instantiate an IRI template with a key value."""
    if "{}" not in template:
        raise TranslationError(f"IRI template {template!r} lacks a '{{}}' placeholder")
    return IRI(template.replace("{}", str(value)))


def extract_value(template: str, iri: IRI) -> str | None:
    """Invert :func:`render_iri`: recover the key from an IRI, or None."""
    prefix, placeholder, suffix = template.partition("{}")
    if not placeholder:
        raise TranslationError(f"IRI template {template!r} lacks a '{{}}' placeholder")
    value = iri.value
    if not value.startswith(prefix) or not value.endswith(suffix):
        return None
    if suffix:
        return value[len(prefix):-len(suffix)]
    return value[len(prefix):]


def sql_type_for_datatype(datatype: str) -> SQLType:
    """Map an XSD datatype IRI to the engine's SQL type."""
    if datatype == XSD_INTEGER:
        return SQLType.INTEGER
    if datatype == XSD_DOUBLE or datatype.endswith("#decimal") or datatype.endswith("#float"):
        return SQLType.REAL
    if datatype.endswith("#boolean"):
        return SQLType.BOOLEAN
    return SQLType.TEXT


def datatype_for_sql_type(sql_type: SQLType) -> str:
    if sql_type is SQLType.INTEGER:
        return XSD_INTEGER
    if sql_type is SQLType.REAL:
        return XSD_DOUBLE
    if sql_type is SQLType.BOOLEAN:
        return "http://www.w3.org/2001/XMLSchema#boolean"
    return XSD_STRING


@dataclass(frozen=True)
class PredicateMapping:
    """How one predicate of a class is stored.

    * ``kind="column"`` — a literal stored in ``column`` of the base table.
    * ``kind="link"`` — an object property stored as foreign-key ``column``
      of the base table; the object IRI is rebuilt via ``object_template``.
    * ``kind="multivalued"`` — values live in satellite ``table`` with
      ``key_column`` referencing the base PK and ``value_column`` holding
      the value (a literal, or a key when ``object_template`` is set).
    """

    predicate: IRI
    kind: PredicateKind
    column: str | None = None
    table: str | None = None
    key_column: str | None = None
    value_column: str | None = None
    object_template: str | None = None
    datatype: str = XSD_STRING

    @property
    def is_object_property(self) -> bool:
        return self.object_template is not None

    def term_for_value(self, value: SQLValue) -> Term | None:
        """Rebuild the RDF object term from a stored SQL value."""
        if value is None:
            return None
        if self.object_template is not None:
            return render_iri(self.object_template, value)
        if isinstance(value, bool):
            return Literal("true" if value else "false", self.datatype)
        return Literal(str(value), self.datatype)

    def value_for_term(self, term: Term) -> SQLValue:
        """Convert a ground RDF term to the stored SQL value.

        Raises:
            TranslationError: when the term cannot live in this mapping
                (wrong IRI space, non-literal where a literal is needed).
        """
        if self.object_template is not None:
            if not isinstance(term, IRI):
                raise TranslationError(
                    f"predicate {self.predicate.value} expects an IRI object, got {term!r}"
                )
            value = extract_value(self.object_template, term)
            if value is None:
                raise TranslationError(
                    f"IRI {term.value} does not match template {self.object_template!r}"
                )
            return _coerce_key(value)
        if not isinstance(term, Literal):
            raise TranslationError(
                f"predicate {self.predicate.value} expects a literal object, got {term!r}"
            )
        sql_type = sql_type_for_datatype(self.datatype)
        if sql_type is SQLType.INTEGER:
            return int(term.lexical)
        if sql_type is SQLType.REAL:
            return float(term.lexical)
        if sql_type is SQLType.BOOLEAN:
            return term.lexical.strip().lower() in ("true", "1")
        return term.lexical


def _coerce_key(value: str) -> SQLValue:
    """Keys extracted from IRIs are integers when they look like integers."""
    try:
        return int(value)
    except ValueError:
        return value


@dataclass
class ClassMapping:
    """Relational layout of one RDF class within one source."""

    class_iri: IRI
    source_id: str
    table: str
    subject_column: str
    subject_template: str
    predicates: dict[IRI, PredicateMapping] = field(default_factory=dict)

    def predicate_mapping(self, predicate: IRI) -> PredicateMapping:
        if predicate not in self.predicates:
            raise TranslationError(
                f"class {self.class_iri.value} has no mapping for predicate {predicate.value}"
            )
        return self.predicates[predicate]

    def has_predicate(self, predicate: IRI) -> bool:
        return predicate in self.predicates

    def subject_term(self, key: SQLValue) -> IRI:
        return render_iri(self.subject_template, key)

    def subject_key(self, iri: IRI) -> SQLValue:
        value = extract_value(self.subject_template, iri)
        if value is None:
            raise TranslationError(
                f"IRI {iri.value} does not match subject template {self.subject_template!r}"
            )
        return _coerce_key(value)


@dataclass
class SourceMapping:
    """All class mappings of one relational source."""

    source_id: str
    classes: dict[IRI, ClassMapping] = field(default_factory=dict)

    def add(self, mapping: ClassMapping) -> None:
        self.classes[mapping.class_iri] = mapping

    def class_mapping(self, class_iri: IRI) -> ClassMapping:
        if class_iri not in self.classes:
            raise TranslationError(
                f"source {self.source_id!r} has no mapping for class {class_iri.value}"
            )
        return self.classes[class_iri]

    def classes_with_predicates(self, predicates: set[IRI]) -> list[ClassMapping]:
        """Class mappings offering every predicate in *predicates*
        (``rdf:type`` is implicit and ignored)."""
        from ..rdf.namespaces import RDF_TYPE

        wanted = {predicate for predicate in predicates if predicate != RDF_TYPE}
        return [
            mapping
            for mapping in self.classes.values()
            if all(mapping.has_predicate(predicate) for predicate in wanted)
        ]
