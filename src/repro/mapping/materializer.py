"""Relational -> RDF reverse materialization (the normalizer's inverse).

The correctness oracle (:mod:`repro.oracle`) needs an obviously-correct
view of the whole lake: every relational member is de-normalized back into
the RDF triples its R2RML-style mapping describes, so a plain SPARQL
evaluator can answer queries without the planner, the heuristics, the
wrappers or the caches in the loop.

For sources produced by :func:`repro.mapping.normalizer.normalize_graph`
this is an exact inverse: ``materialize(database, mapping)`` yields the
original graph's triples (asserted by the oracle's round-trip tests).
"""

from __future__ import annotations

from typing import Iterator

from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import Triple
from ..relational.database import Database
from .rml import ClassMapping, SourceMapping


def _rows_as_dicts(database: Database, table: str) -> Iterator[dict]:
    storage = database.table(table)
    names = [column.name for column in storage.schema.columns]
    for row in storage.rows():
        yield dict(zip(names, row))


def materialize_class(database: Database, mapping: ClassMapping) -> Iterator[Triple]:
    """Yield every triple one class mapping describes.

    * one ``rdf:type`` triple per base-table row,
    * one triple per non-NULL functional column / link column,
    * one triple per satellite-table row for multi-valued predicates.
    """
    # Satellite tables are grouped once up front so materialization stays
    # linear in the number of rows.
    satellites: dict[str, dict[object, list[object]]] = {}
    for predicate_mapping in mapping.predicates.values():
        if predicate_mapping.kind != "multivalued":
            continue
        table = predicate_mapping.table
        if table is None or table in satellites or not database.has_table(table):
            continue
        grouped: dict[object, list[object]] = {}
        for row in _rows_as_dicts(database, table):
            grouped.setdefault(row[predicate_mapping.key_column], []).append(
                row[predicate_mapping.value_column]
            )
        satellites[table] = grouped

    for row in _rows_as_dicts(database, mapping.table):
        key = row[mapping.subject_column]
        subject = mapping.subject_term(key)
        yield Triple(subject, RDF_TYPE, mapping.class_iri)
        for predicate_mapping in mapping.predicates.values():
            if predicate_mapping.kind == "multivalued":
                grouped = satellites.get(predicate_mapping.table or "", {})
                for value in grouped.get(key, ()):
                    term = predicate_mapping.term_for_value(value)
                    if term is not None:
                        yield Triple(subject, predicate_mapping.predicate, term)
            else:
                term = predicate_mapping.term_for_value(row[predicate_mapping.column])
                if term is not None:
                    yield Triple(subject, predicate_mapping.predicate, term)


def materialize_source(database: Database, mapping: SourceMapping) -> Iterator[Triple]:
    """Yield every triple of one relational source (all class mappings)."""
    for class_iri in sorted(mapping.classes, key=lambda iri: iri.value):
        yield from materialize_class(database, mapping.classes[class_iri])
