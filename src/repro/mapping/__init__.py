"""Mappings between RDF and relational storage, plus SSQ -> SQL translation."""

from .materializer import materialize_class, materialize_source
from .normalizer import NormalizationReport, Normalizer, normalize_graph
from .rml import (
    ClassMapping,
    PredicateMapping,
    SourceMapping,
    datatype_for_sql_type,
    extract_value,
    render_iri,
    sql_type_for_datatype,
)
from .translator import (
    TranslationResult,
    VariableBinding,
    can_translate_filter,
    filter_columns,
    stars_variable_columns,
    translate_stars,
)

__all__ = [
    "ClassMapping",
    "NormalizationReport",
    "Normalizer",
    "PredicateMapping",
    "SourceMapping",
    "TranslationResult",
    "VariableBinding",
    "can_translate_filter",
    "datatype_for_sql_type",
    "extract_value",
    "filter_columns",
    "materialize_class",
    "materialize_source",
    "normalize_graph",
    "render_iri",
    "sql_type_for_datatype",
    "stars_variable_columns",
    "translate_stars",
]
