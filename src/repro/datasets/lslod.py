"""Synthetic LSLOD-like data sets.

The paper evaluates on the ten real-world life-science data sets of the
LSLOD benchmark (BioFed).  Those dumps are not redistributable here, so this
module generates *synthetic* data sets playing the same roles — Diseasome,
Affymetrix, TCGA, DrugBank, KEGG, SIDER, DailyMed, Medicare, LinkedCT and
ChEBI — with the schema shapes and value distributions the experiments
need:

* stars of at most four relational tables after 3NF normalization;
* cross-data-set join attributes (gene symbols, drug names, compound names);
* string attributes with skewed values (Affymetrix's species name, where
  one value covers ~40 % of records, so the 15 % rule forbids an index — the
  paper's motivating example);
* selective indexed attributes (TCGA's gene symbol) for Heuristic 2's
  contradiction case (Q3).

Everything is generated deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..rdf.graph import Graph
from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import IRI, Literal, Triple, XSD_DOUBLE, XSD_INTEGER

BASE = "http://lslod.repro/"

#: Base row counts at scale 1.0 (chosen so a full experiment grid runs in
#: seconds of real time while giving thousands of transferred messages).
BASE_SIZES = {
    "diseasome_diseases": 800,
    "diseasome_genes": 2500,
    "affymetrix_probesets": 3000,
    "drugbank_drugs": 1500,
    "kegg_compounds": 1200,
    "sider_drugs": 900,
    "dailymed_labels": 1000,
    "medicare_claims": 3000,
    "linkedct_trials": 1800,
    "chebi_entities": 1200,
    "tcga_patients": 600,
    "tcga_expressions": 8000,
}

SPECIES = [
    ("Homo sapiens", 0.40),
    ("Mus musculus", 0.25),
    ("Rattus norvegicus", 0.15),
    ("Danio rerio", 0.12),
    ("Drosophila melanogaster", 0.08),
]

DISEASE_CLASSES = [
    "cancer",
    "metabolic",
    "neurological",
    "cardiovascular",
    "immunological",
    "respiratory",
    "dermatological",
    "ophthalmological",
    "skeletal",
    "hematological",
]

_SYLLABLES = [
    "ab", "cor", "dex", "fen", "gli", "hep", "ix", "lam", "mir", "nor",
    "ol", "pra", "quin", "rol", "sta", "tol", "umab", "vir", "xan", "zol",
]


@dataclass
class DatasetBundle:
    """One generated data set: its RDF graph plus bookkeeping."""

    name: str
    graph: Graph
    entity_counts: dict[str, int] = field(default_factory=dict)


def vocab(dataset: str, name: str) -> IRI:
    """Vocabulary IRI of *dataset* (e.g. ``vocab('diseasome', 'geneSymbol')``)."""
    return IRI(f"{BASE}{dataset}/vocab#{name}")


def resource(dataset: str, class_name: str, key: int | str) -> IRI:
    """Entity IRI, e.g. ``resource('diseasome', 'Gene', 7)``."""
    return IRI(f"{BASE}{dataset}/resource/{class_name}/{key}")


def _scaled(base: int, scale: float) -> int:
    return max(10, int(round(base * scale)))


def _word(rng: np.random.Generator, syllables: int = 3) -> str:
    return "".join(rng.choice(_SYLLABLES) for __ in range(syllables))


def _pick_weighted(rng: np.random.Generator, table: list[tuple[str, float]]) -> str:
    values = [value for value, __ in table]
    weights = np.array([weight for __, weight in table])
    return str(rng.choice(values, p=weights / weights.sum()))


#: Fixed well-known symbols placed at the head of the pool so the benchmark
#: queries can reference them literally.  "GAB10" sits at Zipf rank 10 of the
#: TCGA expression table (~1 % of rows) — Q3's selective indexed filter.
KNOWN_GENE_SYMBOLS = (
    "BRCA1", "TP53", "EGFR", "KRAS", "MYC", "PTEN", "RB1", "APC", "VHL", "GAB10",
)


def gene_symbols(count: int, rng: np.random.Generator) -> list[str]:
    """Deterministic pool of gene symbols; the head is a fixed, known set."""
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    symbols = list(KNOWN_GENE_SYMBOLS[:count])
    for index in range(len(symbols), count):
        length = 3 + index % 3
        stem = "".join(letters[int(value)] for value in rng.integers(0, 26, size=length))
        symbols.append(f"{stem}{index % 97}")
    return symbols


def drug_names(count: int, rng: np.random.Generator) -> list[str]:
    """Drug names with a controlled substring distribution.

    Exactly 1 in 20 names avoids the letter ``a``; the rest contain it.  Q1
    filters with ``CONTAINS(?name, "a")`` — a *barely selective* pattern
    filter, so pushing it into the RDB buys almost no transfer reduction
    while paying the LIKE scan, the shape behind Heuristic 2's preference
    for engine-side filters on fast networks.
    """
    names = set()
    result = []
    while len(result) < count:
        name = _word(rng, 3).capitalize() + str(rng.choice(["in", "ol", "ide", "ase", "an"]))
        if len(result) % 20 == 0:
            name = name.replace("a", "o").replace("A", "O")
        elif "a" not in name.lower():
            name += "al"
        if name not in names:
            names.add(name)
            result.append(name)
    return result


@dataclass
class SharedVocabulary:
    """Cross-data-set value pools: the join attributes of the benchmark."""

    gene_symbols: list[str]
    drug_names: list[str]
    compound_names: list[str]


def make_shared_vocabulary(scale: float, rng: np.random.Generator) -> SharedVocabulary:
    return SharedVocabulary(
        gene_symbols=gene_symbols(_scaled(1200, scale), rng),
        drug_names=drug_names(_scaled(700, scale), rng),
        compound_names=[f"C{index:05d}" for index in range(_scaled(800, scale))],
    )


# ---------------------------------------------------------------------------
# Individual data sets
# ---------------------------------------------------------------------------


def generate_diseasome(scale: float, shared: SharedVocabulary, rng: np.random.Generator) -> DatasetBundle:
    """Diseases and the genes associated with them (the Fig. 1 data set)."""
    graph = Graph("diseasome")
    n_diseases = _scaled(BASE_SIZES["diseasome_diseases"], scale)
    n_genes = _scaled(BASE_SIZES["diseasome_genes"], scale)
    disease_class = vocab("diseasome", "Disease")
    gene_class = vocab("diseasome", "Gene")
    for index in range(1, n_diseases + 1):
        subject = resource("diseasome", "Disease", index)
        graph.add(Triple(subject, RDF_TYPE, disease_class))
        name = f"{_word(rng, 2)} {rng.choice(['syndrome', 'disease', 'disorder', 'deficiency'])} {index}"
        graph.add(Triple(subject, vocab("diseasome", "diseaseName"), Literal(name)))
        graph.add(
            Triple(
                subject,
                vocab("diseasome", "diseaseClass"),
                Literal(DISEASE_CLASSES[int(rng.integers(0, len(DISEASE_CLASSES)))]),
            )
        )
        graph.add(
            Triple(
                subject,
                vocab("diseasome", "degree"),
                Literal(str(int(rng.integers(1, 40))), XSD_INTEGER),
            )
        )
    for index in range(1, n_genes + 1):
        subject = resource("diseasome", "Gene", index)
        graph.add(Triple(subject, RDF_TYPE, gene_class))
        if index <= len(KNOWN_GENE_SYMBOLS):
            # Guarantee the well-known symbols exist at every scale (the
            # benchmark queries reference them literally).
            symbol = KNOWN_GENE_SYMBOLS[index - 1]
        else:
            symbol = shared.gene_symbols[int(rng.integers(0, len(shared.gene_symbols)))]
        graph.add(Triple(subject, vocab("diseasome", "geneSymbol"), Literal(symbol)))
        disease_key = int(rng.integers(1, n_diseases + 1))
        graph.add(
            Triple(
                subject,
                vocab("diseasome", "associatedDisease"),
                resource("diseasome", "Disease", disease_key),
            )
        )
        graph.add(
            Triple(
                subject,
                vocab("diseasome", "chromosome"),
                Literal(str(int(rng.integers(1, 24)))),
            )
        )
    return DatasetBundle(
        "diseasome", graph, {"Disease": n_diseases, "Gene": n_genes}
    )


def generate_affymetrix(scale: float, shared: SharedVocabulary, rng: np.random.Generator) -> DatasetBundle:
    """Microarray probe sets; the species attribute is heavily skewed."""
    graph = Graph("affymetrix")
    n = _scaled(BASE_SIZES["affymetrix_probesets"], scale)
    probeset_class = vocab("affymetrix", "Probeset")
    for index in range(1, n + 1):
        subject = resource("affymetrix", "Probeset", index)
        graph.add(Triple(subject, RDF_TYPE, probeset_class))
        symbol = shared.gene_symbols[int(rng.integers(0, len(shared.gene_symbols)))]
        graph.add(Triple(subject, vocab("affymetrix", "symbol"), Literal(symbol)))
        graph.add(
            Triple(
                subject,
                vocab("affymetrix", "scientificName"),
                Literal(_pick_weighted(rng, SPECIES)),
            )
        )
        graph.add(
            Triple(
                subject,
                vocab("affymetrix", "chromosome"),
                Literal(str(int(rng.integers(1, 24)))),
            )
        )
    return DatasetBundle("affymetrix", graph, {"Probeset": n})


def generate_drugbank(scale: float, shared: SharedVocabulary, rng: np.random.Generator) -> DatasetBundle:
    """Drugs with names, categories, target genes and compound links."""
    graph = Graph("drugbank")
    n = _scaled(BASE_SIZES["drugbank_drugs"], scale)
    drug_class = vocab("drugbank", "Drug")
    categories = ["approved", "experimental", "withdrawn", "nutraceutical", "illicit"]
    for index in range(1, n + 1):
        subject = resource("drugbank", "Drug", index)
        graph.add(Triple(subject, RDF_TYPE, drug_class))
        name = shared.drug_names[int(rng.integers(0, len(shared.drug_names)))]
        graph.add(Triple(subject, vocab("drugbank", "drugName"), Literal(name)))
        graph.add(
            Triple(
                subject,
                vocab("drugbank", "category"),
                Literal(categories[int(rng.integers(0, len(categories)))]),
            )
        )
        symbol = shared.gene_symbols[int(rng.integers(0, len(shared.gene_symbols)))]
        graph.add(Triple(subject, vocab("drugbank", "targetGeneSymbol"), Literal(symbol)))
        compound = shared.compound_names[int(rng.integers(0, len(shared.compound_names)))]
        graph.add(Triple(subject, vocab("drugbank", "compoundName"), Literal(compound)))
        graph.add(
            Triple(
                subject,
                vocab("drugbank", "meltingPoint"),
                Literal(f"{rng.uniform(40, 300):.1f}", XSD_DOUBLE),
            )
        )
    return DatasetBundle("drugbank", graph, {"Drug": n})


def generate_kegg(scale: float, shared: SharedVocabulary, rng: np.random.Generator) -> DatasetBundle:
    """KEGG compounds — kept as a *native RDF* source in the lake."""
    graph = Graph("kegg")
    n = _scaled(BASE_SIZES["kegg_compounds"], scale)
    compound_class = vocab("kegg", "Compound")
    for index in range(1, n + 1):
        subject = resource("kegg", "Compound", index)
        graph.add(Triple(subject, RDF_TYPE, compound_class))
        name = shared.compound_names[int(rng.integers(0, len(shared.compound_names)))]
        graph.add(Triple(subject, vocab("kegg", "compoundName"), Literal(name)))
        graph.add(
            Triple(
                subject,
                vocab("kegg", "formula"),
                Literal(f"C{int(rng.integers(1, 30))}H{int(rng.integers(1, 60))}O{int(rng.integers(0, 12))}"),
            )
        )
        graph.add(
            Triple(
                subject,
                vocab("kegg", "mass"),
                Literal(f"{rng.uniform(50, 900):.3f}", XSD_DOUBLE),
            )
        )
    return DatasetBundle("kegg", graph, {"Compound": n})


def generate_sider(scale: float, shared: SharedVocabulary, rng: np.random.Generator) -> DatasetBundle:
    """Drugs with multi-valued side effects (exercises satellite tables)."""
    graph = Graph("sider")
    n = _scaled(BASE_SIZES["sider_drugs"], scale)
    drug_class = vocab("sider", "Drug")
    effects = [f"{_word(rng, 2)} {suffix}" for suffix in ("pain", "rash", "nausea", "fever")
               for __ in range(6)]
    for index in range(1, n + 1):
        subject = resource("sider", "Drug", index)
        graph.add(Triple(subject, RDF_TYPE, drug_class))
        name = shared.drug_names[int(rng.integers(0, len(shared.drug_names)))]
        graph.add(Triple(subject, vocab("sider", "drugName"), Literal(name)))
        for __ in range(int(rng.integers(1, 5))):
            effect = effects[int(rng.integers(0, len(effects)))]
            graph.add(Triple(subject, vocab("sider", "sideEffect"), Literal(effect)))
    return DatasetBundle("sider", graph, {"Drug": n})


def generate_dailymed(scale: float, shared: SharedVocabulary, rng: np.random.Generator) -> DatasetBundle:
    graph = Graph("dailymed")
    n = _scaled(BASE_SIZES["dailymed_labels"], scale)
    label_class = vocab("dailymed", "Label")
    routes = ["oral", "intravenous", "topical", "inhalation"]
    for index in range(1, n + 1):
        subject = resource("dailymed", "Label", index)
        graph.add(Triple(subject, RDF_TYPE, label_class))
        name = shared.drug_names[int(rng.integers(0, len(shared.drug_names)))]
        graph.add(Triple(subject, vocab("dailymed", "genericName"), Literal(name)))
        graph.add(
            Triple(
                subject,
                vocab("dailymed", "route"),
                Literal(routes[int(rng.integers(0, len(routes)))]),
            )
        )
    return DatasetBundle("dailymed", graph, {"Label": n})


def generate_medicare(scale: float, shared: SharedVocabulary, rng: np.random.Generator) -> DatasetBundle:
    graph = Graph("medicare")
    n = _scaled(BASE_SIZES["medicare_claims"], scale)
    claim_class = vocab("medicare", "Claim")
    for index in range(1, n + 1):
        subject = resource("medicare", "Claim", index)
        graph.add(Triple(subject, RDF_TYPE, claim_class))
        name = shared.drug_names[int(rng.integers(0, len(shared.drug_names)))]
        graph.add(Triple(subject, vocab("medicare", "drugName"), Literal(name)))
        graph.add(
            Triple(
                subject,
                vocab("medicare", "cost"),
                Literal(f"{rng.uniform(4, 900):.2f}", XSD_DOUBLE),
            )
        )
        graph.add(
            Triple(
                subject,
                vocab("medicare", "claimCount"),
                Literal(str(int(rng.integers(1, 400))), XSD_INTEGER),
            )
        )
    return DatasetBundle("medicare", graph, {"Claim": n})


def generate_linkedct(scale: float, shared: SharedVocabulary, rng: np.random.Generator) -> DatasetBundle:
    graph = Graph("linkedct")
    n = _scaled(BASE_SIZES["linkedct_trials"], scale)
    trial_class = vocab("linkedct", "Trial")
    phases = ["Phase 1", "Phase 2", "Phase 3", "Phase 4"]
    for index in range(1, n + 1):
        subject = resource("linkedct", "Trial", index)
        graph.add(Triple(subject, RDF_TYPE, trial_class))
        name = shared.drug_names[int(rng.integers(0, len(shared.drug_names)))]
        graph.add(Triple(subject, vocab("linkedct", "interventionDrug"), Literal(name)))
        graph.add(
            Triple(
                subject,
                vocab("linkedct", "phase"),
                Literal(phases[int(rng.integers(0, len(phases)))]),
            )
        )
        graph.add(
            Triple(
                subject,
                vocab("linkedct", "condition"),
                Literal(f"{_word(rng, 2)} condition"),
            )
        )
    return DatasetBundle("linkedct", graph, {"Trial": n})


def generate_chebi(scale: float, shared: SharedVocabulary, rng: np.random.Generator) -> DatasetBundle:
    graph = Graph("chebi")
    n = _scaled(BASE_SIZES["chebi_entities"], scale)
    entity_class = vocab("chebi", "ChemicalEntity")
    for index in range(1, n + 1):
        subject = resource("chebi", "ChemicalEntity", index)
        graph.add(Triple(subject, RDF_TYPE, entity_class))
        name = shared.compound_names[int(rng.integers(0, len(shared.compound_names)))]
        graph.add(Triple(subject, vocab("chebi", "chebiName"), Literal(name)))
        graph.add(
            Triple(
                subject,
                vocab("chebi", "charge"),
                Literal(str(int(rng.integers(-4, 5))), XSD_INTEGER),
            )
        )
        graph.add(
            Triple(
                subject,
                vocab("chebi", "mass"),
                Literal(f"{rng.uniform(10, 1200):.3f}", XSD_DOUBLE),
            )
        )
    return DatasetBundle("chebi", graph, {"ChemicalEntity": n})


def generate_tcga(scale: float, shared: SharedVocabulary, rng: np.random.Generator) -> DatasetBundle:
    """TCGA patients + a large gene-expression table (Q3's and Q5's data)."""
    graph = Graph("tcga")
    n_patients = _scaled(BASE_SIZES["tcga_patients"], scale)
    n_expressions = _scaled(BASE_SIZES["tcga_expressions"], scale)
    patient_class = vocab("tcga", "Patient")
    expression_class = vocab("tcga", "GeneExpression")
    for index in range(1, n_patients + 1):
        subject = resource("tcga", "Patient", index)
        graph.add(Triple(subject, RDF_TYPE, patient_class))
        graph.add(
            Triple(
                subject,
                vocab("tcga", "gender"),
                Literal("female" if rng.random() < 0.5 else "male"),
            )
        )
        graph.add(
            Triple(
                subject,
                vocab("tcga", "ageAtDiagnosis"),
                Literal(str(int(rng.integers(25, 90))), XSD_INTEGER),
            )
        )
    # Zipf-like symbol usage: a selective equality filter on a symbol in the
    # head matches ~0.5-1 % of rows, the tail far less.
    symbol_pool = shared.gene_symbols
    zipf_weights = 1.0 / np.arange(1, len(symbol_pool) + 1)
    zipf_weights /= zipf_weights.sum()
    for index in range(1, n_expressions + 1):
        subject = resource("tcga", "GeneExpression", index)
        graph.add(Triple(subject, RDF_TYPE, expression_class))
        patient_key = int(rng.integers(1, n_patients + 1))
        graph.add(
            Triple(subject, vocab("tcga", "patient"), resource("tcga", "Patient", patient_key))
        )
        if index % 100 == 0:
            # Guarantee ~1 % of expression rows carry Q3's filter symbol at
            # every scale (it also sits at Zipf rank 10 for the sampled rest).
            symbol = "GAB10"
        else:
            symbol = symbol_pool[int(rng.choice(len(symbol_pool), p=zipf_weights))]
        graph.add(Triple(subject, vocab("tcga", "geneSymbol"), Literal(symbol)))
        graph.add(
            Triple(
                subject,
                vocab("tcga", "expressionValue"),
                Literal(f"{rng.uniform(0, 18):.4f}", XSD_DOUBLE),
            )
        )
    return DatasetBundle(
        "tcga", graph, {"Patient": n_patients, "GeneExpression": n_expressions}
    )


#: All generators keyed by data set name.
GENERATORS = {
    "diseasome": generate_diseasome,
    "affymetrix": generate_affymetrix,
    "drugbank": generate_drugbank,
    "kegg": generate_kegg,
    "sider": generate_sider,
    "dailymed": generate_dailymed,
    "medicare": generate_medicare,
    "linkedct": generate_linkedct,
    "chebi": generate_chebi,
    "tcga": generate_tcga,
}


def generate_all(scale: float = 1.0, seed: int = 42) -> dict[str, DatasetBundle]:
    """Generate all ten data sets deterministically."""
    rng = np.random.default_rng(seed)
    shared = make_shared_vocabulary(scale, rng)
    bundles = {}
    for name in sorted(GENERATORS):
        # Per-data-set RNG so data sets are independent of generation order.
        # (zlib.crc32 is stable across processes, unlike str.__hash__.)
        import zlib

        dataset_rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % 100_000)
        bundles[name] = GENERATORS[name](scale, shared, dataset_rng)
    return bundles
