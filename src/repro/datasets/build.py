"""Build the benchmark Semantic Data Lake.

Reproduces the paper's data preparation end to end:

1. generate the ten LSLOD-like RDF data sets,
2. transform each into 3NF relational tables inside a dedicated database
   (KEGG stays a native RDF source to exercise heterogeneity),
3. create primary-key indexes (automatic) plus the *additional indexes for
   some attributes that are used for joins or selections in the queries*,
4. run the 15 %-rule index advisor on the skewed Affymetrix species
   attribute, which — like the paper's motivating example — declines to
   index it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..datalake.lake import SemanticDataLake
from ..relational.statistics import IndexAdvice
from .lslod import DatasetBundle, generate_all

#: The "additional indexes" of the experiment setup: (source, table, column).
BENCHMARK_INDEXES = (
    ("diseasome", "gene", "associateddisease"),  # H1 join (Q2, Fig. 1)
    ("diseasome", "gene", "genesymbol"),  # join attribute (Q3)
    ("drugbank", "drug", "drugname"),  # Q1's indexed (string) filter
    ("drugbank", "drug", "compoundname"),  # Q4 join
    ("linkedct", "trial", "interventiondrug"),  # Q1 join
    ("medicare", "claim", "drugname"),  # drug joins
    ("dailymed", "label", "genericname"),  # drug joins
    ("chebi", "chemicalentity", "chebiname"),  # Q4 join
    ("tcga", "geneexpression", "genesymbol"),  # Q3's selective filter
    ("tcga", "geneexpression", "patient"),  # H1 join (Q5)
    ("tcga", "patient", "ageatdiagnosis"),  # Q5's range filter
    ("affymetrix", "probeset", "symbol"),  # join attribute (Fig. 1)
    ("sider", "drug", "drugname"),  # drug joins
)

#: Columns submitted to the 15 %-rule advisor (expected to be declined).
ADVISOR_CANDIDATES = (
    ("affymetrix", "probeset", "scientificname"),  # the motivating example
    ("drugbank", "drug", "category"),
    ("tcga", "patient", "gender"),
)


@dataclass
class LakeBuildReport:
    """What the builder produced (for docs, tests and benchmarks)."""

    scale: float
    seed: int
    entity_counts: dict[str, dict[str, int]] = field(default_factory=dict)
    created_indexes: list[tuple[str, str, str]] = field(default_factory=list)
    advisor_decisions: list[IndexAdvice] = field(default_factory=list)


def build_lslod_lake(
    scale: float = 1.0,
    seed: int = 42,
    with_benchmark_indexes: bool = True,
    report: LakeBuildReport | None = None,
) -> SemanticDataLake:
    """Build the full benchmark lake.

    Args:
        scale: multiplies every data set's base size.
        seed: generation seed (the lake is fully deterministic).
        with_benchmark_indexes: create the experiment's additional indexes;
            pass False to study the PK-only physical design.
        report: optional report object to fill in.
    """
    bundles = generate_all(scale=scale, seed=seed)
    lake = SemanticDataLake("lslod")
    for name, bundle in sorted(bundles.items()):
        if name == "kegg":
            lake.add_rdf_source(name, bundle.graph)
        else:
            lake.add_graph_as_relational(name, bundle.graph)
        if report is not None:
            report.entity_counts[name] = dict(bundle.entity_counts)

    if with_benchmark_indexes:
        for source_id, table, column in BENCHMARK_INDEXES:
            lake.create_index(source_id, table, [column])
            if report is not None:
                report.created_indexes.append((source_id, table, column))

    # The 15 %-rule advisor: skewed attributes stay unindexed.
    for source_id, table, column in ADVISOR_CANDIDATES:
        source = lake.source(source_id)
        advice = source.database.advise_index(table, column)
        if advice.create:
            lake.create_index(source_id, table, [column])
        if report is not None:
            report.advisor_decisions.append(advice)

    if report is not None:
        report.scale = scale
        report.seed = seed
    return lake


@lru_cache(maxsize=4)
def cached_lslod_lake(scale: float = 1.0, seed: int = 42) -> SemanticDataLake:
    """A process-wide cached lake for benchmarks.

    Treat the result as read-only: it is shared across callers.
    """
    return build_lslod_lake(scale=scale, seed=seed)


def dataset_bundles(scale: float = 1.0, seed: int = 42) -> dict[str, DatasetBundle]:
    """The raw generated data sets (for tests and examples)."""
    return generate_all(scale=scale, seed=seed)
