"""The benchmark queries Q1-Q5 (plus the motivating-example query).

The paper does not publish its five tailored queries, only their design
criteria: (a) query selectivity, (b) filter expressions over indexed
attributes, and (c) possible joins of star-shaped sub-queries over indexed
attributes — plus intermediate-result size as a fourth lever.  The queries
below realize each criterion against the synthetic LSLOD data sets:

* **Q1** — Heuristic 2's supporting case: a *substring* filter over an
  indexed string attribute (DrugBank drug names).  The index exists, so the
  aware plan pushes the filter down; but an infix LIKE cannot use a B-tree,
  so the RDBMS pays an expensive string scan — engine-level filtering wins
  on fast networks, exactly the paper's "results of Q1 support our
  experience" observation.
* **Q2** — Heuristic 1's case: two star-shaped sub-queries over the same
  endpoint (Diseasome genes + diseases) joined on an indexed attribute; the
  merged SQL roughly halves execution time.
* **Q3** — Heuristic 2's contradiction (Figure 2): a highly *selective
  equality* filter over an indexed attribute (TCGA gene symbol); pushing it
  down collapses the intermediate result, so the source-side filter wins at
  every network setting.
* **Q4** — heterogeneity: joins a native RDF source (KEGG) with relational
  members, showing the heuristics only fire for relational sub-queries.
* **Q5** — intermediate-result size / network sensitivity: a same-endpoint
  star join over TCGA (patients x expressions) with a pushable range
  filter; the unaware plan ships the large expression table and suffers
  most under slow networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

PREFIXES = """\
PREFIX diseasome: <http://lslod.repro/diseasome/vocab#>
PREFIX affymetrix: <http://lslod.repro/affymetrix/vocab#>
PREFIX drugbank: <http://lslod.repro/drugbank/vocab#>
PREFIX kegg: <http://lslod.repro/kegg/vocab#>
PREFIX sider: <http://lslod.repro/sider/vocab#>
PREFIX dailymed: <http://lslod.repro/dailymed/vocab#>
PREFIX medicare: <http://lslod.repro/medicare/vocab#>
PREFIX linkedct: <http://lslod.repro/linkedct/vocab#>
PREFIX chebi: <http://lslod.repro/chebi/vocab#>
PREFIX tcga: <http://lslod.repro/tcga/vocab#>
"""


@dataclass(frozen=True)
class BenchmarkQuery:
    """One benchmark query with its design rationale."""

    name: str
    text: str
    rationale: str
    exercises: tuple[str, ...] = field(default_factory=tuple)


Q1 = BenchmarkQuery(
    name="Q1",
    text=PREFIXES
    + """
SELECT ?drug ?name ?trial ?phase WHERE {
  ?drug a drugbank:Drug ;
        drugbank:drugName ?name ;
        drugbank:category ?cat .
  ?trial a linkedct:Trial ;
         linkedct:interventionDrug ?name ;
         linkedct:phase ?phase .
  FILTER(CONTAINS(?name, "a"))
}
""",
    rationale=(
        "Barely selective substring filter over the indexed drugName "
        "attribute: the aware plan pushes it down (index present) but the "
        "infix LIKE cannot use the B-tree, so the RDB pays a full pattern "
        "scan while the transfer shrinks only ~5% — supporting Heuristic 2's "
        "preference for engine-level filters on fast networks."
    ),
    exercises=("heuristic2-support", "indexed-string-filter", "cross-source-join"),
)

Q2 = BenchmarkQuery(
    name="Q2",
    text=PREFIXES
    + """
SELECT ?gene ?symbol ?disease ?dname WHERE {
  ?gene a diseasome:Gene ;
        diseasome:geneSymbol ?symbol ;
        diseasome:associatedDisease ?disease .
  ?disease a diseasome:Disease ;
           diseasome:diseaseName ?dname ;
           diseasome:diseaseClass "cancer" .
}
""",
    rationale=(
        "Two star-shaped sub-queries over the same endpoint (Diseasome) "
        "joined on the indexed associatedDisease attribute: Heuristic 1 "
        "merges them into one SQL query, halving execution time like the "
        "paper's forced-optimized Q2."
    ),
    exercises=("heuristic1", "join-pushdown", "same-endpoint-stars"),
)

Q3 = BenchmarkQuery(
    name="Q3",
    text=PREFIXES
    + """
SELECT ?expr ?value ?gene ?disease WHERE {
  ?expr a tcga:GeneExpression ;
        tcga:geneSymbol ?symbol ;
        tcga:expressionValue ?value .
  ?gene a diseasome:Gene ;
        diseasome:geneSymbol ?symbol ;
        diseasome:associatedDisease ?disease .
  FILTER(?symbol = "GAB10")
}
""",
    rationale=(
        "Highly selective equality filter over the indexed TCGA geneSymbol "
        "attribute: pushing it down collapses the large expression table to "
        "a handful of rows, so the physical-design-aware plan dominates at "
        "every network setting — the case that contradicts Heuristic 2 "
        "(Figure 2)."
    ),
    exercises=("heuristic2-contradiction", "figure2", "selective-indexed-filter"),
)

Q4 = BenchmarkQuery(
    name="Q4",
    text=PREFIXES
    + """
SELECT ?compound ?formula ?drug ?cat WHERE {
  ?compound a kegg:Compound ;
            kegg:compoundName ?cname ;
            kegg:formula ?formula .
  ?drug a drugbank:Drug ;
        drugbank:compoundName ?cname ;
        drugbank:drugName ?dname ;
        drugbank:category ?cat .
  ?entity a chebi:ChemicalEntity ;
          chebi:chebiName ?cname ;
          chebi:charge ?charge .
  FILTER(?charge >= 0)
}
""",
    rationale=(
        "Heterogeneous federation: KEGG stays a native RDF source while "
        "DrugBank and ChEBI are relational — the heuristics only apply to "
        "the relational sub-queries, and the engine joins across data "
        "models."
    ),
    exercises=("heterogeneity", "rdf-source", "mixed-model-join"),
)

Q5 = BenchmarkQuery(
    name="Q5",
    text=PREFIXES
    + """
SELECT ?patient ?age ?expr ?value WHERE {
  ?patient a tcga:Patient ;
           tcga:gender ?gender ;
           tcga:ageAtDiagnosis ?age .
  ?expr a tcga:GeneExpression ;
        tcga:patient ?patient ;
        tcga:expressionValue ?value .
  FILTER(?age > 80)
}
""",
    rationale=(
        "Large intermediate result: the unaware plan ships the whole "
        "expression table plus all patients and joins at the engine; the "
        "aware plan merges the same-endpoint stars (indexed patient FK) and "
        "pushes the range filter on the indexed age attribute — network "
        "delays amplify the difference, the paper's headline observation."
    ),
    exercises=("intermediate-result-size", "network-sensitivity", "heuristic1", "heuristic2"),
)

MOTIVATING_EXAMPLE = BenchmarkQuery(
    name="Fig1",
    text=PREFIXES
    + """
SELECT ?gene ?disease ?probe WHERE {
  ?gene a diseasome:Gene ;
        diseasome:geneSymbol ?symbol ;
        diseasome:associatedDisease ?disease .
  ?disease a diseasome:Disease ;
           diseasome:diseaseName ?dname .
  ?probe a affymetrix:Probeset ;
         affymetrix:symbol ?symbol ;
         affymetrix:scientificName ?species .
  FILTER(CONTAINS(?species, "Homo sapiens"))
}
""",
    rationale=(
        "The paper's Figure 1: genes and diseases live in one source "
        "(Diseasome) so their join can be pushed down; the species filter "
        "stays at the engine because the skewed attribute is not indexed "
        "(the 15% rule)."
    ),
    exercises=("figure1", "heuristic1", "heuristic2", "index-advisor"),
)

#: All queries by name.
BENCHMARK_QUERIES: dict[str, BenchmarkQuery] = {
    query.name: query for query in (Q1, Q2, Q3, Q4, Q5, MOTIVATING_EXAMPLE)
}

#: The paper's evaluation grid uses Q1-Q5.
GRID_QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5")
