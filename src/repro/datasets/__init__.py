"""Synthetic LSLOD data sets, benchmark queries and the lake builder."""

from .build import (
    ADVISOR_CANDIDATES,
    BENCHMARK_INDEXES,
    LakeBuildReport,
    build_lslod_lake,
    cached_lslod_lake,
    dataset_bundles,
)
from .lslod import (
    BASE_SIZES,
    DatasetBundle,
    GENERATORS,
    KNOWN_GENE_SYMBOLS,
    SPECIES,
    generate_all,
    resource,
    vocab,
)
from .queries import (
    BENCHMARK_QUERIES,
    BenchmarkQuery,
    GRID_QUERIES,
    MOTIVATING_EXAMPLE,
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
)

__all__ = [
    "ADVISOR_CANDIDATES",
    "BASE_SIZES",
    "BENCHMARK_INDEXES",
    "BENCHMARK_QUERIES",
    "BenchmarkQuery",
    "DatasetBundle",
    "GENERATORS",
    "GRID_QUERIES",
    "KNOWN_GENE_SYMBOLS",
    "LakeBuildReport",
    "MOTIVATING_EXAMPLE",
    "Q1",
    "Q2",
    "Q3",
    "Q4",
    "Q5",
    "SPECIES",
    "build_lslod_lake",
    "cached_lslod_lake",
    "dataset_bundles",
    "generate_all",
    "resource",
    "vocab",
]
