"""Exception hierarchy shared by every subsystem of the reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the library's failures without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """A query or serialization could not be parsed.

    Attributes:
        message: human readable description of the problem.
        line: 1-based line of the offending token, when known.
        column: 1-based column of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")


class SPARQLParseError(ParseError):
    """A SPARQL query string is syntactically invalid."""


class SQLParseError(ParseError):
    """A SQL statement is syntactically invalid."""


class NTriplesParseError(ParseError):
    """An N-Triples document is syntactically invalid."""


class SchemaError(ReproError):
    """A relational schema operation is invalid (duplicate table, bad column, ...)."""


class IntegrityError(ReproError):
    """A DML statement violates a declared constraint (PK duplicate, FK miss, type)."""


class CatalogError(ReproError):
    """A name could not be resolved against a database or data-lake catalog."""


class PlanningError(ReproError):
    """The optimizer could not produce an executable plan for a query."""


class SourceSelectionError(PlanningError):
    """No data source can answer some part of the query."""


class InvariantViolation(PlanningError):
    """A produced plan breaks a planner invariant (debug-validate mode).

    Attributes:
        violations: one human-readable description per broken invariant.
    """

    def __init__(self, violations: list[str]):
        self.violations = list(violations)
        summary = "; ".join(self.violations) or "unknown planner invariant violation"
        super().__init__(f"plan violates {len(self.violations)} invariant(s): {summary}")


class TranslationError(ReproError):
    """A star-shaped sub-query could not be translated to the source's language."""


class ExecutionError(ReproError):
    """A plan failed while executing."""


class WrapperError(ExecutionError):
    """A source wrapper failed to evaluate its sub-query."""


class ExpressionError(ExecutionError):
    """A filter expression could not be evaluated over a solution mapping."""
