"""Benchmark harness: the paper's experiment grid, traces and reporting."""

from .metrics import (
    answer_set,
    answers_at,
    completeness,
    dief_at_k,
    dief_at_t,
    same_answers,
    solution_key,
    time_to_first_answer,
    total_answers,
)
from .report import (
    describe_result,
    format_table,
    grid_table,
    network_impact_table,
    speedup_table,
    to_csv,
    to_json,
)
from .runner import (
    Configuration,
    GridResults,
    RunResult,
    experiment_grid,
    run_grid,
    run_query,
)
from .traces import TracePlot, TraceSeries, downsample

__all__ = [
    "Configuration",
    "GridResults",
    "RunResult",
    "TracePlot",
    "TraceSeries",
    "answer_set",
    "answers_at",
    "completeness",
    "describe_result",
    "dief_at_k",
    "dief_at_t",
    "downsample",
    "experiment_grid",
    "format_table",
    "grid_table",
    "network_impact_table",
    "run_grid",
    "run_query",
    "same_answers",
    "solution_key",
    "speedup_table",
    "time_to_first_answer",
    "to_csv",
    "to_json",
    "total_answers",
]
