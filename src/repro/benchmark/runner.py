"""The experiment runner: the paper's 8-configuration grid.

The experiment "conducts of eight different configurations in total, i.e.,
both QEP types are evaluated using all four simulated network conditions".
:func:`run_grid` executes any set of queries over that grid (or a custom
one) and returns structured results the reporting module renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.engine import FederatedEngine
from ..core.policy import PlanPolicy
from ..datalake.lake import SemanticDataLake
from ..federation.answers import ExecutionStats
from ..network.costmodel import CostModel
from ..network.delays import NetworkSetting
from ..datasets.queries import BenchmarkQuery


@dataclass(frozen=True)
class Configuration:
    """One cell of the experiment grid."""

    policy: PlanPolicy
    network: NetworkSetting
    #: Execution runtime ("sequential", "event", or "thread"); kept out of
    #: the label unless it deviates from the historical default.
    runtime: str = "sequential"
    #: Data plane ("row" or "batch"); virtual-time results are identical
    #: either way, so the axis only changes wall-clock cost of the run.
    exec: str = "row"

    @property
    def label(self) -> str:
        base = f"{self.policy.name} / {self.network.name}"
        if self.runtime != "sequential":
            base += f" / {self.runtime}"
        if self.exec != "row":
            base += f" / {self.exec}"
        return base


def experiment_grid(
    policies: Sequence[PlanPolicy] | None = None,
    networks: Sequence[NetworkSetting] | None = None,
    runtime: str = "sequential",
    exec: str = "row",
) -> list[Configuration]:
    """The default grid: {aware, unaware} x four network settings."""
    policies = policies or (
        PlanPolicy.physical_design_unaware(),
        PlanPolicy.physical_design_aware(),
    )
    networks = networks or NetworkSetting.all_settings()
    return [
        Configuration(policy, network, runtime=runtime, exec=exec)
        for policy in policies
        for network in networks
    ]


@dataclass
class RunResult:
    """Measurements of one (query, configuration) execution."""

    query: str
    policy: str
    network: str
    answers: int
    execution_time: float
    time_to_first_answer: float | None
    messages: int
    engine_cost: float
    trace: list[tuple[float, int]] = field(default_factory=list)
    #: The run's :class:`~repro.obs.RunObservation` when the grid was run
    #: with ``observe=True``; None otherwise.  Deliberately excluded from
    #: the CSV/JSON reports — export it via its own exporters instead.
    observation: object | None = None

    @property
    def throughput(self) -> float:
        if self.execution_time <= 0:
            return 0.0
        return self.answers / self.execution_time


@dataclass
class GridResults:
    """All results of one grid run, with lookup helpers."""

    results: list[RunResult] = field(default_factory=list)

    def add(self, result: RunResult) -> None:
        self.results.append(result)

    def lookup(self, query: str, policy: str, network: str) -> RunResult:
        for result in self.results:
            if (
                result.query == query
                and result.policy == policy
                and result.network == network
            ):
                return result
        raise KeyError((query, policy, network))

    def queries(self) -> list[str]:
        seen: list[str] = []
        for result in self.results:
            if result.query not in seen:
                seen.append(result.query)
        return seen

    def policies(self) -> list[str]:
        seen: list[str] = []
        for result in self.results:
            if result.policy not in seen:
                seen.append(result.policy)
        return seen

    def networks(self) -> list[str]:
        seen: list[str] = []
        for result in self.results:
            if result.network not in seen:
                seen.append(result.network)
        return seen

    def slowdown(self, query: str, policy: str, baseline_network: str, network: str) -> float:
        """Execution-time factor of *network* relative to *baseline_network*."""
        base = self.lookup(query, policy, baseline_network).execution_time
        other = self.lookup(query, policy, network).execution_time
        if base <= 0:
            return float("inf")
        return other / base

    def speedup(self, query: str, network: str, slow_policy: str, fast_policy: str) -> float:
        """How much faster *fast_policy* is than *slow_policy*."""
        slow = self.lookup(query, slow_policy, network).execution_time
        fast = self.lookup(query, fast_policy, network).execution_time
        if fast <= 0:
            return float("inf")
        return slow / fast


def run_query(
    lake: SemanticDataLake,
    query: BenchmarkQuery | str,
    configuration: Configuration,
    seed: int = 7,
    cost_model: CostModel | None = None,
    observe: bool = False,
) -> RunResult:
    """Execute one query under one configuration.

    With ``observe=True`` the run carries a full observation (trace bus,
    per-operator profiles, metrics) attached to the result — virtual
    timings are unchanged, so observed grids stay comparable to plain ones.
    """
    text = query.text if isinstance(query, BenchmarkQuery) else query
    name = query.name if isinstance(query, BenchmarkQuery) else "query"
    engine = FederatedEngine(
        lake,
        policy=configuration.policy,
        network=configuration.network,
        cost_model=cost_model,
        runtime=configuration.runtime,
        exec=configuration.exec,
    )
    stream = engine.execute(text, seed=seed, observe=observe)
    answers = stream.collect()
    result = _to_result(name, configuration, len(answers), stream.stats)
    result.observation = stream.observation
    return result


def _to_result(
    name: str, configuration: Configuration, count: int, stats: ExecutionStats
) -> RunResult:
    return RunResult(
        query=name,
        policy=configuration.policy.name,
        network=configuration.network.name,
        answers=count,
        execution_time=stats.execution_time,
        time_to_first_answer=stats.time_to_first_answer,
        messages=stats.messages,
        engine_cost=stats.engine_cost,
        trace=list(stats.trace),
    )


def run_grid(
    lake: SemanticDataLake,
    queries: Iterable[BenchmarkQuery],
    configurations: Sequence[Configuration] | None = None,
    seed: int = 7,
    cost_model: CostModel | None = None,
    runtime: str = "sequential",
    exec: str = "row",
    observe: bool = False,
) -> GridResults:
    """Run every query under every configuration (the paper's experiment)."""
    configurations = configurations or experiment_grid(runtime=runtime, exec=exec)
    grid = GridResults()
    for query in queries:
        for configuration in configurations:
            grid.add(
                run_query(
                    lake,
                    query,
                    configuration,
                    seed=seed,
                    cost_model=cost_model,
                    observe=observe,
                )
            )
    return grid
