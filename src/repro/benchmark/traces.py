"""Answer traces — the material of the paper's Figure 2.

An answer trace is the list of (timestamp, answers-so-far) pairs recorded
while a query streams.  This module renders traces as ASCII plots (the
repository is terminal-first) and exports them as CSV series for external
plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

Trace = list[tuple[float, int]]


@dataclass
class TraceSeries:
    """One labelled answer trace."""

    label: str
    trace: Trace

    @property
    def final_time(self) -> float:
        return self.trace[-1][0] if self.trace else 0.0

    @property
    def final_count(self) -> int:
        return self.trace[-1][1] if self.trace else 0

    def count_at(self, timestamp: float) -> int:
        produced = 0
        for when, count in self.trace:
            if when <= timestamp:
                produced = count
            else:
                break
        return produced


@dataclass
class TracePlot:
    """A collection of answer traces plotted on a shared time axis."""

    title: str
    series: list[TraceSeries] = field(default_factory=list)

    def add(self, label: str, trace: Trace) -> None:
        self.series.append(TraceSeries(label, list(trace)))

    def render_ascii(self, width: int = 72, height: int = 18) -> str:
        """Render the traces as an ASCII chart (answers over seconds)."""
        if not self.series or all(not s.trace for s in self.series):
            return f"{self.title}\n(no answers)"
        max_time = max(s.final_time for s in self.series) or 1e-9
        max_count = max(s.final_count for s in self.series) or 1
        markers = "*o+x#@%&"
        canvas = [[" "] * width for __ in range(height)]
        for index, series in enumerate(self.series):
            marker = markers[index % len(markers)]
            for when, count in series.trace:
                column = min(width - 1, int(when / max_time * (width - 1)))
                row = min(height - 1, int(count / max_count * (height - 1)))
                canvas[height - 1 - row][column] = marker
        lines = [self.title]
        axis_label = f"{max_count} answers"
        lines.append(axis_label)
        for row in canvas:
            lines.append("|" + "".join(row))
        lines.append("+" + "-" * width)
        lines.append(f" 0{' ' * (width - 12)}{max_time:.3f}s")
        for index, series in enumerate(self.series):
            marker = markers[index % len(markers)]
            lines.append(
                f"  [{marker}] {series.label}: {series.final_count} answers "
                f"in {series.final_time:.3f}s"
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Long-format CSV: label,time,answers."""
        lines = ["label,time,answers"]
        for series in self.series:
            for when, count in series.trace:
                lines.append(f"{series.label},{when:.6f},{count}")
        return "\n".join(lines)

    @classmethod
    def from_csv(cls, text: str, title: str = "") -> "TracePlot":
        """Rebuild a plot from :meth:`to_csv` output (round-trip import).

        Labels may themselves contain commas (they are the *first* field),
        so rows are split from the right.  Timestamps round-trip at the
        exporter's six-decimal precision.
        """
        plot = cls(title)
        current: TraceSeries | None = None
        for line_number, line in enumerate(text.strip().splitlines()):
            if line_number == 0:
                if line.strip() != "label,time,answers":
                    raise ValueError(f"unrecognized trace CSV header: {line.strip()!r}")
                continue
            if not line.strip():
                continue
            try:
                label, when, count = line.rsplit(",", 2)
                entry = (float(when), int(count))
            except ValueError as exc:
                raise ValueError(
                    f"malformed trace CSV row {line_number + 1}: {line!r}"
                ) from exc
            if current is None or current.label != label:
                current = TraceSeries(label, [])
                plot.series.append(current)
            current.trace.append(entry)
        return plot


def downsample(trace: Trace, points: int = 200) -> Trace:
    """Thin a long trace to at most *points* entries (keeping endpoints)."""
    if len(trace) <= points:
        return list(trace)
    step = len(trace) / points
    sampled = [trace[int(index * step)] for index in range(points)]
    if sampled[-1] != trace[-1]:
        sampled.append(trace[-1])
    return sampled
