"""Heuristic scorecards: did taking H1/H2 actually pay off?

The planner logs every Heuristic-1 merge and Heuristic-2 filter placement
it considers, and different policies resolve the *same* decision subject
differently (the aware policy merges a star pair the unaware policy keeps
separate).  This module sweeps a workload (queries × networks × policies),
then — per decision subject and per (query, network) cell — compares the
best execution that **took** the decision against the best one that
**declined** it: virtual-time delta, dief@t delta (answer-streaming area,
computed over a common window), and a win/loss verdict.  Aggregated per
heuristic, this is the paper's claim as a continuously-checkable report:
physical-design-aware decisions should win, and win biggest on slow
networks.

Everything is driven by virtual clocks and seeded delays, so a scorecard
for a fixed (lake, seed) is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.engine import FederatedEngine
from ..core.policy import PlanPolicy
from ..datalake.lake import SemanticDataLake
from ..datasets.queries import BenchmarkQuery
from ..network.delays import NetworkSetting
from .metrics import dief_at_t

#: Relative tolerance under which two virtual times count as a tie.
TIE_RTOL = 1e-9


def default_policies() -> list[PlanPolicy]:
    """The five base policies of the differential matrix."""
    return [
        PlanPolicy.physical_design_aware(),
        PlanPolicy.physical_design_unaware(),
        PlanPolicy.heuristic2(),
        PlanPolicy.filters_at_source(),
        PlanPolicy.dependent_join(),
    ]


@dataclass
class SweepCell:
    """One (query, policy, network) execution plus its plan's decisions."""

    query: str
    policy: str
    network: str
    runtime: str
    answers: int
    execution_time: float
    trace: list[tuple[float, int]]
    #: (heuristic, subject, taken) triples from the plan's decision log.
    decisions: list[tuple[str, str, bool]]


@dataclass
class DecisionOutcome:
    """One decision subject in one (query, network) cell: taken vs declined.

    ``taken_policy``/``declined_policy`` are the fastest representatives of
    each side; deltas are *declined − taken* for time (positive = taking
    the heuristic won) and *taken − declined* for dief@t (positive = the
    taking plan streamed more answer-area in the common window).
    """

    query: str
    network: str
    runtime: str
    heuristic: str  # "H1" | "H2"
    subject: str
    taken_policy: str
    declined_policy: str
    time_taken: float
    time_declined: float
    dief_taken: float
    dief_declined: float

    @property
    def time_delta(self) -> float:
        return self.time_declined - self.time_taken

    @property
    def dief_delta(self) -> float:
        return self.dief_taken - self.dief_declined

    @property
    def verdict(self) -> str:
        scale = max(abs(self.time_taken), abs(self.time_declined), 1e-12)
        if abs(self.time_delta) <= TIE_RTOL * scale:
            return "tie"
        return "win" if self.time_delta > 0 else "loss"

    def describe(self) -> str:
        return (
            f"[{self.query} × {self.network}] {self.subject}: {self.verdict} — "
            f"taken({self.taken_policy}) {self.time_taken:.4f}s vs "
            f"declined({self.declined_policy}) {self.time_declined:.4f}s, "
            f"Δtime={self.time_delta:+.4f}s Δdief@t={self.dief_delta:+.4f}"
        )


@dataclass
class HeuristicSummary:
    """Aggregated win/loss record of one heuristic across the sweep."""

    heuristic: str
    wins: int = 0
    losses: int = 0
    ties: int = 0
    total_time_delta: float = 0.0
    total_dief_delta: float = 0.0

    @property
    def considered(self) -> int:
        return self.wins + self.losses + self.ties

    @property
    def mean_time_delta(self) -> float:
        return self.total_time_delta / self.considered if self.considered else 0.0

    @property
    def mean_dief_delta(self) -> float:
        return self.total_dief_delta / self.considered if self.considered else 0.0


@dataclass
class Scorecard:
    """The full report: sweep cells, per-decision outcomes, summaries."""

    runtime: str
    seed: int
    cells: list[SweepCell] = field(default_factory=list)
    outcomes: list[DecisionOutcome] = field(default_factory=list)

    # -- aggregations --------------------------------------------------------

    def heuristic_summaries(self) -> dict[str, HeuristicSummary]:
        summaries = {
            "H1": HeuristicSummary("H1"),
            "H2": HeuristicSummary("H2"),
        }
        for outcome in self.outcomes:
            summary = summaries[outcome.heuristic]
            if outcome.verdict == "win":
                summary.wins += 1
            elif outcome.verdict == "loss":
                summary.losses += 1
            else:
                summary.ties += 1
            summary.total_time_delta += outcome.time_delta
            summary.total_dief_delta += outcome.dief_delta
        return summaries

    def networks(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.network not in seen:
                seen.append(cell.network)
        return seen

    def queries(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.query not in seen:
                seen.append(cell.query)
        return seen

    def cell(self, query: str, policy: str, network: str) -> SweepCell:
        for candidate in self.cells:
            if (
                candidate.query == query
                and candidate.policy == policy
                and candidate.network == network
            ):
                return candidate
        raise KeyError((query, policy, network))

    def policy_mean_time(self, policy: str, network: str) -> float:
        times = [
            cell.execution_time
            for cell in self.cells
            if cell.policy == policy and cell.network == network
        ]
        if not times:
            raise KeyError((policy, network))
        return sum(times) / len(times)

    def dominance(self, slow_policy: str, fast_policy: str) -> dict[str, tuple[int, int]]:
        """Per network: on how many queries *fast_policy* beat *slow_policy*
        (faster-query-count, total-query-count) — the paper's headline read."""
        record: dict[str, tuple[int, int]] = {}
        for network in self.networks():
            faster = total = 0
            for query in self.queries():
                try:
                    slow = self.cell(query, slow_policy, network).execution_time
                    fast = self.cell(query, fast_policy, network).execution_time
                except KeyError:
                    continue
                total += 1
                if fast < slow:
                    faster += 1
            record[network] = (faster, total)
        return record

    # -- renderings ----------------------------------------------------------

    def render(self, per_decision: bool = True) -> str:
        lines = [f"Plan-quality scorecard (runtime={self.runtime}, seed={self.seed})"]
        policies: list[str] = []
        for cell in self.cells:
            if cell.policy not in policies:
                policies.append(cell.policy)
        networks = self.networks()
        lines.append("")
        lines.append("Mean virtual execution time (s) by policy × network:")
        width = max(len(policy) for policy in policies) if policies else 8
        header = "  " + " " * width + "".join(f"  {network:>14}" for network in networks)
        lines.append(header)
        for policy in policies:
            row = f"  {policy:<{width}}"
            for network in networks:
                row += f"  {self.policy_mean_time(policy, network):>14.4f}"
            lines.append(row)
        lines.append("")
        for heuristic, title in (
            ("H1", "Heuristic 1 (join push-down)"),
            ("H2", "Heuristic 2 (filter placement)"),
        ):
            summary = self.heuristic_summaries()[heuristic]
            lines.append(
                f"{title}: {summary.wins} wins, {summary.losses} losses, "
                f"{summary.ties} ties | mean Δtime {summary.mean_time_delta:+.4f}s | "
                f"mean Δdief@t {summary.mean_dief_delta:+.4f}"
            )
            if per_decision:
                for outcome in self.outcomes:
                    if outcome.heuristic == heuristic:
                        lines.append(f"  {outcome.describe()}")
            if not any(outcome.heuristic == heuristic for outcome in self.outcomes):
                lines.append("  (no decision subject was both taken and declined)")
        if "Physical-Design-Aware" in policies and "Physical-Design-Unaware" in policies:
            lines.append("")
            lines.append("Aware vs unaware (queries where aware is faster):")
            dominance = self.dominance("Physical-Design-Unaware", "Physical-Design-Aware")
            for network, (faster, total) in dominance.items():
                lines.append(f"  {network}: {faster}/{total}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        summaries = self.heuristic_summaries()
        return {
            "runtime": self.runtime,
            "seed": self.seed,
            "cells": [
                {
                    "query": cell.query,
                    "policy": cell.policy,
                    "network": cell.network,
                    "answers": cell.answers,
                    "execution_time": cell.execution_time,
                }
                for cell in self.cells
            ],
            "outcomes": [
                {
                    "query": outcome.query,
                    "network": outcome.network,
                    "heuristic": outcome.heuristic,
                    "subject": outcome.subject,
                    "taken_policy": outcome.taken_policy,
                    "declined_policy": outcome.declined_policy,
                    "time_taken": outcome.time_taken,
                    "time_declined": outcome.time_declined,
                    "time_delta": outcome.time_delta,
                    "dief_taken": outcome.dief_taken,
                    "dief_declined": outcome.dief_declined,
                    "dief_delta": outcome.dief_delta,
                    "verdict": outcome.verdict,
                }
                for outcome in self.outcomes
            ],
            "heuristics": {
                name: {
                    "wins": summary.wins,
                    "losses": summary.losses,
                    "ties": summary.ties,
                    "mean_time_delta": summary.mean_time_delta,
                    "mean_dief_delta": summary.mean_dief_delta,
                }
                for name, summary in summaries.items()
            },
        }


def _plan_decisions(engine: FederatedEngine, text: str) -> list[tuple[str, str, bool]]:
    plan = engine.plan(text)
    decisions = [
        ("H1", f"{merge.star_a} + {merge.star_b}", merge.merged)
        for merge in plan.merge_decisions
    ]
    decisions.extend(
        ("H2", f"[{source_id}] {placement.filter.n3()}", placement.pushed)
        for source_id, placement in plan.filter_decisions
    )
    return decisions


def run_scorecard(
    lake: SemanticDataLake,
    queries: Sequence[BenchmarkQuery],
    policies: Sequence[PlanPolicy] | None = None,
    networks: Sequence[NetworkSetting] | None = None,
    runtime: str = "sequential",
    seed: int = 7,
) -> Scorecard:
    """Sweep queries × networks × policies and score every heuristic decision.

    For each decision subject that at least one policy took and at least
    one declined (within the same query × network cell), the fastest
    representative of each side is compared; dief@t uses the common window
    ``t = max(both execution times)`` so the slower plan's full trace
    counts.
    """
    policies = list(policies) if policies is not None else default_policies()
    networks = list(networks) if networks is not None else NetworkSetting.all_settings()
    card = Scorecard(runtime=runtime, seed=seed)
    for query in queries:
        text = query.text if isinstance(query, BenchmarkQuery) else str(query)
        name = query.name if isinstance(query, BenchmarkQuery) else "query"
        for network in networks:
            group: list[SweepCell] = []
            for policy in policies:
                engine = FederatedEngine(
                    lake, policy=policy, network=network, runtime=runtime
                )
                answers, stats = engine.run(text, seed=seed)
                cell = SweepCell(
                    query=name,
                    policy=policy.name,
                    network=network.name,
                    runtime=runtime,
                    answers=len(answers),
                    execution_time=stats.execution_time,
                    trace=list(stats.trace),
                    decisions=_plan_decisions(engine, text),
                )
                group.append(cell)
                card.cells.append(cell)
            card.outcomes.extend(_score_group(group, runtime))
    return card


def _score_group(group: list[SweepCell], runtime: str) -> list[DecisionOutcome]:
    """Score every decision subject of one (query, network) cell group."""
    subjects: list[tuple[str, str]] = []
    for cell in group:
        for heuristic, subject, __ in cell.decisions:
            if (heuristic, subject) not in subjects:
                subjects.append((heuristic, subject))
    outcomes: list[DecisionOutcome] = []
    for heuristic, subject in subjects:
        taken = [
            cell
            for cell in group
            if (heuristic, subject, True) in cell.decisions
        ]
        declined = [
            cell
            for cell in group
            if (heuristic, subject, False) in cell.decisions
        ]
        if not taken or not declined:
            continue
        best_taken = min(taken, key=lambda cell: cell.execution_time)
        best_declined = min(declined, key=lambda cell: cell.execution_time)
        window = max(best_taken.execution_time, best_declined.execution_time)
        outcomes.append(
            DecisionOutcome(
                query=best_taken.query,
                network=best_taken.network,
                runtime=runtime,
                heuristic=heuristic,
                subject=subject,
                taken_policy=best_taken.policy,
                declined_policy=best_declined.policy,
                time_taken=best_taken.execution_time,
                time_declined=best_declined.execution_time,
                dief_taken=dief_at_t(best_taken.trace, window),
                dief_declined=dief_at_t(best_declined.trace, window),
            )
        )
    return outcomes
