"""Plan-quality baseline store and regression gate.

``repro bench snapshot`` runs the full plan-quality grid — queries ×
policies × networks × runtimes — and writes one canonical JSON document
(``BENCH_plan_quality.json``) holding, per cell: virtual execution time,
answer count, time to first answer, dief@t / dief@k, every operator's
(estimate, actual) cardinality pair and the q-error summary.  The file is
committed; ``repro bench check`` rebuilds the exact same lake (scale and
seeds are stored in the file), re-runs the grid, and compares cell by cell
under configurable relative/absolute thresholds, exiting nonzero with a
per-cell diff on drift.  Because every quantity is virtual-clock-derived
and seeded, a clean tree reproduces the baseline bit-for-bit — any diff is
a real behaviour change, not machine noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from ..core.engine import FederatedEngine
from ..core.policy import PlanPolicy
from ..datalake.lake import SemanticDataLake
from ..network.delays import NetworkSetting
from .metrics import dief_at_k, dief_at_t

BASELINE_KIND = "repro-plan-quality-baseline"
BASELINE_VERSION = 1

#: Canonical short names for the grid axes (shared with the CLI).
POLICY_CHOICES = {
    "aware": PlanPolicy.physical_design_aware,
    "unaware": PlanPolicy.physical_design_unaware,
    "heuristic2": PlanPolicy.heuristic2,
    "source": PlanPolicy.filters_at_source,
    "triple": PlanPolicy.triple_wise,
    "dependent": PlanPolicy.dependent_join,
    "cost": PlanPolicy.cost,
}

NETWORK_CHOICES = {
    "nodelay": NetworkSetting.no_delay,
    "gamma1": NetworkSetting.gamma1,
    "gamma2": NetworkSetting.gamma2,
    "gamma3": NetworkSetting.gamma3,
}

#: The default plan-quality grid (the committed baseline's axes).
DEFAULT_QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5")
DEFAULT_POLICIES = ("aware", "unaware", "heuristic2", "source", "dependent")
DEFAULT_NETWORKS = ("nodelay", "gamma1", "gamma2", "gamma3")
DEFAULT_RUNTIMES = ("sequential", "event", "thread")


def cell_key(query: str, policy: str, network: str, runtime: str) -> str:
    return f"{query}|{policy}|{network}|{runtime}"


def measure_cell(
    lake: SemanticDataLake,
    query_text: str,
    policy: PlanPolicy,
    network: NetworkSetting,
    runtime: str,
    seed: int,
    exec: str = "row",
) -> dict:
    """Execute one grid cell observed and distill its plan-quality record."""
    engine = FederatedEngine(
        lake, policy=policy, network=network, runtime=runtime, exec=exec
    )
    answers, stats, report = engine.analyze(query_text, seed=seed, runtime=runtime)
    trace = list(stats.trace)
    return {
        "answers": len(answers),
        "execution_time": stats.execution_time,
        "time_to_first_answer": stats.time_to_first_answer,
        "dief_t": dief_at_t(trace, stats.execution_time),
        "dief_k": dief_at_k(trace, len(answers)) if answers else None,
        "operators": [
            [op.label, op.estimated_rows, op.actual_rows] for op in report.operators
        ],
        "q_error_max": report.max_q_error,
        "q_error_mean": report.mean_q_error,
    }


def build_baseline(
    lake: SemanticDataLake,
    query_texts: dict[str, str],
    scale: float,
    data_seed: int,
    run_seed: int = 7,
    policies: Sequence[str] = DEFAULT_POLICIES,
    networks: Sequence[str] = DEFAULT_NETWORKS,
    runtimes: Sequence[str] = DEFAULT_RUNTIMES,
    exec: str = "row",
) -> dict:
    """Measure the whole grid and assemble the canonical baseline document.

    *query_texts* maps query names to SPARQL text; *scale*/*data_seed* are
    recorded so ``check`` can rebuild the identical lake.  *exec* selects
    the data plane; since row and batch execution are bit-identical in
    virtual time, a baseline snapshotted under one plane must check clean
    under the other — which is exactly how the CI gate exercises the
    batch engine against the committed row-mode numbers.
    """
    cells: dict[str, dict] = {}
    for query_name, text in query_texts.items():
        for policy_name in policies:
            policy = POLICY_CHOICES[policy_name]()
            for network_name in networks:
                network = NETWORK_CHOICES[network_name]()
                for runtime in runtimes:
                    cells[cell_key(query_name, policy_name, network_name, runtime)] = (
                        measure_cell(
                            lake, text, policy, network, runtime, run_seed, exec=exec
                        )
                    )
    return {
        "kind": BASELINE_KIND,
        "version": BASELINE_VERSION,
        "scale": scale,
        "data_seed": data_seed,
        "run_seed": run_seed,
        "queries": sorted(query_texts),
        "policies": list(policies),
        "networks": list(networks),
        "runtimes": list(runtimes),
        "exec": exec,
        "cells": cells,
    }


def baseline_json(payload: dict) -> str:
    """The canonical serialization (sorted keys, 2-space indent)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(baseline_json(payload))


def load_baseline(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("kind") != BASELINE_KIND:
        raise ValueError(f"{path}: not a plan-quality baseline (kind={payload.get('kind')!r})")
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: baseline version {payload.get('version')!r} != "
            f"supported {BASELINE_VERSION}"
        )
    return payload


@dataclass(frozen=True)
class Thresholds:
    """Allowed drift before a cell counts as a regression.

    Counts (answers, per-operator cardinalities, estimates) are always
    compared exactly — they are integers of the deterministic semantics.
    Times and diefficiency get a relative + absolute corridor; since
    virtual timelines are seeded and deterministic, the defaults are tight
    and exist mainly so an intentional cost-model tweak can be rolled out
    by loosening them explicitly rather than editing the comparator.
    """

    rel_time: float = 0.01
    abs_time: float = 1e-9
    rel_dief: float = 0.01
    abs_dief: float = 1e-9

    def time_ok(self, baseline: float, fresh: float) -> bool:
        return abs(fresh - baseline) <= self.abs_time + self.rel_time * abs(baseline)

    def dief_ok(self, baseline: float, fresh: float) -> bool:
        return abs(fresh - baseline) <= self.abs_dief + self.rel_dief * abs(baseline)


@dataclass
class CellDiff:
    """One divergence between the committed baseline and a fresh run."""

    key: str
    quantity: str
    baseline: object
    fresh: object
    detail: str = ""

    def describe(self) -> str:
        line = f"{self.key} {self.quantity}: baseline {self.baseline!r} -> fresh {self.fresh!r}"
        if self.detail:
            line += f" ({self.detail})"
        return line


@dataclass
class ComparisonReport:
    """Every diff of one baseline comparison, renderable as the CI artifact."""

    diffs: list[CellDiff] = field(default_factory=list)
    cells_compared: int = 0
    thresholds: Thresholds = field(default_factory=Thresholds)

    @property
    def ok(self) -> bool:
        return not self.diffs

    def render(self) -> str:
        if self.ok:
            return (
                f"plan-quality baseline OK: {self.cells_compared} cells match "
                f"(rel_time={self.thresholds.rel_time:g}, "
                f"rel_dief={self.thresholds.rel_dief:g})"
            )
        lines = [
            f"plan-quality baseline DRIFT: {len(self.diffs)} differences across "
            f"{self.cells_compared} compared cells "
            f"(rel_time={self.thresholds.rel_time:g}, rel_dief={self.thresholds.rel_dief:g})"
        ]
        lines.extend(f"  {diff.describe()}" for diff in self.diffs)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "cells_compared": self.cells_compared,
            "thresholds": {
                "rel_time": self.thresholds.rel_time,
                "abs_time": self.thresholds.abs_time,
                "rel_dief": self.thresholds.rel_dief,
                "abs_dief": self.thresholds.abs_dief,
            },
            "diffs": [
                {
                    "key": diff.key,
                    "quantity": diff.quantity,
                    "baseline": diff.baseline,
                    "fresh": diff.fresh,
                    "detail": diff.detail,
                }
                for diff in self.diffs
            ],
        }


def _relative_drift(baseline: float, fresh: float) -> str:
    if baseline:
        return f"{(fresh - baseline) / baseline:+.2%}"
    return f"{fresh - baseline:+g} abs"


def compare_cell(
    key: str, baseline: dict, fresh: dict, thresholds: Thresholds
) -> list[CellDiff]:
    diffs: list[CellDiff] = []
    if baseline["answers"] != fresh["answers"]:
        diffs.append(
            CellDiff(key, "answers", baseline["answers"], fresh["answers"], "exact match required")
        )
    base_ops = [tuple(op) for op in baseline["operators"]]
    fresh_ops = [tuple(op) for op in fresh["operators"]]
    if base_ops != fresh_ops:
        changed = [
            f"{b[0]}: est {b[1]}->{f[1]} rows {b[2]}->{f[2]}"
            for b, f in zip(base_ops, fresh_ops)
            if b != f
        ]
        if len(base_ops) != len(fresh_ops):
            changed.append(f"operator count {len(base_ops)} -> {len(fresh_ops)}")
        diffs.append(
            CellDiff(
                key,
                "operators",
                len(base_ops),
                len(fresh_ops),
                "; ".join(changed) or "plan shape changed",
            )
        )
    for quantity, check in (
        ("execution_time", thresholds.time_ok),
        ("time_to_first_answer", thresholds.time_ok),
        ("dief_t", thresholds.dief_ok),
        ("dief_k", thresholds.dief_ok),
        ("q_error_max", thresholds.dief_ok),
        ("q_error_mean", thresholds.dief_ok),
    ):
        base_value, fresh_value = baseline[quantity], fresh[quantity]
        if base_value is None or fresh_value is None:
            if base_value != fresh_value:
                diffs.append(CellDiff(key, quantity, base_value, fresh_value, "null vs value"))
            continue
        if not check(base_value, fresh_value):
            diffs.append(
                CellDiff(
                    key,
                    quantity,
                    base_value,
                    fresh_value,
                    f"{_relative_drift(base_value, fresh_value)} drift beyond tolerance",
                )
            )
    return diffs


def compare_baselines(
    baseline: dict, fresh: dict, thresholds: Thresholds | None = None
) -> ComparisonReport:
    """Cell-by-cell comparison of two baseline documents (either direction
    of drift fails — a speedup also invalidates the committed file and
    should be re-snapshotted deliberately)."""
    thresholds = thresholds or Thresholds()
    report = ComparisonReport(thresholds=thresholds)
    base_cells: dict[str, dict] = baseline["cells"]
    fresh_cells: dict[str, dict] = fresh["cells"]
    for key in sorted(base_cells.keys() | fresh_cells.keys()):
        if key not in fresh_cells:
            report.diffs.append(CellDiff(key, "cell", "present", "missing", "cell not re-run"))
            continue
        if key not in base_cells:
            report.diffs.append(
                CellDiff(key, "cell", "missing", "present", "cell absent from baseline")
            )
            continue
        report.cells_compared += 1
        report.diffs.extend(compare_cell(key, base_cells[key], fresh_cells[key], thresholds))
    return report
