"""Metrics over execution results.

Besides total execution time the streaming-query literature (ANAPSID,
MULDER, Ontario) reports *diefficiency*: how continuously answers are
produced.  ``dief@t`` is the area under the answer trace up to time *t* —
larger is better.  Completeness compares produced answers against a
reference answer set.
"""

from __future__ import annotations

from ..federation.answers import Solution

Trace = list[tuple[float, int]]


def time_to_first_answer(trace: Trace) -> float | None:
    """Timestamp of the first answer, or None when no answer arrived."""
    return trace[0][0] if trace else None


def total_answers(trace: Trace) -> int:
    return trace[-1][1] if trace else 0


def answers_at(trace: Trace, timestamp: float) -> int:
    """Answers produced up to *timestamp* (inclusive)."""
    produced = 0
    for when, count in trace:
        if when <= timestamp:
            produced = count
        else:
            break
    return produced


def dief_at_t(trace: Trace, t: float) -> float:
    """Area under the answer trace in [0, t] (dief@t; higher = better)."""
    area = 0.0
    previous_time = 0.0
    previous_count = 0
    for when, count in trace:
        if when > t:
            break
        area += previous_count * (when - previous_time)
        previous_time, previous_count = when, count
    area += previous_count * max(0.0, t - previous_time)
    return area


def dief_at_k(trace: Trace, k: int) -> float | None:
    """Time needed to produce the first *k* answers (dief@k); None if fewer."""
    for when, count in trace:
        if count >= k:
            return when
    return None


def solution_key(solution: Solution) -> tuple:
    """A hashable canonical key of one solution mapping."""
    return tuple(sorted((name, term.n3()) for name, term in solution.items()))


def answer_set(solutions: list[Solution]) -> set[tuple]:
    return {solution_key(solution) for solution in solutions}


def completeness(produced: list[Solution], reference: list[Solution]) -> float:
    """Fraction of the reference answer set present in *produced*."""
    reference_set = answer_set(reference)
    if not reference_set:
        return 1.0
    produced_set = answer_set(produced)
    return len(produced_set & reference_set) / len(reference_set)


def same_answers(left: list[Solution], right: list[Solution]) -> bool:
    """True when both executions produced the same answer *sets*."""
    return answer_set(left) == answer_set(right)
