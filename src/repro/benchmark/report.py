"""Rendering of experiment results: text tables, CSV and JSON."""

from __future__ import annotations

import json
from typing import Sequence

from .runner import GridResults, RunResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = [[str(header)] for header in headers]
    for row in rows:
        for position, value in enumerate(row):
            columns[position].append(str(value))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(str(value).ljust(w) for value, w in zip(row, widths))
        )
    return "\n".join(lines)


def grid_table(grid: GridResults, metric: str = "execution_time") -> str:
    """The paper's results table: queries x (policy, network) cells."""
    networks = grid.networks()
    policies = grid.policies()
    headers = ["Query"] + [
        f"{policy.split('-')[-1]}/{network}" for policy in policies for network in networks
    ]
    rows = []
    for query in grid.queries():
        row: list[object] = [query]
        for policy in policies:
            for network in networks:
                result = grid.lookup(query, policy, network)
                value = getattr(result, metric)
                if isinstance(value, float):
                    row.append(f"{value:.4f}")
                else:
                    row.append(value)
        rows.append(row)
    return format_table(headers, rows)


def speedup_table(grid: GridResults, slow_policy: str, fast_policy: str) -> str:
    """Speedup of *fast_policy* over *slow_policy* per query and network."""
    networks = grid.networks()
    headers = ["Query"] + networks
    rows = []
    for query in grid.queries():
        row: list[object] = [query]
        for network in networks:
            row.append(f"{grid.speedup(query, network, slow_policy, fast_policy):.2f}x")
        rows.append(row)
    return format_table(headers, rows)


def network_impact_table(grid: GridResults, baseline: str = "No Delay") -> str:
    """Slowdown per network relative to *baseline*, per policy and query.

    Reproduces the finding that "the impact of network delays is higher in
    the case of physical-design-unaware query execution plans".
    """
    networks = [network for network in grid.networks() if network != baseline]
    headers = ["Query", "Policy"] + [f"{network} vs {baseline}" for network in networks]
    rows = []
    for query in grid.queries():
        for policy in grid.policies():
            row: list[object] = [query, policy]
            for network in networks:
                row.append(f"{grid.slowdown(query, policy, baseline, network):.2f}x")
            rows.append(row)
    return format_table(headers, rows)


def to_csv(grid: GridResults) -> str:
    lines = [
        "query,policy,network,answers,execution_time,time_to_first_answer,messages,engine_cost"
    ]
    for result in grid.results:
        ttfa = "" if result.time_to_first_answer is None else f"{result.time_to_first_answer:.6f}"
        lines.append(
            f"{result.query},{result.policy},{result.network},{result.answers},"
            f"{result.execution_time:.6f},{ttfa},{result.messages},{result.engine_cost:.6f}"
        )
    return "\n".join(lines)


def to_json(grid: GridResults, include_traces: bool = False) -> str:
    payload = []
    for result in grid.results:
        entry = {
            "query": result.query,
            "policy": result.policy,
            "network": result.network,
            "answers": result.answers,
            "execution_time": result.execution_time,
            "time_to_first_answer": result.time_to_first_answer,
            "messages": result.messages,
            "engine_cost": result.engine_cost,
        }
        if include_traces:
            entry["trace"] = result.trace
        payload.append(entry)
    return json.dumps(payload, indent=2)


def describe_result(result: RunResult) -> str:
    ttfa = (
        f"{result.time_to_first_answer:.4f}s"
        if result.time_to_first_answer is not None
        else "-"
    )
    return (
        f"{result.query} [{result.policy} / {result.network}]: "
        f"{result.answers} answers in {result.execution_time:.4f}s "
        f"(first at {ttfa}, {result.messages} messages)"
    )
