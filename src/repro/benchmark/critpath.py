"""Critical-path attribution baseline store and regression gate.

``repro critpath --snapshot`` runs the attribution grid — queries ×
networks × runtimes under the aware policy — and writes one canonical
JSON document (``BENCH_critpath.json``) holding every cell's full
:class:`~repro.obs.critpath.CriticalPathReport` dict.  The file is
committed; the CI ``critpath-gate`` job rebuilds the identical lake
(scale and seeds are stored in the file), re-runs the grid and compares
**exactly**: per-blame-class durations are matched as the report's
``exact_classes`` fraction strings, not within an epsilon.  Attribution
is a pure function of the deterministic virtual timeline, so any diff is
a real behaviour change.

Event and thread runtimes are pinned as separate cells: their schedules
are equivalent but their float timelines differ at ulp scale (the pooled
producer reconstitutes event times with a different addition order than
the live producer), so only the *structural fingerprint* — operator
nodes and pull edges, no times — is required to agree across runtimes.
"""

from __future__ import annotations

import json
from typing import Sequence

from ..core.engine import FederatedEngine
from ..core.policy import PlanPolicy
from ..datalake.lake import SemanticDataLake
from ..network.delays import NetworkSetting
from .baseline import NETWORK_CHOICES, POLICY_CHOICES, cell_key

CRITPATH_BASELINE_KIND = "repro-critpath-baseline"
CRITPATH_BASELINE_VERSION = 1

#: The committed grid's axes (policy fixed to aware: attribution is about
#: *where time goes*, not plan choice — the plan-quality gate covers that).
DEFAULT_CRITPATH_QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5")
DEFAULT_CRITPATH_NETWORKS = ("nodelay", "gamma1", "gamma2", "gamma3")
DEFAULT_CRITPATH_RUNTIMES = ("sequential", "event", "thread")
DEFAULT_CRITPATH_POLICY = "aware"


def measure_critpath_cell(
    lake: SemanticDataLake,
    query_text: str,
    policy: PlanPolicy,
    network: NetworkSetting,
    runtime: str,
    seed: int,
    delay_scale: float = 1.0,
) -> dict:
    """One observed run's full critical-path report dict.

    *delay_scale* != 1 wraps the network in
    :class:`~repro.network.delays.ScaledDelay` — the doctor's controlled
    "this source got slower" counterfactual (same RNG draws, scaled
    pauses).
    """
    if delay_scale != 1.0:
        network = network.scaled(delay_scale)
    engine = FederatedEngine(lake, policy=policy, network=network, runtime=runtime)
    answers, stats, report = engine.critpath(query_text, seed=seed, runtime=runtime)
    cell = report.to_dict(include_segments=False)
    assert cell["answers"] == len(answers)
    return cell


def build_critpath_baseline(
    lake: SemanticDataLake,
    query_texts: dict[str, str],
    scale: float,
    data_seed: int,
    run_seed: int = 7,
    policy: str = DEFAULT_CRITPATH_POLICY,
    networks: Sequence[str] = DEFAULT_CRITPATH_NETWORKS,
    runtimes: Sequence[str] = DEFAULT_CRITPATH_RUNTIMES,
    delay_scale: float = 1.0,
) -> dict:
    """Measure the attribution grid and assemble the canonical document."""
    plan_policy = POLICY_CHOICES[policy]()
    cells: dict[str, dict] = {}
    for query_name, text in query_texts.items():
        for network_name in networks:
            network = NETWORK_CHOICES[network_name]()
            for runtime in runtimes:
                cells[cell_key(query_name, policy, network_name, runtime)] = (
                    measure_critpath_cell(
                        lake,
                        text,
                        plan_policy,
                        network,
                        runtime,
                        run_seed,
                        delay_scale=delay_scale,
                    )
                )
    return {
        "kind": CRITPATH_BASELINE_KIND,
        "version": CRITPATH_BASELINE_VERSION,
        "scale": scale,
        "data_seed": data_seed,
        "run_seed": run_seed,
        "policy": policy,
        "queries": sorted(query_texts),
        "networks": list(networks),
        "runtimes": list(runtimes),
        "cells": cells,
    }


def load_critpath_baseline(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("kind") != CRITPATH_BASELINE_KIND:
        raise ValueError(
            f"{path}: not a critpath baseline (kind={payload.get('kind')!r})"
        )
    if payload.get("version") != CRITPATH_BASELINE_VERSION:
        raise ValueError(
            f"{path}: critpath baseline version {payload.get('version')!r} != "
            f"supported {CRITPATH_BASELINE_VERSION}"
        )
    return payload


def compare_critpath_cells(key: str, baseline: dict, fresh: dict) -> list[str]:
    """Exact comparison of one cell; returns human-readable diffs."""
    diffs: list[str] = []
    for quantity in ("answers", "deliveries", "total", "runtime"):
        if baseline.get(quantity) != fresh.get(quantity):
            diffs.append(
                f"{key} {quantity}: baseline {baseline.get(quantity)!r} -> "
                f"fresh {fresh.get(quantity)!r}"
            )
    if not fresh.get("exact", False):
        diffs.append(f"{key}: fresh attribution is not exact")
    base_classes = baseline.get("exact_classes", {})
    fresh_classes = fresh.get("exact_classes", {})
    for name in sorted(base_classes.keys() | fresh_classes.keys()):
        if base_classes.get(name) != fresh_classes.get(name):
            diffs.append(
                f"{key} {name}: baseline {base_classes.get(name)} -> "
                f"fresh {fresh_classes.get(name)} (exact fraction mismatch)"
            )
    if baseline.get("structural_fingerprint") != fresh.get("structural_fingerprint"):
        diffs.append(f"{key}: structural fingerprint changed")
    return diffs


def compare_critpath_baselines(baseline: dict, fresh: dict) -> list[str]:
    """Cell-by-cell exact comparison; empty list means bit-for-bit match."""
    diffs: list[str] = []
    base_cells: dict[str, dict] = baseline["cells"]
    fresh_cells: dict[str, dict] = fresh["cells"]
    for key in sorted(base_cells.keys() | fresh_cells.keys()):
        if key not in fresh_cells:
            diffs.append(f"{key}: cell not re-run")
            continue
        if key not in base_cells:
            diffs.append(f"{key}: cell absent from baseline")
            continue
        diffs.extend(compare_critpath_cells(key, base_cells[key], fresh_cells[key]))
    return diffs
