"""Command-line interface.

Usage (see ``python -m repro --help``)::

    python -m repro describe                      # lake + physical design
    python -m repro query Q2 --policy aware --network gamma2 --explain
    python -m repro query "PREFIX ..." --policy unaware
    python -m repro grid --queries Q1,Q2,Q3 --format csv
    python -m repro trace Q3 --policies aware,unaware --networks gamma3

Queries may be given as benchmark names (Q1-Q5, Fig1), inline SPARQL text,
or ``@path/to/query.rq``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .benchmark import (
    Configuration,
    TracePlot,
    grid_table,
    network_impact_table,
    run_grid,
    speedup_table,
    to_csv,
    to_json,
)
from .benchmark.baseline import (
    DEFAULT_NETWORKS,
    DEFAULT_POLICIES,
    DEFAULT_QUERIES,
    DEFAULT_RUNTIMES,
    NETWORK_CHOICES,
    POLICY_CHOICES,
)
from .core.engine import FederatedEngine
from .core.policy import JoinStrategy, PlanPolicy
from .datasets import BENCHMARK_QUERIES, GRID_QUERIES, build_lslod_lake
from .federation.answers import EXEC_MODES
from .network.delays import NetworkSetting

# The canonical axis registries live with the baseline (the committed
# BENCH file records their short names); the CLI shares them.
POLICIES = POLICY_CHOICES
NETWORKS = NETWORK_CHOICES

RUNTIMES = DEFAULT_RUNTIMES

#: The five heuristic base policies of the differential/scorecard matrices
#: (the cost policy is opt-in via ``--policies cost,...`` or ``+cost``).
BASE_POLICY_NAMES = ("aware", "unaware", "heuristic2", "source", "dependent")


def _parse_policy_names(spec: str | None, default: Sequence[str]) -> list[str]:
    """Resolve a ``--policies`` value: a comma list of short names, or a
    leading ``+`` to append to *default* (``+cost`` = the default matrix
    plus the cost-based policy)."""
    if not spec:
        return list(default)
    text = spec.strip()
    if text.startswith("+"):
        names = list(default)
        for name in text[1:].split(","):
            name = name.strip()
            if name and name not in names:
                names.append(name)
        return names
    return [name.strip() for name in text.split(",") if name.strip()]


def _resolve_query(text: str) -> str:
    if text in BENCHMARK_QUERIES:
        return BENCHMARK_QUERIES[text].text
    if text.startswith("@"):
        with open(text[1:], encoding="utf-8") as handle:
            return handle.read()
    return text


def _build_lake(args: argparse.Namespace):
    return build_lslod_lake(scale=args.scale, seed=args.seed)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.1, help="data-set scale factor")
    parser.add_argument("--seed", type=int, default=42, help="data generation seed")
    parser.add_argument(
        "--run-seed", type=int, default=7, help="delay-sampling seed for executions"
    )
    parser.add_argument(
        "--runtime",
        choices=RUNTIMES,
        default="sequential",
        help=(
            "execution runtime: sequential iterator chain, discrete-event "
            "scheduler (overlapping source delays), or event + wrapper threads"
        ),
    )
    parser.add_argument(
        "--exec",
        choices=EXEC_MODES,
        default="row",
        help=(
            "data plane: row-at-a-time dicts or vectorized columnar "
            "batches; virtual times are bit-identical, batch is faster "
            "in wall-clock"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "rows per columnar chunk in batch mode (default: "
            "REPRO_BATCH_SIZE env var, then the engine default)"
        ),
    )


def cmd_describe(args: argparse.Namespace) -> int:
    lake = _build_lake(args)
    print(lake.describe())
    print()
    print("Physical design:")
    print(lake.physical_catalog.describe())
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    lake = _build_lake(args)
    policy = POLICIES[args.policy]()
    network = NETWORKS[args.network]()
    engine = FederatedEngine(
        lake,
        policy=policy,
        network=network,
        runtime=args.runtime,
        exec=args.exec,
        batch_size=args.batch_size,
    )
    query_text = _resolve_query(args.query)
    if args.explain:
        print(engine.explain(query_text))
        print()
    if args.profile:
        answers, stats, report = engine.profile(
            query_text, seed=args.run_seed, runtime=args.runtime
        )
        print(report.render())
        print()
    else:
        answers, stats = engine.run(query_text, seed=args.run_seed)
    shown = answers[: args.limit] if args.limit is not None else answers
    for answer in shown:
        rendered = ", ".join(f"?{name}={term.n3()}" for name, term in sorted(answer.items()))
        print(rendered)
    if args.limit is not None and len(answers) > args.limit:
        print(f"... ({len(answers) - args.limit} more)")
    ttfa = f"{stats.time_to_first_answer:.4f}s" if stats.time_to_first_answer else "-"
    print(
        f"\n{len(answers)} answers | {stats.execution_time:.4f} virtual s | "
        f"first at {ttfa} | {stats.messages} messages"
    )
    return 0


def cmd_grid(args: argparse.Namespace) -> int:
    lake = _build_lake(args)
    names = args.queries.split(",") if args.queries else list(GRID_QUERIES)
    unknown = [name for name in names if name not in BENCHMARK_QUERIES]
    if unknown:
        print(f"unknown queries: {', '.join(unknown)}", file=sys.stderr)
        return 2
    queries = [BENCHMARK_QUERIES[name] for name in names]
    grid = run_grid(
        lake, queries, seed=args.run_seed, runtime=args.runtime, exec=args.exec
    )
    if args.format == "csv":
        print(to_csv(grid))
    elif args.format == "json":
        print(to_json(grid))
    else:
        print("Execution time (virtual seconds):")
        print(grid_table(grid))
        print()
        print("Speedup of aware over unaware:")
        print(speedup_table(grid, "Physical-Design-Unaware", "Physical-Design-Aware"))
        print()
        print("Network impact (slowdown vs No Delay):")
        print(network_impact_table(grid))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    # Imported here so the oracle subsystem stays off the hot CLI paths.
    from .oracle import run_fuzz

    regressions_dir = None if args.no_write else args.regressions_dir
    runtimes = tuple(name.strip() for name in args.runtimes.split(",") if name.strip())
    unknown = [name for name in runtimes if name not in RUNTIMES]
    if unknown:
        print(f"unknown runtimes: {', '.join(unknown)}", file=sys.stderr)
        return 2
    execs = tuple(name.strip() for name in args.execs.split(",") if name.strip())
    unknown = [name for name in execs if name not in EXEC_MODES]
    if unknown:
        print(f"unknown exec modes: {', '.join(unknown)}", file=sys.stderr)
        return 2
    policy_names = _parse_policy_names(args.policies, BASE_POLICY_NAMES)
    unknown = [name for name in policy_names if name not in POLICIES]
    if unknown:
        print(f"unknown policies: {', '.join(unknown)}", file=sys.stderr)
        return 2

    def on_case(index, case, mismatches):
        if args.verbose:
            status = "FAIL" if mismatches else "ok"
            print(f"[{index + 1}/{args.iters}] {case.name}: {status}", file=sys.stderr)

    report = run_fuzz(
        args.seed,
        args.iters,
        regressions_dir=regressions_dir,
        runtimes=runtimes,
        execs=execs,
        policies=[POLICIES[name]() for name in policy_names],
        check_invariants=not args.no_invariants,
        shrink=not args.no_shrink,
        on_case=on_case,
        trace_dir=args.trace_dir,
    )
    print(report.summary())
    return 0 if report.ok else 1


def cmd_explain(args: argparse.Namespace) -> int:
    """Planner explain: every H1/H2 decision with its reason.

    With ``--analyze`` the query is also executed (observed, under the
    selected runtime) and the report gains per-operator actual cardinalities,
    q-errors, and the heuristic decisions sitting on the worst-estimated
    operators.  JSON output is validated against the published schema
    before printing, so downstream tooling can rely on its shape.
    """
    import json

    from .obs import ANALYZE_SCHEMA, EXPLAIN_SCHEMA, explain_plan
    from .obs.schema import validate_json_schema

    lake = _build_lake(args)
    query_text = _resolve_query(args.query)
    engine = FederatedEngine(
        lake,
        policy=POLICIES[args.policy](),
        network=NETWORKS[args.network](),
        runtime=args.runtime,
        exec=args.exec,
        batch_size=args.batch_size,
    )
    if args.analyze:
        __, __, report = engine.analyze(
            query_text, seed=args.run_seed, runtime=args.runtime
        )
        schema = ANALYZE_SCHEMA
    else:
        report = explain_plan(engine.plan(query_text))
        schema = EXPLAIN_SCHEMA
    if args.format == "json":
        payload = report.to_dict()
        errors = validate_json_schema(payload, schema)
        if errors:
            for error in errors:
                print(f"schema violation: {error}", file=sys.stderr)
            return 1
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def cmd_scorecard(args: argparse.Namespace) -> int:
    """Heuristic scorecard over a workload sweep (see benchmark.scorecard)."""
    import json

    from .benchmark import run_scorecard

    lake = _build_lake(args)
    names = args.queries.split(",") if args.queries else list(DEFAULT_QUERIES)
    unknown = [name for name in names if name not in BENCHMARK_QUERIES]
    if unknown:
        print(f"unknown queries: {', '.join(unknown)}", file=sys.stderr)
        return 2
    network_names = args.networks.split(",") if args.networks else list(DEFAULT_NETWORKS)
    unknown = [name for name in network_names if name not in NETWORKS]
    if unknown:
        print(f"unknown networks: {', '.join(unknown)}", file=sys.stderr)
        return 2
    policy_names = _parse_policy_names(args.policies, BASE_POLICY_NAMES)
    unknown = [name for name in policy_names if name not in POLICIES]
    if unknown:
        print(f"unknown policies: {', '.join(unknown)}", file=sys.stderr)
        return 2
    card = run_scorecard(
        lake,
        [BENCHMARK_QUERIES[name] for name in names],
        policies=[POLICIES[name]() for name in policy_names],
        networks=[NETWORKS[name]() for name in network_names],
        runtime=args.runtime,
        seed=args.run_seed,
    )
    if args.format == "json":
        print(json.dumps(card.to_dict(), indent=2, sort_keys=True))
    else:
        print(card.render(per_decision=not args.summary))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Optimizer statistics: collect a snapshot, or inspect a stored one.

    ``collect`` snapshots the lake's catalog statistics, runs the selected
    benchmark queries observed to seed the observed-cardinality store, and
    writes both to one JSON document stamped with the lake's catalog
    version.  ``show`` renders a stored document and — unless
    ``--no-verify`` — rebuilds the lake to confirm the stored catalog
    version still matches (stale files fail loudly instead of silently
    feeding the planner outdated cardinalities).
    """
    import json

    from .optimizer import (
        STATS_FORMAT_VERSION,
        CatalogStatistics,
        StaleStatisticsError,
        ObservedStatistics,
    )

    if args.stats_command == "collect":
        names = args.queries.split(",") if args.queries else list(DEFAULT_QUERIES)
        unknown = [name for name in names if name not in BENCHMARK_QUERIES]
        if unknown:
            print(f"unknown queries: {', '.join(unknown)}", file=sys.stderr)
            return 2
        lake = _build_lake(args)
        catalog = CatalogStatistics.collect(lake)
        engine = FederatedEngine(
            lake,
            policy=POLICIES[args.policy](),
            network=NETWORKS[args.network](),
            runtime=args.runtime,
            exec=args.exec,
        )
        ingested = 0
        for name in names:
            __, __, observation = engine.observe(
                BENCHMARK_QUERIES[name].text, seed=args.run_seed
            )
            ingested += engine.ingest_observation(observation)
        payload = {
            "kind": "repro-stats",
            "version": STATS_FORMAT_VERSION,
            "catalog": catalog.to_payload(),
            "observed": engine.observed_stats.to_payload(catalog.catalog_version),
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True))
            handle.write("\n")
        print(
            f"wrote {args.output}: {len(catalog.tables)} tables, "
            f"{len(catalog.molecules)} molecule classes, "
            f"{len(engine.observed_stats)} observed cardinalities "
            f"({ingested} ingests from {len(names)} queries)"
        )
        return 0

    # show
    with open(args.stats_file, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("kind") != "repro-stats":
        print(
            f"{args.stats_file}: not a repro statistics file "
            f"(kind={payload.get('kind')!r})",
            file=sys.stderr,
        )
        return 2
    catalog = CatalogStatistics.from_payload(payload["catalog"])
    expected_version = None
    if not args.no_verify:
        lake = _build_lake(args)
        expected_version = tuple(lake.catalog_version())
        if tuple(catalog.catalog_version) != expected_version:
            print(
                f"error: stale statistics: {args.stats_file} was collected at "
                f"catalog version {tuple(catalog.catalog_version)}, but the "
                f"lake is now at {expected_version}",
                file=sys.stderr,
            )
            return 1
    try:
        observed = ObservedStatistics.from_payload(
            payload["observed"], catalog_version=expected_version
        )
    except StaleStatisticsError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    total_rows = sum(entry["rows"] for entry in catalog.tables.values())
    print(f"statistics file {args.stats_file} (format v{payload['version']})")
    verified = "verified against the live lake" if expected_version else "not verified"
    print(f"catalog version: {len(catalog.catalog_version)} entries, {verified}")
    print(
        f"catalog: {len(catalog.tables)} tables ({total_rows} rows), "
        f"{len(catalog.molecules)} molecule classes"
    )
    print(f"observed: {len(observed)} recorded cardinalities")
    records = payload["observed"].get("records", [])
    limit = args.limit if args.limit is not None and args.limit >= 0 else len(records)
    shown = records[:limit]
    for entry in shown:
        signature = entry["signature"]
        kind = signature[0] if isinstance(signature, list) and signature else "?"
        rendered = json.dumps(signature, separators=(",", ":"))
        if len(rendered) > 100:
            rendered = rendered[:97] + "..."
        print(f"  {entry['rows']:>10.1f} rows  x{entry['ingests']}  [{kind}] {rendered}")
    if len(records) > limit:
        print(f"  ... ({len(records) - limit} more)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Plan-quality baseline: snapshot the grid, or check against it."""
    import json

    from .benchmark.baseline import (
        Thresholds,
        build_baseline,
        compare_baselines,
        load_baseline,
        write_baseline,
    )

    if args.bench_command == "snapshot":
        names = args.queries.split(",") if args.queries else list(DEFAULT_QUERIES)
        unknown = [name for name in names if name not in BENCHMARK_QUERIES]
        if unknown:
            print(f"unknown queries: {', '.join(unknown)}", file=sys.stderr)
            return 2
        from .benchmark.baseline import DEFAULT_POLICIES, POLICY_CHOICES

        policy_names = _parse_policy_names(args.policies, DEFAULT_POLICIES)
        unknown = [name for name in policy_names if name not in POLICY_CHOICES]
        if unknown:
            print(f"unknown policies: {', '.join(unknown)}", file=sys.stderr)
            return 2
        lake = _build_lake(args)
        payload = build_baseline(
            lake,
            {name: BENCHMARK_QUERIES[name].text for name in names},
            scale=args.scale,
            data_seed=args.seed,
            run_seed=args.run_seed,
            policies=policy_names,
            exec=args.exec,
        )
        write_baseline(payload, args.output)
        print(f"wrote {len(payload['cells'])} grid cells to {args.output}")
        return 0

    # check: the baseline file defines the lake and the grid; re-run and diff.
    baseline = load_baseline(args.baseline)
    lake = build_lslod_lake(scale=baseline["scale"], seed=baseline["data_seed"])
    fresh = build_baseline(
        lake,
        {name: BENCHMARK_QUERIES[name].text for name in baseline["queries"]},
        scale=baseline["scale"],
        data_seed=baseline["data_seed"],
        run_seed=baseline["run_seed"],
        policies=baseline["policies"],
        networks=baseline["networks"],
        runtimes=baseline["runtimes"],
        # Virtual times are exec-invariant, so checking a row-mode baseline
        # under --exec batch is a legitimate (and gating) configuration.
        exec=args.exec or baseline.get("exec", "row"),
    )
    thresholds = Thresholds(
        rel_time=args.rel_time,
        abs_time=args.abs_time,
        rel_dief=args.rel_dief,
        abs_dief=args.abs_dief,
    )
    report = compare_baselines(baseline, fresh, thresholds)
    rendered = report.render()
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report.to_dict(), indent=2, sort_keys=True))
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(rendered)
    return 0 if report.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    lake = _build_lake(args)
    query_text = _resolve_query(args.query)
    title = args.query if args.query in BENCHMARK_QUERIES else "query"
    chrome = args.format == "chrome"
    plot = TracePlot(f"Answer traces — {title}")
    observations: list[tuple[str, object]] = []
    for policy_name in args.policies.split(","):
        if policy_name not in POLICIES:
            print(f"unknown policy {policy_name!r}", file=sys.stderr)
            return 2
        for network_name in args.networks.split(","):
            if network_name not in NETWORKS:
                print(f"unknown network {network_name!r}", file=sys.stderr)
                return 2
            engine = FederatedEngine(
                lake,
                policy=POLICIES[policy_name](),
                network=NETWORKS[network_name](),
                runtime=args.runtime,
                exec=args.exec,
                batch_size=args.batch_size,
            )
            label = f"{policy_name}/{network_name}"
            if chrome:
                __, stats, observation = engine.observe(query_text, seed=args.run_seed)
                observations.append((f"{title} {label} [{args.runtime}]", observation))
            else:
                __, stats = engine.run(query_text, seed=args.run_seed)
            plot.add(label, stats.trace)
    if chrome:
        from .obs import chrome_trace_json, to_chrome_trace, validate_chrome_trace

        if args.validate:
            errors = validate_chrome_trace(to_chrome_trace(observations))
            if errors:
                for error in errors:
                    print(f"invalid trace: {error}", file=sys.stderr)
                return 1
        rendered = chrome_trace_json(observations, indent=2)
    elif args.format == "csv":
        rendered = plot.to_csv()
    else:
        rendered = plot.render_ascii(width=args.width, height=args.height)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
            handle.write("\n")
        print(f"wrote {args.format} trace to {args.output}")
    else:
        print(rendered)
    return 0


def _service_config_from_args(args: argparse.Namespace):
    """Build (and strictly validate) a ServiceConfig from CLI arguments."""
    from .service import ServiceConfig, TenantConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        global_concurrency=args.global_concurrency,
        timeout=None if args.no_timeout else args.timeout,
        default_tenant=TenantConfig(
            name="default",
            max_concurrency=args.tenant_concurrency,
            queue_depth=args.tenant_queue_depth,
        ),
        strict_tenants=args.strict_tenants,
        observe=args.observe,
        policy=args.policy,
        network=args.network,
        runtime=args.runtime,
        exec=args.exec,
        batch_size=args.batch_size,
        journal_path=getattr(args, "journal_path", None),
    )
    if args.tenants:
        with open(args.tenants, encoding="utf-8") as handle:
            config = config.with_tenants_json(handle.read(), source=args.tenants)
    config.validate()
    return config


def _add_service_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=4, help="engine pool size")
    parser.add_argument(
        "--global-concurrency",
        type=int,
        default=8,
        help="max requests executing at once, across all tenants",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request deadline in seconds (queue wait + execution)",
    )
    parser.add_argument(
        "--no-timeout", action="store_true", help="disable request deadlines"
    )
    parser.add_argument(
        "--tenant-concurrency",
        type=int,
        default=2,
        help="default per-tenant concurrency limit",
    )
    parser.add_argument(
        "--tenant-queue-depth",
        type=int,
        default=16,
        help="default per-tenant queue depth (submissions beyond it are shed)",
    )
    parser.add_argument(
        "--tenants",
        help="JSON file mapping tenant names to limits (see DESIGN.md §13)",
    )
    parser.add_argument(
        "--strict-tenants",
        action="store_true",
        help="shed requests from tenants absent from the --tenants roster",
    )
    parser.add_argument("--policy", choices=sorted(POLICIES), default="aware")
    parser.add_argument("--network", choices=sorted(NETWORKS), default="nodelay")
    parser.add_argument(
        "--observe",
        action="store_true",
        help="record per-request traces (served at /queries/<id>/trace)",
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ServiceConfigError, start_service

    try:
        config = _service_config_from_args(args)
    except (ServiceConfigError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.check:
        print(config.describe())
        return 0
    lake = _build_lake(args)

    async def _serve() -> None:
        server = await start_service(lake, config)
        print(f"repro service listening on http://{config.host}:{server.port}")
        print(config.describe())
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - Ctrl-C path
            pass
        finally:
            await server.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - Ctrl-C path
        print("shutting down")
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    import json

    from .service import ServiceConfigError, WorkloadSpec, run_load

    try:
        config = _service_config_from_args(args)
        spec = WorkloadSpec(
            clients=args.clients,
            requests_per_client=args.requests_per_client,
            tenants=args.tenant_count,
            tenant_skew=args.tenant_skew,
            hot_fraction=args.hot_fraction,
            cold_variants=args.cold_variants,
            mean_interarrival=args.mean_interarrival,
            mean_think=args.mean_think,
        )
        spec.validate()
    except (ServiceConfigError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    lake = _build_lake(args)
    report = run_load(
        lake,
        config,
        spec,
        seed=args.load_seed,
        verify_answers=not args.no_verify,
        telemetry=not args.no_telemetry,
    )
    document = report.to_dict(include_requests=args.include_requests)
    summary = document["summary"]
    print(
        f"{summary['requests']} requests: {summary['completed']} done, "
        f"{summary['shed']} shed, {summary['timed_out']} timed out "
        f"({summary['executions']} executions, "
        f"{summary['wall_seconds']:.2f}s wall)"
    )
    print(
        f"virtual latency p50={summary['latency_p50']:.4f}s "
        f"p95={summary['latency_p95']:.4f}s p99={summary['latency_p99']:.4f}s; "
        f"throughput {summary['throughput_per_virtual_s']:.2f}/virtual-s"
    )
    plans = summary["cache"]["plans"]
    subresults = summary["cache"]["subresults"]
    print(
        f"shared caches: plans {plans['hits']}/{plans['hits'] + plans['misses']} hits, "
        f"sub-results {subresults['hits']}/{subresults['hits'] + subresults['misses']} hits"
    )
    print(f"fingerprint {document['fingerprint']}")
    if report.journal is not None:
        print(
            f"journal {len(report.journal)} events, "
            f"fingerprint {report.journal.fingerprint()}"
        )
    if args.journal:
        if report.journal is None:
            print(
                "error: --journal requires telemetry (drop --no-telemetry)",
                file=sys.stderr,
            )
            return 2
        report.journal.write_jsonl(args.journal, seal=True)
        print(
            f"wrote sealed event journal to {args.journal} "
            "(verify with 'repro journal verify')"
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote report to {args.output}")
    if args.trace_output:
        with open(args.trace_output, "w", encoding="utf-8") as handle:
            json.dump(report.to_chrome_trace(), handle)
            handle.write("\n")
        print(f"wrote Chrome trace to {args.trace_output}")
    failures = report.mismatches + report.audit_violations
    if failures:
        for failure in failures[:10]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def cmd_critpath(args: argparse.Namespace) -> int:
    """Critical-path attribution: per-query reports, the grid aggregate,
    and the ``BENCH_critpath.json`` snapshot/check regression gate."""
    import json

    from .benchmark.critpath import (
        DEFAULT_CRITPATH_NETWORKS,
        DEFAULT_CRITPATH_QUERIES,
        DEFAULT_CRITPATH_RUNTIMES,
        build_critpath_baseline,
        compare_critpath_baselines,
        load_critpath_baseline,
        measure_critpath_cell,
    )
    from .benchmark.baseline import baseline_json
    from .obs.critpath import (
        CriticalPathReport,
        aggregate_reports,
        render_aggregate,
        render_critpath,
    )

    if args.check:
        baseline = load_critpath_baseline(args.check)
        lake = build_lslod_lake(scale=baseline["scale"], seed=baseline["data_seed"])
        fresh = build_critpath_baseline(
            lake,
            {name: BENCHMARK_QUERIES[name].text for name in baseline["queries"]},
            scale=baseline["scale"],
            data_seed=baseline["data_seed"],
            run_seed=baseline["run_seed"],
            policy=baseline["policy"],
            networks=baseline["networks"],
            runtimes=baseline["runtimes"],
        )
        diffs = compare_critpath_baselines(baseline, fresh)
        if diffs:
            print(f"critpath baseline DRIFT: {len(diffs)} differences")
            for diff in diffs:
                print(f"  {diff}")
            return 1
        print(
            f"critpath baseline OK: {len(baseline['cells'])} cells match "
            "exactly (fraction-level)"
        )
        return 0

    names = args.queries.split(",") if args.queries else list(DEFAULT_CRITPATH_QUERIES)
    unknown = [name for name in names if name not in BENCHMARK_QUERIES]
    if unknown:
        print(f"unknown queries: {', '.join(unknown)}", file=sys.stderr)
        return 2
    network_names = (
        args.networks.split(",") if args.networks else list(DEFAULT_CRITPATH_NETWORKS)
    )
    unknown = [name for name in network_names if name not in NETWORKS]
    if unknown:
        print(f"unknown networks: {', '.join(unknown)}", file=sys.stderr)
        return 2
    runtime_names = (
        args.runtimes.split(",") if args.runtimes else list(DEFAULT_CRITPATH_RUNTIMES)
    )
    unknown = [name for name in runtime_names if name not in RUNTIMES]
    if unknown:
        print(f"unknown runtimes: {', '.join(unknown)}", file=sys.stderr)
        return 2
    lake = _build_lake(args)

    if args.snapshot:
        payload = build_critpath_baseline(
            lake,
            {name: BENCHMARK_QUERIES[name].text for name in names},
            scale=args.scale,
            data_seed=args.seed,
            run_seed=args.run_seed,
            policy=args.policy,
            networks=network_names,
            runtimes=runtime_names,
            delay_scale=args.delay_scale,
        )
        with open(args.snapshot, "w", encoding="utf-8") as handle:
            handle.write(baseline_json(payload))
        print(f"wrote {len(payload['cells'])} attribution cells to {args.snapshot}")
        return 0

    policy = POLICIES[args.policy]()
    cells: list[tuple[str, dict]] = []
    for name in names:
        text = BENCHMARK_QUERIES[name].text
        for network_name in network_names:
            network = NETWORKS[network_name]()
            for runtime in runtime_names:
                label = f"{name} {args.policy}/{network_name} [{runtime}]"
                if args.format == "chrome":
                    # The overlay needs the observation itself, not just the
                    # report dict — re-run through the engine method.
                    from .obs.critpath import attribute_run, chrome_overlay

                    engine = FederatedEngine(
                        lake,
                        policy=policy,
                        network=(
                            network.scaled(args.delay_scale)
                            if args.delay_scale != 1.0
                            else network
                        ),
                        runtime=runtime,
                    )
                    stream = engine.execute(
                        text, seed=args.run_seed, runtime=runtime, observe=True
                    )
                    stream.collect()
                    report = attribute_run(stream.observation, stream.stats)
                    document = chrome_overlay(stream.observation, report, label=label)
                    rendered = json.dumps(document, indent=2)
                    if args.output:
                        with open(args.output, "w", encoding="utf-8") as handle:
                            handle.write(rendered + "\n")
                        print(f"wrote Chrome trace overlay to {args.output}")
                    else:
                        print(rendered)
                    if len(names) * len(network_names) * len(runtime_names) > 1:
                        print(
                            "note: --format chrome renders only the first cell",
                            file=sys.stderr,
                        )
                    return 0
                cell = measure_critpath_cell(
                    lake,
                    text,
                    policy,
                    network,
                    runtime,
                    args.run_seed,
                    delay_scale=args.delay_scale,
                )
                cells.append((label, cell))
    if args.format == "json":
        print(
            json.dumps(
                {label: cell for label, cell in cells}, indent=2, sort_keys=True
            )
        )
        return 0
    reports = []
    for label, cell in cells:
        report = CriticalPathReport(
            runtime=cell["runtime"],
            total=cell["total"],
            exact=cell["exact"],
            classes=cell["classes"],
            exact_classes=cell["exact_classes"],
            sources=cell["sources"],
            slack=cell["slack"],
            segments=[],
            deliveries=cell["deliveries"],
            answers=cell["answers"],
            queue_wait=cell["queue_wait"],
            structural_fingerprint=cell["structural_fingerprint"],
        )
        reports.append(report)
        print(render_critpath(report, label=label))
        print()
    if len(reports) > 1:
        print(render_aggregate(aggregate_reports(reports)))
    return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    """Evidence-linked regression attribution over the committed baselines."""
    import json
    import os

    from .obs.doctor import SEVERITIES, diagnose
    from .obs.journal import EventJournal

    def _json(path: str | None) -> dict | None:
        if not path or not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    from .benchmark.critpath import load_critpath_baseline

    critpath_baseline = None
    if args.critpath_baseline and os.path.exists(args.critpath_baseline):
        critpath_baseline = load_critpath_baseline(args.critpath_baseline)
    plan_quality = _json(args.plan_quality)
    telemetry = _json(args.telemetry)
    journal_events = None
    if args.journal:
        journal_events = EventJournal.read_jsonl(args.journal).events
    lake = None
    if critpath_baseline is not None:
        lake = build_lslod_lake(
            scale=critpath_baseline["scale"], seed=critpath_baseline["data_seed"]
        )
    if (
        critpath_baseline is None
        and plan_quality is None
        and telemetry is None
        and journal_events is None
    ):
        print(
            "error: nothing to diagnose — provide at least one of "
            "--critpath-baseline, --plan-quality, --telemetry, --journal",
            file=sys.stderr,
        )
        return 2
    report = diagnose(
        lake=lake,
        critpath_baseline=critpath_baseline,
        plan_quality=plan_quality,
        telemetry_baseline=telemetry,
        journal_events=journal_events,
        delay_scale=args.delay_scale,
        queries=args.queries.split(",") if args.queries else None,
        networks=args.networks.split(",") if args.networks else None,
        runtimes=args.runtimes.split(",") if args.runtimes else None,
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.fail_on not in SEVERITIES:
        return 0
    return report.exit_code(args.fail_on)


def cmd_journal(args: argparse.Namespace) -> int:
    """Journal tooling: integrity verification of a JSONL file on disk."""
    from .obs.journal import verify_journal_file

    ok, problems, info = verify_journal_file(
        args.journal_file, allow_unsealed=args.allow_unsealed
    )
    seal = info.get("seal")
    print(
        f"{args.journal_file}: {info['events']} events, "
        f"fingerprint {info['fingerprint']}"
    )
    counts = info.get("counts_by_kind", {})
    if counts:
        print("  " + ", ".join(f"{kind}={count}" for kind, count in counts.items()))
    if seal is not None:
        print(f"  seal: declares {seal.get('events')} events")
    if ok:
        print("OK: journal verifies" + (" (unsealed)" if seal is None else ""))
        return 0
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1


def cmd_slo_report(args: argparse.Namespace) -> int:
    import json

    from .obs import EventJournal, accountant_from_journal, render_slo_report

    if bool(args.journal) == bool(args.url):
        print(
            "error: provide exactly one of --journal or --url", file=sys.stderr
        )
        return 2
    source: dict
    if args.journal:
        try:
            journal = EventJournal.read_jsonl(args.journal)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read journal: {error}", file=sys.stderr)
            return 2
        accountant, cache_stats = accountant_from_journal(journal.events)
        snapshot = accountant.snapshot(cache_stats=cache_stats)
        source = {
            "journal": args.journal,
            "events": len(journal),
            "journal_fingerprint": journal.fingerprint(),
        }
    else:
        from urllib.error import URLError
        from urllib.request import urlopen

        url = args.url.rstrip("/") + "/stats"
        try:
            with urlopen(url) as response:
                stats = json.load(response)
        except (URLError, OSError, json.JSONDecodeError) as error:
            print(f"error: cannot fetch {url}: {error}", file=sys.stderr)
            return 2
        version = stats.get("stats_version", 1)
        if version < 2 or "slo" not in stats:
            print(
                f"error: {url} reports stats_version {version}; SLO "
                "snapshots need stats_version >= 2 (upgrade the server)",
                file=sys.stderr,
            )
            return 2
        snapshot = stats["slo"]
        source = {"url": url}
    if args.format == "json":
        print(
            json.dumps({"source": source, "slo": snapshot}, indent=2, sort_keys=True)
        )
        return 0
    for key in sorted(source):
        print(f"{key}: {source[key]}")
    print()
    print(render_slo_report(snapshot, tenant=args.tenant))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Optimizing Federated Queries Based on the "
            "Physical Design of a Data Lake' (Rohde & Vidal, EDBT 2020)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser("describe", help="show the lake and its physical design")
    _add_common(describe)
    describe.set_defaults(func=cmd_describe)

    query = sub.add_parser("query", help="plan/execute a SPARQL query")
    _add_common(query)
    query.add_argument("query", help="benchmark name (Q1-Q5, Fig1), SPARQL text or @file")
    query.add_argument("--policy", choices=sorted(POLICIES), default="aware")
    query.add_argument("--network", choices=sorted(NETWORKS), default="nodelay")
    query.add_argument("--explain", action="store_true", help="print the plan first")
    query.add_argument(
        "--profile", action="store_true", help="per-operator EXPLAIN ANALYZE output"
    )
    query.add_argument("--limit", type=int, default=20, help="answers to print")
    query.set_defaults(func=cmd_query)

    grid = sub.add_parser("grid", help="run the 8-configuration experiment grid")
    _add_common(grid)
    grid.add_argument("--queries", help="comma-separated benchmark names (default Q1-Q5)")
    grid.add_argument("--format", choices=("table", "csv", "json"), default="table")
    grid.set_defaults(func=cmd_grid)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential-test random queries/layouts against the naive oracle",
    )
    fuzz.add_argument("--seed", type=int, default=42, help="campaign seed")
    fuzz.add_argument("--iters", type=int, default=50, help="number of random cases")
    fuzz.add_argument(
        "--regressions-dir",
        default="tests/oracle/regressions",
        help="where shrunk reproducers of failures are written",
    )
    fuzz.add_argument(
        "--no-write", action="store_true", help="do not write reproducer files"
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true", help="report failures without minimizing"
    )
    fuzz.add_argument(
        "--no-invariants", action="store_true", help="skip the plan-invariant audit"
    )
    fuzz.add_argument(
        "--runtimes",
        default="sequential",
        help=(
            "comma-separated execution runtimes forming the matrix's "
            "scheduler axis (e.g. sequential,event,thread)"
        ),
    )
    fuzz.add_argument(
        "--execs",
        default="row",
        help=(
            "comma-separated data planes forming the matrix's exec axis "
            "(row,batch); with both, every cell is additionally checked "
            "for row-vs-batch bitwise identity of answers and stats"
        ),
    )
    fuzz.add_argument(
        "--trace-dir",
        default=None,
        help=(
            "dump Chrome traces of every mismatching configuration here "
            "(one file per failing config; upload as CI artifacts)"
        ),
    )
    fuzz.add_argument(
        "--policies",
        default=None,
        help=(
            "comma-separated policy short names forming the matrix's policy "
            "axis (default: the five heuristic base policies); a leading + "
            "appends to that default, e.g. +cost"
        ),
    )
    fuzz.add_argument("--verbose", action="store_true", help="per-case progress on stderr")
    fuzz.set_defaults(func=cmd_fuzz)

    explain = sub.add_parser(
        "explain", help="planner explain: every heuristic decision with its reason"
    )
    _add_common(explain)
    explain.add_argument("query", help="benchmark name (Q1-Q5, Fig1), SPARQL text or @file")
    explain.add_argument("--policy", choices=sorted(POLICIES), default="aware")
    explain.add_argument("--network", choices=sorted(NETWORKS), default="nodelay")
    explain.add_argument("--format", choices=("text", "json"), default="text")
    explain.add_argument(
        "--analyze",
        action="store_true",
        help=(
            "EXPLAIN ANALYZE: execute the query observed and report each "
            "operator's estimated vs actual cardinality, its q-error, and "
            "the heuristic decisions behind the worst-estimated operators"
        ),
    )
    explain.set_defaults(func=cmd_explain)

    scorecard = sub.add_parser(
        "scorecard",
        help=(
            "heuristic win/loss report: sweep queries × networks × policies "
            "and score every H1/H2 decision taken vs declined"
        ),
    )
    _add_common(scorecard)
    scorecard.add_argument("--queries", help="comma-separated benchmark names (default Q1-Q5)")
    scorecard.add_argument(
        "--networks", help="comma-separated network names (default all four)"
    )
    scorecard.add_argument(
        "--policies",
        default=None,
        help=(
            "comma-separated policy short names to sweep (default: the five "
            "heuristic base policies); a leading + appends, e.g. +cost"
        ),
    )
    scorecard.add_argument("--format", choices=("text", "json"), default="text")
    scorecard.add_argument(
        "--summary",
        action="store_true",
        help="omit the per-decision lines, keep only the aggregates",
    )
    scorecard.set_defaults(func=cmd_scorecard)

    bench = sub.add_parser(
        "bench",
        help="plan-quality baseline: snapshot the experiment grid or check against it",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    snapshot = bench_sub.add_parser(
        "snapshot", help="run the full grid and write the canonical baseline JSON"
    )
    _add_common(snapshot)
    snapshot.add_argument("--queries", help="comma-separated benchmark names (default Q1-Q5)")
    snapshot.add_argument(
        "--policies",
        default=None,
        help=(
            "comma-separated policy short names for the grid (default: the "
            "five heuristic base policies); a leading + appends, e.g. +cost"
        ),
    )
    snapshot.add_argument(
        "--output",
        default="BENCH_plan_quality.json",
        help="where to write the baseline document",
    )
    snapshot.set_defaults(func=cmd_bench)
    check = bench_sub.add_parser(
        "check",
        help=(
            "re-run the committed baseline's grid and exit nonzero on drift "
            "(the regression gate; the baseline file defines lake and axes)"
        ),
    )
    check.add_argument(
        "--baseline",
        default="BENCH_plan_quality.json",
        help="committed baseline document to check against",
    )
    check.add_argument(
        "--exec",
        choices=EXEC_MODES,
        default=None,
        help=(
            "re-run the grid under this data plane instead of the "
            "baseline's recorded one (virtual times must still match "
            "exactly — the batch-vs-row regression gate)"
        ),
    )
    check.add_argument("--rel-time", type=float, default=0.01, help="relative time tolerance")
    check.add_argument("--abs-time", type=float, default=1e-9, help="absolute time tolerance")
    check.add_argument("--rel-dief", type=float, default=0.01, help="relative dief tolerance")
    check.add_argument("--abs-dief", type=float, default=1e-9, help="absolute dief tolerance")
    check.add_argument("--format", choices=("text", "json"), default="text")
    check.add_argument(
        "--report", help="also write the full diff report (JSON) to this path"
    )
    check.set_defaults(func=cmd_bench)

    stats = sub.add_parser(
        "stats",
        help=(
            "optimizer statistics: snapshot catalog + observed cardinalities "
            "to JSON, or inspect a stored snapshot (catalog-version gated)"
        ),
    )
    stats_sub = stats.add_subparsers(dest="stats_command", required=True)
    collect = stats_sub.add_parser(
        "collect",
        help=(
            "collect catalog statistics and seed the observed-cardinality "
            "store by running benchmark queries observed"
        ),
    )
    _add_common(collect)
    collect.add_argument(
        "--queries",
        help="comma-separated benchmark names to run observed (default Q1-Q5)",
    )
    collect.add_argument("--policy", choices=sorted(POLICIES), default="cost")
    collect.add_argument("--network", choices=sorted(NETWORKS), default="nodelay")
    collect.add_argument(
        "--output", default="STATS.json", help="where to write the statistics document"
    )
    collect.set_defaults(func=cmd_stats)
    show = stats_sub.add_parser(
        "show", help="render a stored statistics document (and verify freshness)"
    )
    _add_common(show)
    show.add_argument(
        "stats_file", nargs="?", default="STATS.json", help="statistics document to read"
    )
    show.add_argument(
        "--no-verify",
        action="store_true",
        help="skip rebuilding the lake to validate the stored catalog version",
    )
    show.add_argument(
        "--limit", type=int, default=10, help="observed records to print (-1 = all)"
    )
    show.set_defaults(func=cmd_stats)

    trace = sub.add_parser(
        "trace",
        help="answer traces (Figure 2 style) or Chrome trace-event export",
    )
    _add_common(trace)
    trace.add_argument("query", help="benchmark name, SPARQL text or @file")
    trace.add_argument("--policies", default="unaware,aware")
    trace.add_argument("--networks", default="gamma3")
    trace.add_argument("--width", type=int, default=72)
    trace.add_argument("--height", type=int, default=14)
    trace.add_argument(
        "--format",
        choices=("ascii", "chrome", "csv"),
        default="ascii",
        help=(
            "ascii answer-trace plot, Chrome trace-event JSON (open in "
            "Perfetto / chrome://tracing), or the plot's CSV series"
        ),
    )
    trace.add_argument("--output", help="write the rendering to a file instead of stdout")
    trace.add_argument(
        "--validate",
        action="store_true",
        help="validate the Chrome export against the trace-event schema first",
    )
    trace.set_defaults(func=cmd_trace)

    serve = sub.add_parser(
        "serve",
        help=(
            "run the multi-tenant query service (asyncio HTTP daemon over "
            "an engine pool with shared caches and admission control)"
        ),
    )
    _add_common(serve)
    _add_service_common(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8089, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--check",
        action="store_true",
        help="validate the configuration and print it without binding",
    )
    serve.add_argument(
        "--journal",
        dest="journal_path",
        help="stream the structured event journal (canonical JSONL) to this path",
    )
    serve.set_defaults(func=cmd_serve)

    loadtest = sub.add_parser(
        "loadtest",
        help=(
            "seeded closed-loop load test of the service stack in virtual "
            "time (deterministic per --load-seed); writes BENCH_service.json"
        ),
    )
    _add_common(loadtest)
    _add_service_common(loadtest)
    # The driver never binds a socket; host/port only feed config validation.
    loadtest.add_argument("--host", default="127.0.0.1", help=argparse.SUPPRESS)
    loadtest.add_argument("--port", type=int, default=0, help=argparse.SUPPRESS)
    loadtest.add_argument("--clients", type=int, default=1000, help="simulated clients")
    loadtest.add_argument(
        "--requests-per-client", type=int, default=1, help="closed-loop rounds"
    )
    loadtest.add_argument(
        "--tenant-count", type=int, default=4, help="simulated tenants (t0..tN-1)"
    )
    loadtest.add_argument(
        "--tenant-skew", type=float, default=1.2, help="Zipf skew over tenants"
    )
    loadtest.add_argument(
        "--hot-fraction",
        type=float,
        default=0.8,
        help="probability a request draws from the hot query set",
    )
    loadtest.add_argument(
        "--cold-variants",
        type=int,
        default=20,
        help="distinct cold query texts (plan-cache misses)",
    )
    loadtest.add_argument(
        "--mean-interarrival",
        type=float,
        default=0.05,
        help="mean gap between client arrivals (virtual seconds)",
    )
    loadtest.add_argument(
        "--mean-think",
        type=float,
        default=2.0,
        help="mean client think time between requests (virtual seconds)",
    )
    loadtest.add_argument(
        "--load-seed", type=int, default=42, help="workload seed (determinism)"
    )
    loadtest.add_argument(
        "--no-verify",
        action="store_true",
        help="skip per-request answer verification against a reference engine",
    )
    loadtest.add_argument(
        "--include-requests",
        action="store_true",
        help="embed every per-request outcome in the report JSON",
    )
    loadtest.add_argument(
        "--output",
        default="BENCH_service.json",
        help="report path ('' to skip writing)",
    )
    loadtest.add_argument(
        "--trace-output", help="also write a Chrome trace of the schedule"
    )
    loadtest.add_argument(
        "--journal",
        help="write the run's event journal as canonical JSONL to this path",
    )
    loadtest.add_argument(
        "--no-telemetry",
        action="store_true",
        help=(
            "run without the SLO accountant and event journal (the report "
            "fingerprint is bit-identical either way)"
        ),
    )
    loadtest.set_defaults(func=cmd_loadtest)

    critpath = sub.add_parser(
        "critpath",
        help=(
            "exact critical-path attribution: blame every virtual second on "
            "engine work, cache-miss penalty or network delay — per query, "
            "grid-aggregated, with snapshot/check as the regression gate"
        ),
    )
    _add_common(critpath)
    critpath.add_argument(
        "--queries", help="comma-separated benchmark names (default Q1-Q5)"
    )
    critpath.add_argument(
        "--networks", help="comma-separated network names (default all four)"
    )
    critpath.add_argument(
        "--runtimes",
        help="comma-separated runtimes (default sequential,event,thread)",
    )
    critpath.add_argument("--policy", choices=sorted(POLICIES), default="aware")
    critpath.add_argument(
        "--delay-scale",
        type=float,
        default=1.0,
        help=(
            "multiply every network-delay sample by this factor (the "
            "doctor's regression-injection counterfactual)"
        ),
    )
    critpath.add_argument(
        "--format",
        choices=("text", "json", "chrome"),
        default="text",
        help=(
            "text tables, JSON report dicts, or a Chrome trace with the "
            "blame tiling overlaid as an extra track (first cell only)"
        ),
    )
    critpath.add_argument(
        "--output", help="write the rendering to a file instead of stdout"
    )
    critpath.add_argument(
        "--snapshot",
        help="run the grid and write the canonical baseline JSON to this path",
    )
    critpath.add_argument(
        "--check",
        help=(
            "re-run a committed baseline's grid (the file defines lake and "
            "axes) and exit nonzero on any fraction-level mismatch"
        ),
    )
    critpath.set_defaults(func=cmd_critpath)

    doctor = sub.add_parser(
        "doctor",
        help=(
            "regression-attribution doctor: rank evidence-linked findings "
            "from the committed baselines and a journal (SLO burn, cache "
            "hit-ratio drops, q-error hotspots, heuristic misfires, "
            "critical-path drift)"
        ),
    )
    doctor.add_argument(
        "--critpath-baseline",
        default="BENCH_critpath.json",
        help="committed attribution baseline (skipped when absent)",
    )
    doctor.add_argument(
        "--plan-quality",
        default="BENCH_plan_quality.json",
        help="committed plan-quality baseline (skipped when absent)",
    )
    doctor.add_argument(
        "--telemetry",
        default="BENCH_telemetry.json",
        help="committed telemetry baseline (skipped when absent)",
    )
    doctor.add_argument(
        "--journal",
        help="event journal JSONL to rebuild the live SLO snapshot from",
    )
    doctor.add_argument(
        "--delay-scale",
        type=float,
        default=1.0,
        help=(
            "re-measure the critpath grid with delays scaled by this factor "
            "— the doctor should attribute the injected drift to "
            "network_delay on the affected source"
        ),
    )
    doctor.add_argument(
        "--queries", help="restrict the critpath re-measure to these queries"
    )
    doctor.add_argument(
        "--networks", help="restrict the critpath re-measure to these networks"
    )
    doctor.add_argument(
        "--runtimes", help="restrict the critpath re-measure to these runtimes"
    )
    doctor.add_argument("--format", choices=("text", "json"), default="text")
    doctor.add_argument(
        "--fail-on",
        choices=("critical", "warning", "info", "never"),
        default="critical",
        help="exit nonzero when a finding at or above this severity exists",
    )
    doctor.set_defaults(func=cmd_doctor)

    journal = sub.add_parser(
        "journal", help="event-journal tooling (integrity verification)"
    )
    journal_sub = journal.add_subparsers(dest="journal_command", required=True)
    journal_verify = journal_sub.add_parser(
        "verify",
        help=(
            "re-check a journal file's SHA-256 seal fingerprint and per-line "
            "schema; exits nonzero on tamper or truncation"
        ),
    )
    journal_verify.add_argument("journal_file", help="journal JSONL path")
    journal_verify.add_argument(
        "--allow-unsealed",
        action="store_true",
        help="accept files without a seal line (schema checks still apply)",
    )
    journal_verify.set_defaults(func=cmd_journal)

    slo = sub.add_parser(
        "slo",
        help=(
            "per-tenant SLO reporting (latency percentiles, shed/timeout/"
            "error rates, fair-share utilization)"
        ),
    )
    slo_sub = slo.add_subparsers(dest="slo_command", required=True)
    slo_report = slo_sub.add_parser(
        "report",
        help=(
            "render the SLO snapshot of an event journal (--journal) or a "
            "live server (--url)"
        ),
    )
    slo_report.add_argument(
        "--journal",
        help="event journal JSONL (from 'loadtest --journal' or 'serve --journal')",
    )
    slo_report.add_argument(
        "--url",
        help="base URL of a running service (e.g. http://127.0.0.1:8089)",
    )
    slo_report.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    slo_report.add_argument(
        "--tenant",
        help="show only this tenant's row (text mode; unknown tenants fail loudly)",
    )
    slo_report.set_defaults(func=cmd_slo_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
