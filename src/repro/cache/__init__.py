"""The caching subsystem.

Federated query engines amortize per-query work aggressively: FedX caches
source-selection outcomes, Odyssey reuses precomputed per-source statistics.
This package brings the same levers to our pipeline, at three layers:

* a **plan cache** (:class:`CacheRegistry.plans`) — canonicalized query text
  + plan-policy fingerprint + network setting + the lake's catalog version
  map to a fully built :class:`~repro.core.planner.FederatedPlan`, skipping
  parse / decompose / source-select / heuristics / translate entirely;
* a **wrapper sub-result cache** (:class:`CacheRegistry.subresults`) —
  recorded per-source result streams keyed on (source, native query,
  restriction, data version), replayed with *identical* virtual-time
  charges so benchmarks stay bit-identical under a fixed seed;
* **memoized compilation** — pure-function caches for LIKE-regex and
  predicate compilation (:mod:`repro.relational.executor`) and star→SQL
  translation (:mod:`repro.mapping.translator`).

Everything here is dependency-free (no imports from the rest of ``repro``)
so any layer may use it without cycles.  All caches are LRU-bounded and
expose hit/miss/eviction counters.
"""

from .keys import canonicalize_query, sparql_result_key, sql_result_key
from .lru import CacheStats, LRUCache
from .recording import RecordedSparqlResult, RecordedSqlResult
from .registry import CacheRegistry

__all__ = [
    "CacheRegistry",
    "CacheStats",
    "LRUCache",
    "RecordedSparqlResult",
    "RecordedSqlResult",
    "canonicalize_query",
    "sparql_result_key",
    "sql_result_key",
]
