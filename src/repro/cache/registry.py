"""The per-engine (or pool-shared) bundle of caches.

One :class:`CacheRegistry` lives on each
:class:`~repro.core.engine.FederatedEngine` and travels into executions via
:attr:`~repro.federation.answers.RunContext.caches`, where the wrappers
consult it.  Registries default to engine-local because recorded
source-cost deltas depend on the engine's cost model: sharing a registry
across engines with *different* cost models would replay wrong charges.
A pool of engines with identical lake/policy/network/cost-model settings
may share one registry (``FederatedEngine(caches=...)``); the underlying
LRU caches are internally locked, so cross-engine (and cross-thread) use
is safe — this is what the multi-tenant service layer does.
"""

from __future__ import annotations

from .lru import CacheStats, LRUCache


class CacheRegistry:
    """Plan cache + wrapper sub-result cache, with aggregate reporting."""

    def __init__(
        self,
        plan_capacity: int = 256,
        subresult_capacity: int = 1024,
        plans_enabled: bool = True,
        subresults_enabled: bool = True,
    ):
        self.plans = LRUCache(plan_capacity, enabled=plans_enabled)
        self.subresults = LRUCache(subresult_capacity, enabled=subresults_enabled)

    def clear(self) -> None:
        self.plans.clear()
        self.subresults.clear()

    def stats(self) -> dict[str, CacheStats]:
        return {"plans": self.plans.stats(), "subresults": self.subresults.stats()}

    def describe(self) -> str:
        lines = []
        for name, stats in self.stats().items():
            state = "on" if getattr(self, name).enabled else "off"
            lines.append(
                f"{name} [{state}] size={stats.size}/{stats.capacity} "
                f"hits={stats.hits} misses={stats.misses} "
                f"evictions={stats.evictions} hit_rate={stats.hit_rate:.2%}"
            )
        return "\n".join(lines)
