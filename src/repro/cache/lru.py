"""A counted, bounded, thread-safe LRU cache.

Plain ``functools.lru_cache`` memoizes functions; the engine's caches need
explicit get/put (keys carry data versions computed at call time), runtime
enable/disable, and observable counters — hence this small class.

Every operation (including the counter increments) runs under one
re-entrant lock: the service layer shares one registry across a pool of
engines whose executions run on worker threads, and unlocked ``hits += 1``
increments are read-modify-write sequences that lose updates under
contention — ``stats()`` would then drift from the true lookup count.
The lock is uncontended in single-engine use and its cost is per wrapper
*execution*, not per row, so the hot data plane is unaffected.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Iterator


@dataclass
class CacheStats:
    """Lifetime counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """Least-recently-used cache with hit/miss/eviction accounting.

    A disabled cache misses every lookup and drops every put, so call
    sites never need to branch on the flag themselves.  Safe for
    concurrent use from multiple engines/threads; ``stats()`` snapshots
    the counters atomically.
    """

    def __init__(self, capacity: int = 256, enabled: bool = True):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._entries))

    def get(self, key: Hashable) -> Any | None:
        """The cached value, refreshing recency; None (and a miss) if absent."""
        with self._lock:
            if not self.enabled:
                self.misses += 1
                return None
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if not self.enabled:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; True when it existed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
