"""Cache-key construction.

Keys embed every input that can change the cached value — most importantly
the *data version* of the underlying source (see
:attr:`repro.relational.database.Database.data_version` and
:attr:`repro.rdf.graph.Graph.version`), so stale entries are never served:
a write bumps the version, the next lookup misses, and the stale entry ages
out of the LRU.
"""

from __future__ import annotations

from typing import Hashable

_WHITESPACE = " \t\r\n\f\v"


def canonicalize_query(text: str) -> str:
    """Normalize query text for cache keying.

    Collapses runs of whitespace to one space and strips ``#`` comments —
    but only *outside* quoted literals, so queries differing inside a
    string constant never share a key.  Purely lexical: two differently
    written but semantically equal queries may still key separately, which
    costs a duplicate entry, never a wrong answer.
    """
    out: list[str] = []
    quote: str | None = None
    pending_space = False
    i = 0
    n = len(text)
    while i < n:
        char = text[i]
        if quote is not None:
            out.append(char)
            if char == "\\" and i + 1 < n:
                out.append(text[i + 1])
                i += 2
                continue
            if char == quote:
                quote = None
            i += 1
            continue
        if char in _WHITESPACE:
            pending_space = True
            i += 1
            continue
        if char == "#":  # comment to end of line
            while i < n and text[i] != "\n":
                i += 1
            pending_space = True
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        if char in "\"'":
            quote = char
        out.append(char)
        i += 1
    return "".join(out)


def sql_result_key(source_id: str, sql: str, data_version: Hashable) -> tuple:
    """Key of one relational wrapper sub-result.

    The SQL text already serializes the translated stars, pushed filters
    and any dependent-join IN restriction, so it is the complete "native
    query" component of the key.
    """
    return ("sql", source_id, sql, data_version)


def sparql_result_key(
    source_id: str,
    patterns: str,
    filters: str,
    bindings: Hashable,
    data_version: Hashable,
) -> tuple:
    """Key of one RDF wrapper sub-result (star + pushed filters + VALUES)."""
    return ("sparql", source_id, patterns, filters, bindings, data_version)
