"""Recorded wrapper result streams and their virtual-time-neutral replay.

The semantics guard of the sub-result cache: **cache saves wall-clock, not
virtual time**.  A warm replay must charge the run context exactly what the
cold run charged, in the same order, consuming the same RNG draws — so the
virtual timeline (and therefore every benchmark number under a fixed seed)
is bit-identical whether a stream came from the source or from the cache.

Charge sequences mirrored here (see ``federation/wrappers.py``):

* relational rows: ``charge_source(delta)`` then ``charge_message`` per SQL
  row (rows whose solution reconstruction yields NULL still cross the
  network), plus one residual ``charge_source`` after the last row;
* RDF matches: ``charge_source(lookup)`` per BGP match, plus
  ``charge_source(output)`` + ``charge_message`` for matches that survive
  restriction/filtering.

``charge_request`` (one RNG draw) is issued by the wrapper before replay,
just as before a cold execution.  Replays are generators: charges happen
lazily as downstream operators pull, preserving the interleaving of RNG
draws across concurrently-pulled plan branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

#: A recorded relational row event: (source-cost delta, solution-or-None).
SqlRowEvent = tuple[float, dict | None]


@dataclass
class RecordedSqlResult:
    """The replayable trace of one relational wrapper execution."""

    rows: list[SqlRowEvent] = field(default_factory=list)
    residual_cost: float = 0.0

    def replay(self, source_id: str, context: Any) -> Iterator[dict]:
        for delta, solution in self.rows:
            context.charge_source(source_id, delta)
            context.charge_message(source_id)
            if solution is not None:
                yield dict(solution)
        context.charge_source(source_id, self.residual_cost)


@dataclass
class RecordedSparqlResult:
    """The replayable trace of one RDF wrapper execution.

    ``matches`` holds one entry per BGP match: the emitted solution, or
    None for matches dropped at the source by the VALUES restriction or a
    pushed filter (those still cost their lookups, but never cross the
    network).
    """

    matches: list[dict | None] = field(default_factory=list)
    lookup_cost: float = 0.0
    output_cost: float = 0.0

    def replay(self, source_id: str, context: Any) -> Iterator[dict]:
        for solution in self.matches:
            context.charge_source(source_id, self.lookup_cost)
            if solution is None:
                continue
            context.charge_source(source_id, self.output_cost)
            context.charge_message(source_id)
            yield dict(solution)
