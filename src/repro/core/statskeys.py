"""Stable signatures identifying plan units for observed statistics.

The cost-based optimizer learns from executions: every run's per-operator
actual cardinalities are keyed by a *signature* of the logical work the
operator performed, so a later planning pass (of the same query or any
query containing the same star) can look the observation up.  Signatures
therefore must be

* **placement-invariant** — a star's output rows are the same whether its
  filters ran at the source or at the engine, so the signature hashes the
  star's *logical* content (predicates + all filter expressions), never
  the chosen physical placement;
* **order-invariant for joins** — ``A ⋈ B`` and ``B ⋈ A`` produce the same
  multiset, so a join signature is the sorted set of member unit
  signatures;
* **plain data** — nested tuples of strings, so they serialize to JSON
  (the observed-stats store persists across processes) and hash cheaply.

The planner stamps these onto operators as ``stats_signature`` (planning
metadata, like ``estimated_rows``); ingestion walks an observed plan and
records each stamped operator's actual ``rows_out`` under its signature.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .decomposer import StarSubquery
    from .heuristics import MergeGroup
    from .source_selection import SelectedStar


def _term_text(term) -> str:
    n3 = getattr(term, "n3", None)
    if callable(n3):
        return n3()
    return str(term)


def star_signature(star: "StarSubquery") -> tuple:
    """The logical identity of one star-shaped sub-query.

    Predicates plus filter expressions; the subject variable name is
    deliberately excluded so textually renamed but structurally identical
    stars share observations.
    """
    predicates = tuple(sorted(_term_text(pattern.predicate) for pattern in star.patterns))
    filters = tuple(sorted(_term_text(f.expression) for f in star.filters))
    return ("star", predicates, filters)


def unit_signature(source_ids: Iterable[str], stars: Iterable["StarSubquery"]) -> tuple:
    """The identity of one plan unit (a merged group or a selected star)."""
    return (
        "unit",
        tuple(sorted(source_ids)),
        tuple(sorted(star_signature(star) for star in stars)),
    )


def unit_signature_for(unit: "MergeGroup | SelectedStar") -> tuple:
    """Signature of a planner unit-log entry (MergeGroup or SelectedStar)."""
    if hasattr(unit, "stars"):  # MergeGroup
        return unit_signature([unit.source_id], unit.stars)
    return unit_signature(
        (candidate.source_id for candidate in unit.candidates), [unit.star]
    )


def join_signature(member_signatures: Iterable[tuple]) -> tuple:
    """The order-invariant identity of a join over plan units."""
    return ("join", tuple(sorted(member_signatures)))
