"""Execution profiling: EXPLAIN ANALYZE for federated plans.

Wraps every operator of a plan so that each produced solution is counted
and timestamped against the run's virtual clock, yielding a per-operator
report (output cardinality, first/last output time) alongside the answers.
This is the observability layer the paper's analysis section leans on when
it attributes costs to the engine vs the wrappers.

Profiling always executes under the *sequential* runtime: instrumentation
rebinds ``execute`` on each pull-based operator instance, which has no
equivalent in the event scheduler's push-mode nodes.  Engines configured
with ``runtime="event"``/``"thread"`` still profile sequentially — the
answer multiset is runtime-invariant, only the timeline differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..federation.answers import RunContext, Solution
from ..federation.operators import FedOperator
from .planner import FederatedPlan


@dataclass
class OperatorProfile:
    """Measurements of one operator within one execution."""

    label: str
    depth: int
    rows_out: int = 0
    first_output_at: float | None = None
    last_output_at: float | None = None

    def record(self, timestamp: float) -> None:
        self.rows_out += 1
        if self.first_output_at is None:
            self.first_output_at = timestamp
        self.last_output_at = timestamp


@dataclass
class ProfileReport:
    """All operator profiles of one run, in plan (pre-order) order."""

    entries: list[OperatorProfile] = field(default_factory=list)
    execution_time: float = 0.0
    #: The run's cache behaviour (from ``ExecutionStats.cache_summary``);
    #: None for runs executed without a cache registry.
    cache_summary: str | None = None

    def render(self) -> str:
        lines = [f"Profile (virtual execution time {self.execution_time:.4f}s)"]
        for entry in self.entries:
            first = (
                f"{entry.first_output_at:.4f}s"
                if entry.first_output_at is not None
                else "-"
            )
            last = (
                f"{entry.last_output_at:.4f}s"
                if entry.last_output_at is not None
                else "-"
            )
            lines.append(
                f"{'  ' * entry.depth}{entry.label}  "
                f"[rows={entry.rows_out} first={first} last={last}]"
            )
        if self.cache_summary is not None:
            lines.append(f"caches: {self.cache_summary}")
        return "\n".join(lines)

    def by_label(self, fragment: str) -> OperatorProfile:
        for entry in self.entries:
            if fragment in entry.label:
                return entry
        raise KeyError(fragment)


def _instrument(
    operator: FedOperator,
    depth: int,
    context: RunContext,
    report: ProfileReport,
) -> None:
    profile = OperatorProfile(label=operator.label(), depth=depth)
    report.entries.append(profile)
    original_execute = operator.execute

    def traced_execute(run_context: RunContext) -> Iterator[Solution]:
        for solution in original_execute(run_context):
            profile.record(context.now())
            yield solution

    # Per-instance override: plans are built per query, so this never leaks.
    operator.execute = traced_execute  # type: ignore[method-assign]
    for child in operator.children():
        _instrument(child, depth + 1, context, report)


def profile_plan(
    plan: FederatedPlan, context: RunContext
) -> tuple[list[Solution], ProfileReport]:
    """Execute *plan* under *context* with per-operator instrumentation."""
    report = ProfileReport()
    _instrument(plan.root, 0, context, report)
    answers = []
    for solution in plan.root.execute(context):
        context.stats.record_answer(context.now())
        answers.append(solution)
    context.stats.execution_time = context.now()
    report.execution_time = context.stats.execution_time
    if context.caches is not None:
        report.cache_summary = context.stats.cache_summary()
    return answers, report
