"""Execution profiling: EXPLAIN ANALYZE for federated plans.

Compatibility facade.  The profiler migrated onto the observation bus
(:mod:`repro.obs`) so that all three runtimes — sequential, event, thread —
feed the same per-operator report; :class:`OperatorProfile` and
:class:`ProfileReport` are re-exported from :mod:`repro.obs.profile`, and
:func:`profile_plan` below is a thin wrapper over
:class:`~repro.obs.RunObservation` + the sequential instrumenter.

The historical implementation rebound ``execute`` on each operator and
never restored it.  That was harmless while plans were built per query,
but the plan cache (PR 1) made plan objects long-lived: a cached plan
profiled once kept its traced closures and double-counted on the next
profile.  The bus-backed instrumenter restores every rebinding in a
``finally`` (see :mod:`repro.obs.instrument`), closing that hole.
"""

from __future__ import annotations

from ..federation.answers import RunContext, Solution
from ..obs.instrument import instrument_sequential
from ..obs.observation import RunObservation
from ..obs.profile import OperatorProfile, ProfileReport
from .planner import FederatedPlan

__all__ = ["OperatorProfile", "ProfileReport", "profile_plan"]


def profile_plan(
    plan: FederatedPlan, context: RunContext
) -> tuple[list[Solution], ProfileReport]:
    """Execute *plan* under *context* with per-operator instrumentation.

    Sequential-runtime only (drives ``plan.root.execute`` directly); for
    profiling under the event/thread runtimes go through
    :meth:`repro.core.engine.FederatedEngine.profile`.  The plan is
    guaranteed to leave uninstrumented even on error or early abandonment.
    """
    observation = RunObservation()
    observation.register_plan(plan)
    if context.obs is None:
        context.obs = observation
    restore = instrument_sequential(plan.root, observation, context)
    answers = []
    try:
        for solution in plan.root.execute(context):
            context.stats.record_answer(context.now())
            answers.append(solution)
    finally:
        restore()
        context.stats.execution_time = context.now()
    report = observation.profile_report(context.stats)
    if context.caches is not None:
        report.cache_summary = context.stats.cache_summary()
    return answers, report
