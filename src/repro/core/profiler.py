"""Deprecated execution-profiling facade — use :mod:`repro.obs` instead.

The profiler migrated onto the observation bus (:mod:`repro.obs`) so that
all three runtimes — sequential, event, thread — feed the same per-operator
report; :class:`OperatorProfile`, :class:`ProfileReport` and
:func:`profile_plan` now live there (``repro.obs.profile`` /
``repro.obs.instrument``) and are re-exported here for callers that still
import the historical location.  Importing this module emits a
:class:`DeprecationWarning`; switch to ``repro.obs`` (or, for end-to-end
profiling, :meth:`repro.core.engine.FederatedEngine.profile`).
"""

from __future__ import annotations

import warnings

from ..obs.instrument import profile_plan
from ..obs.profile import OperatorProfile, ProfileReport

__all__ = ["OperatorProfile", "ProfileReport", "profile_plan"]

warnings.warn(
    "repro.core.profiler is deprecated; import OperatorProfile/ProfileReport/"
    "profile_plan from repro.obs (or use FederatedEngine.profile) instead",
    DeprecationWarning,
    stacklevel=2,
)
