"""The federated query engine facade (our Ontario).

:class:`FederatedEngine` receives SPARQL queries, plans them under a
:class:`~repro.core.policy.PlanPolicy` and a network setting, and streams
answers through the ANAPSID-style operators while a shared clock accumulates
the virtual execution timeline.  Every produced answer is timestamped,
yielding the answer traces of the paper's Figure 2.
"""

from __future__ import annotations

import os
from typing import Iterator, TYPE_CHECKING

from ..cache import CacheRegistry, CacheStats, canonicalize_query
from ..federation.answers import (
    DEFAULT_BATCH_SIZE,
    EXEC_MODES,
    ExecutionStats,
    RunContext,
    Solution,
)
from ..network.clock import Clock, VirtualClock
from ..network.costmodel import CostModel, DEFAULT_COST_MODEL
from ..network.delays import NetworkSetting
from ..sparql.algebra import SelectQuery
from .planner import FederatedPlan, FederatedPlanner
from .policy import PlanPolicy

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> datalake cycle
    from ..datalake.lake import SemanticDataLake


def _resolve_batch_size(batch_size: int | None) -> int:
    """Resolve the effective batch size: explicit arg > env var > default."""
    if batch_size is None:
        raw = os.environ.get("REPRO_BATCH_SIZE")
        if raw is None:
            return DEFAULT_BATCH_SIZE
        try:
            batch_size = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_BATCH_SIZE must be an integer, got {raw!r}"
            ) from None
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")
    return batch_size


class ResultStream:
    """A streamed query result.

    Iterate to pull answers (driving the virtual clock); ``stats`` is
    complete once the stream is exhausted.  :meth:`collect` pulls everything
    and returns the answer list.

    ``stats.execution_time`` tracks the clock after every answer and is
    finalized when the stream ends — including when the consumer abandons
    it early (a LIMIT consumer breaking out closes the generator, which
    lands in the ``finally`` below), so traces from partial consumption
    are well-defined under every runtime.
    """

    def __init__(
        self,
        plan: FederatedPlan,
        context: RunContext,
        runtime: str = "sequential",
        thread_workers: int | None = None,
    ):
        self.plan = plan
        self.context = context
        self.runtime = runtime
        #: The run's :class:`~repro.obs.observation.RunObservation` (alias
        #: of ``context.obs``), or None for an unobserved run.
        self.observation = context.obs
        self._thread_workers = thread_workers
        self._iterator = self._run()
        self._exhausted = False

    def _run(self) -> Iterator[Solution]:
        stats = self.context.stats
        observation = self.observation
        restore = None
        try:
            if self.runtime == "sequential":
                if observation is not None:
                    from ..obs import instrument_sequential

                    restore = instrument_sequential(
                        self.plan.root, observation, self.context
                    )
                if self.context.exec_mode == "batch":
                    # record_answer and materialize, inlined: same counter
                    # updates and trace entries, minus two calls per answer.
                    # An unobserved Project root is fused into this loop:
                    # its per-row charge is issued here and the answer dict
                    # is built straight from the kept input columns, which
                    # skips one generator hop and the aliased projected
                    # batch (observed runs keep the operator so obs
                    # instrumentation sees it).
                    from ..federation.operators import Project

                    context = self.context
                    clock_now = context.clock.now
                    trace_append = stats.trace.append
                    answers = stats.answers
                    root = self.plan.root
                    fused_cost = 0.0
                    if observation is None and type(root) is Project:
                        project_names = root.variables
                        fused_cost = context.cost_model.engine_project_row
                        stream = root.child.execute_batch(context)
                    else:
                        project_names = None
                        stream = root.execute_batch(context)
                    clock = context.clock
                    virtual = type(clock) is VirtualClock
                    positive = fused_cost > 0
                    derived: dict[int, tuple] = {}
                    for batch, idx in stream:
                        if project_names is not None:
                            if positive:
                                if virtual:
                                    clock._now += fused_cost
                                else:
                                    clock.sleep(fused_cost)
                                stats.engine_cost += fused_cost
                            entry = derived.get(id(batch))
                            if entry is None:
                                index = batch.index
                                columns = batch.columns
                                derived[id(batch)] = entry = (
                                    batch,
                                    [
                                        (name, columns[index[name]])
                                        for name in project_names
                                        if name in index
                                    ],
                                )
                            pairs = entry[1]
                        else:
                            pairs = batch.pairs
                        now = clock._now if virtual else clock_now()
                        answers += 1
                        stats.answers = answers
                        if stats.time_to_first_answer is None:
                            stats.time_to_first_answer = now
                        trace_append((now, answers))
                        stats.execution_time = now
                        yield {
                            name: value
                            for name, column in pairs
                            if (value := column[idx]) is not None
                        }
                else:
                    for solution in self.plan.root.execute(self.context):
                        stats.record_answer(self.context.now())
                        stats.execution_time = self.context.now()
                        yield solution
            else:
                from ..runtime import EventScheduler

                workers = self._thread_workers if self.runtime == "thread" else None
                scheduler = EventScheduler(
                    self.plan.root, self.context, pool_workers=workers
                )
                for timestamp, solution in scheduler.run():
                    stats.record_answer(timestamp)
                    stats.execution_time = self.context.now()
                    yield solution
            self._exhausted = True
        finally:
            # Restore BEFORE finalizing: a plan must never leave an observed
            # run still carrying traced closures (the plan cache hands the
            # same object to later executions).
            if restore is not None:
                restore()
            stats.execution_time = self.context.now()
            if observation is not None:
                observation.finalize(stats)

    def __iter__(self) -> Iterator[Solution]:
        return self._iterator

    def __next__(self) -> Solution:
        return next(self._iterator)

    def collect(self) -> list[Solution]:
        return list(self._iterator)

    @property
    def stats(self) -> ExecutionStats:
        return self.context.stats

    @property
    def exhausted(self) -> bool:
        return self._exhausted


class FederatedEngine:
    """SPARQL query engine over a Semantic Data Lake.

    Example:
        >>> engine = FederatedEngine(lake, policy=PlanPolicy.physical_design_aware(),
        ...                          network=NetworkSetting.gamma2())
        >>> result = engine.execute(query_text, seed=1)
        >>> answers = result.collect()
        >>> result.stats.execution_time    # virtual seconds
    """

    def __init__(
        self,
        lake: SemanticDataLake,
        policy: PlanPolicy | None = None,
        network: NetworkSetting | None = None,
        cost_model: CostModel | None = None,
        enable_plan_cache: bool = True,
        enable_subresult_cache: bool = True,
        plan_cache_size: int = 256,
        subresult_cache_size: int = 1024,
        debug_validate: bool | None = None,
        runtime: str = "sequential",
        thread_workers: int | None = None,
        exec: str = "row",
        batch_size: int | None = None,
        caches: CacheRegistry | None = None,
    ):
        self.lake = lake
        self.policy = policy or PlanPolicy.physical_design_aware()
        self.network = network or NetworkSetting.no_delay()
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        from ..runtime import RUNTIMES

        if runtime not in RUNTIMES:
            raise ValueError(f"unknown runtime {runtime!r}; choose from {RUNTIMES}")
        if exec not in EXEC_MODES:
            raise ValueError(f"unknown exec mode {exec!r}; choose from {EXEC_MODES}")
        #: Default data-plane mode: "row" (one dict per answer) or "batch"
        #: (columnar solution batches on the hot path — same virtual
        #: timeline, faster wall-clock).  Overridable per call.
        self.exec = exec
        #: Default capacity of one solution batch (None = REPRO_BATCH_SIZE
        #: env var, falling back to the library default).
        self.batch_size = _resolve_batch_size(batch_size)
        #: Default execution runtime: "sequential" (pull-based iterator
        #: chain), "event" (discrete-event scheduler with overlapping
        #: source delays), or "thread" (event semantics + a wrapper thread
        #: pool).  Overridable per call on :meth:`execute` / :meth:`run`.
        self.runtime = runtime
        #: Pool width for the "thread" runtime; None picks a small default.
        self.thread_workers = thread_workers
        #: None defers to the REPRO_DEBUG_VALIDATE env var (see planner).
        self.debug_validate = debug_validate
        # Effective switches: both the engine flag and the policy flag must
        # be on.  The registry defaults to engine-local because recorded
        # sub-results price source work under this engine's cost model; a
        # pool of engines with identical settings may pass a shared
        # registry via ``caches=`` (the service layer's configuration —
        # the LRU caches are internally locked, so cross-engine use is
        # safe).  Callers sharing a registry own its sizing/enablement.
        # Cost-based optimization state, created lazily (heuristic-policy
        # engines never import repro.optimizer).
        self._observed_stats = None
        self._catalog_stats = None
        if caches is not None:
            self.caches = caches
        else:
            self.caches = CacheRegistry(
                plan_capacity=plan_cache_size,
                subresult_capacity=subresult_cache_size,
                plans_enabled=enable_plan_cache and self.policy.use_plan_cache,
                subresults_enabled=(
                    enable_subresult_cache and self.policy.use_subresult_cache
                ),
            )

    @property
    def observed_stats(self):
        """The engine's observed-cardinality store (created on demand).

        Fed by :meth:`ingest_observation`; consulted only by cost-based
        planning, where its revision is part of the plan-cache key — so
        ingesting observations transparently invalidates cached cost plans
        while heuristic plans (which never read the store) stay cached.
        """
        if self._observed_stats is None:
            from ..optimizer import ObservedStatistics

            self._observed_stats = ObservedStatistics()
        return self._observed_stats

    def catalog_statistics(self):
        """Deterministic statistics snapshot of the lake, cached per
        catalog version (any mutation re-collects)."""
        version = self.lake.catalog_version()
        cached = self._catalog_stats
        if cached is None or cached.catalog_version != version:
            from ..optimizer import CatalogStatistics

            cached = self._catalog_stats = CatalogStatistics.collect(self.lake)
        return cached

    def ingest_observation(self, observation) -> int:
        """Feed one finished observed run's actual cardinalities to the
        optimizer's store; returns the number of records written."""
        return self.observed_stats.ingest_observation(observation)

    def planner(self, obs=None) -> FederatedPlanner:
        if self.policy.cost_based:
            from ..optimizer import CostBasedPlanner

            return CostBasedPlanner(
                self.lake,
                self.policy,
                self.network,
                catalog_stats=self.catalog_statistics(),
                observed=self.observed_stats,
                cost_model=self.cost_model,
                debug_validate=self.debug_validate,
                obs=obs,
            )
        return FederatedPlanner(
            self.lake,
            self.policy,
            self.network,
            debug_validate=self.debug_validate,
            obs=obs,
        )

    def _plan_cached(
        self, query: SelectQuery | str, obs=None
    ) -> tuple[FederatedPlan, bool | None]:
        """Plan through the plan cache; returns (plan, hit-or-None).

        Only textual queries are cacheable (pre-parsed queries are mutable
        objects without a canonical key).  The key binds the canonicalized
        text to the policy fingerprint, the network setting, and the lake's
        catalog version — so policies, networks, and physical designs can
        never share an entry, and any write to any member source
        invalidates by changing the version vector.

        With an observation attached, fresh planning emits its lifecycle
        instants and a cache hit emits a single plan-cache instant instead
        (the heuristic decisions themselves still reach the explain report
        through the plan's decision log).
        """
        if not isinstance(query, str) or not self.caches.plans.enabled:
            return self.planner(obs=obs).plan(query), None
        key = (
            canonicalize_query(query),
            self.policy.fingerprint(),
            self.network,
            self.lake.catalog_version(),
            # Cost-based plans depend on the observed-stats store: any
            # ingest bumps the revision, so stale cost plans are never
            # served after the optimizer learned better cardinalities.
            self.observed_stats.revision if self.policy.cost_based else None,
        )
        plan = self.caches.plans.get(key)
        if plan is not None:
            if obs is not None:
                obs.plan_cache_event(hit=True)
            return plan, True
        if obs is not None:
            obs.plan_cache_event(hit=False)
        plan = self.planner(obs=obs).plan(query)
        self.caches.plans.put(key, plan)
        return plan, False

    def plan(self, query: SelectQuery | str) -> FederatedPlan:
        """Plan without executing (EXPLAIN)."""
        plan, __ = self._plan_cached(query)
        return plan

    def explain(self, query: SelectQuery | str) -> str:
        return self.plan(query).explain()

    def cache_stats(self) -> dict[str, CacheStats]:
        """Lifetime hit/miss/eviction counters of this engine's caches."""
        return self.caches.stats()

    def clear_caches(self) -> None:
        """Drop every cached plan and sub-result (counters are kept)."""
        self.caches.clear()

    def execute(
        self,
        query: SelectQuery | str,
        seed: int | None = None,
        clock: Clock | None = None,
        runtime: str | None = None,
        observe: bool = False,
        exec: str | None = None,
        batch_size: int | None = None,
    ) -> ResultStream:
        """Plan and execute *query*, returning a streamed result.

        Args:
            query: SPARQL text or a parsed query.
            seed: seed for the delay-sampling RNG (determinism).
            clock: override the default fresh virtual clock (e.g. a
                :class:`~repro.network.clock.RealClock` for live demos).
            runtime: override the engine's default runtime for this call
                ("sequential", "event", or "thread").
            observe: attach a :class:`~repro.obs.RunObservation` collecting
                spans, per-operator profiles and metrics; read it from the
                returned stream's ``observation`` attribute once consumed.
                Timestamps come from the run's virtual clocks, so observed
                timelines are bit-identical to unobserved ones.
            exec: override the engine's data-plane mode for this call
                ("row" or "batch"); answers and virtual times are
                bit-identical either way.
            batch_size: override the batch capacity for this call.
        """
        runtime = runtime or self.runtime
        from ..runtime import RUNTIMES

        if runtime not in RUNTIMES:
            raise ValueError(f"unknown runtime {runtime!r}; choose from {RUNTIMES}")
        exec = exec or self.exec
        if exec not in EXEC_MODES:
            raise ValueError(f"unknown exec mode {exec!r}; choose from {EXEC_MODES}")
        batch_size = (
            self.batch_size if batch_size is None else _resolve_batch_size(batch_size)
        )
        observation = None
        if observe:
            from ..obs import RunObservation

            observation = RunObservation()
            observation.runtime = runtime
        plan, plan_cache_hit = self._plan_cached(query, obs=observation)
        context = RunContext(
            network=self.network,
            cost_model=self.cost_model,
            clock=clock,
            seed=seed,
            caches=self.caches,
            exec_mode=exec,
            batch_size=batch_size,
        )
        context.stats.plan_cache_hit = plan_cache_hit
        if observation is not None:
            observation.register_plan(plan)
            context.obs = observation
        workers = (self.thread_workers or 4) if runtime == "thread" else None
        return ResultStream(plan, context, runtime=runtime, thread_workers=workers)

    def run(
        self,
        query: SelectQuery | str,
        seed: int | None = None,
        runtime: str | None = None,
        exec: str | None = None,
        batch_size: int | None = None,
    ) -> tuple[list[Solution], ExecutionStats]:
        """Execute to completion; returns (answers, stats)."""
        stream = self.execute(
            query, seed=seed, runtime=runtime, exec=exec, batch_size=batch_size
        )
        answers = stream.collect()
        return answers, stream.stats

    def observe(
        self,
        query: SelectQuery | str,
        seed: int | None = None,
        runtime: str | None = None,
    ):
        """Execute to completion with full observation.

        Returns (answers, stats, observation) where *observation* is the
        run's :class:`~repro.obs.RunObservation` — trace bus, per-operator
        profiles, metrics, and (via its exporters) JSON / Chrome-trace
        dumps.  Works under every runtime.
        """
        stream = self.execute(query, seed=seed, runtime=runtime, observe=True)
        answers = stream.collect()
        return answers, stream.stats, stream.observation

    def critpath(
        self,
        query: SelectQuery | str,
        seed: int | None = None,
        runtime: str | None = None,
        exec: str | None = None,
    ):
        """Execute observed and attribute the virtual time exactly.

        Returns (answers, stats, report) where *report* is a
        :class:`~repro.obs.critpath.CriticalPathReport`: the run's
        end-to-end virtual time tiled into blame-class segments that sum
        to it exactly (checked in Fraction arithmetic), with per-source
        attribution and what-if slack.  Works under every runtime.
        """
        from ..obs.critpath import attribute_run

        stream = self.execute(
            query, seed=seed, runtime=runtime, exec=exec, observe=True
        )
        answers = stream.collect()
        report = attribute_run(stream.observation, stream.stats)
        return answers, stream.stats, report

    def analyze(
        self,
        query: SelectQuery | str,
        seed: int | None = None,
        runtime: str | None = None,
        hotspot_count: int = 3,
    ):
        """EXPLAIN ANALYZE with q-error feedback.

        Executes *query* observed and returns (answers, stats, report)
        where *report* is a :class:`~repro.obs.analyze.AnalyzeReport`: per
        operator the planner's cardinality estimate, the observed rows,
        their q-error, and — for the worst-estimated operators — which
        Heuristic-1/Heuristic-2 decisions sat on them.  Cardinalities and
        estimates are runtime-invariant, so all three runtimes report
        identical numbers.
        """
        from ..obs.analyze import analyze_observation

        answers, stats, observation = self.observe(query, seed=seed, runtime=runtime)
        report = analyze_observation(observation, stats, hotspot_count=hotspot_count)
        return answers, stats, report

    def profile(
        self,
        query: SelectQuery | str,
        seed: int | None = None,
        runtime: str | None = None,
    ):
        """EXPLAIN ANALYZE: execute with per-operator instrumentation.

        Returns (answers, stats, report) where *report* is a
        :class:`~repro.obs.ProfileReport`.  Runs on the observation bus, so
        it works under every runtime (sequential instrumentation is undone
        in a ``finally``; the event runtimes use tap nodes and never touch
        the plan), composes with the plan cache, and still exercises (and
        reports) the sub-result cache.
        """
        answers, stats, observation = self.observe(query, seed=seed, runtime=runtime)
        report = observation.profile_report(stats)
        report.cache_summary = stats.cache_summary()
        return answers, stats, report

    def with_policy(self, policy: PlanPolicy) -> "FederatedEngine":
        """A sibling engine differing only in policy."""
        return FederatedEngine(
            self.lake,
            policy,
            self.network,
            self.cost_model,
            runtime=self.runtime,
            exec=self.exec,
            batch_size=self.batch_size,
        )

    def with_network(self, network: NetworkSetting) -> "FederatedEngine":
        """A sibling engine differing only in network setting."""
        return FederatedEngine(
            self.lake,
            self.policy,
            network,
            self.cost_model,
            runtime=self.runtime,
            exec=self.exec,
            batch_size=self.batch_size,
        )
