"""Star-shaped decomposition of SPARQL queries.

Following the paper (and Vidal et al. [22] / ANAPSID / MULDER), a SPARQL
basic graph pattern is partitioned into **star-shaped sub-queries (SSQs)**:
maximal groups of triple patterns sharing the same subject.  SSQs are the
planning unit — each is answered by one source wrapper — and the paper's
Heuristic 1 merges SSQs that live on the same relational endpoint.

A *triple-wise* decomposition (one sub-query per triple pattern, FedX-style)
is also provided for the decomposition ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import PlanningError
from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import IRI, PatternTerm, Variable
from ..sparql.algebra import Filter, GroupGraphPattern, SelectQuery, TriplePattern


@dataclass
class StarSubquery:
    """A star-shaped sub-query: triple patterns sharing one subject.

    Attributes:
        subject: the shared subject (variable or ground term).
        patterns: the star's triple patterns.
        filters: FILTER constraints whose variables all belong to this star.
    """

    subject: PatternTerm
    patterns: list[TriplePattern] = field(default_factory=list)
    filters: list[Filter] = field(default_factory=list)

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result

    def variable_names(self) -> set[str]:
        return {variable.name for variable in self.variables()}

    def predicates(self) -> set[IRI]:
        """Ground predicates of the star (used for source selection)."""
        return {
            pattern.predicate
            for pattern in self.patterns
            if isinstance(pattern.predicate, IRI)
        }

    def type_constraint(self) -> IRI | None:
        """The ``rdf:type`` object when the star declares its class."""
        for pattern in self.patterns:
            if pattern.predicate == RDF_TYPE and isinstance(pattern.object, IRI):
                return pattern.object
        return None

    def join_variables(self, other: "StarSubquery") -> set[str]:
        """Variable names shared with *other* (the star-join attributes)."""
        return self.variable_names() & other.variable_names()

    @property
    def subject_name(self) -> str:
        if isinstance(self.subject, Variable):
            return f"?{self.subject.name}"
        return self.subject.n3()

    def describe(self) -> str:
        parts = [f"SSQ(subject={self.subject_name}, {len(self.patterns)} patterns"]
        if self.filters:
            parts.append(f", {len(self.filters)} filters")
        parts.append(")")
        return "".join(parts)

    def __repr__(self) -> str:
        return self.describe()


@dataclass
class Decomposition:
    """The result of decomposing a query's WHERE clause.

    Attributes:
        subqueries: the star-shaped (or triple-wise) sub-queries.
        residual_filters: filters spanning several sub-queries; these must be
            evaluated at the engine after the joins.
        optional_groups: decompositions of OPTIONAL groups, left-joined to
            the main part at the engine.
        union_branches: decompositions of top-level UNION branches; when
            set, ``subqueries`` is empty and the branches are planned
            independently and unioned.
    """

    subqueries: list[StarSubquery]
    residual_filters: list[Filter] = field(default_factory=list)
    optional_groups: list["Decomposition"] = field(default_factory=list)
    union_branches: list["Decomposition"] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.subqueries)

    def describe(self) -> str:
        if self.union_branches:
            lines = [f"Decomposition: UNION of {len(self.union_branches)} branches"]
            for branch in self.union_branches:
                lines.extend("  " + line for line in branch.describe().splitlines())
            return "\n".join(lines)
        lines = [f"Decomposition: {len(self.subqueries)} sub-queries"]
        lines.extend("  " + subquery.describe() for subquery in self.subqueries)
        for filter_ in self.residual_filters:
            lines.append(f"  residual {filter_.n3()}")
        for optional in self.optional_groups:
            lines.append("  OPTIONAL:")
            lines.extend("    " + line for line in optional.describe().splitlines())
        return "\n".join(lines)


def _supported_group(group: GroupGraphPattern, allow_extensions: bool = True) -> None:
    if not allow_extensions and not group.is_basic():
        raise PlanningError(
            "nested OPTIONAL/UNION groups are not supported by the federated planner"
        )
    if not group.patterns and not group.unions:
        raise PlanningError("cannot decompose an empty graph pattern")
    for pattern in group.all_triple_patterns():
        if isinstance(pattern.predicate, Variable):
            raise PlanningError(
                f"variable predicates are not supported in federated queries: {pattern.n3()}"
            )


def _assign_filters(
    stars: list[StarSubquery], filters: list[Filter]
) -> list[Filter]:
    """Attach each filter to the single star covering its variables;
    return the filters that span stars (residuals)."""
    residual: list[Filter] = []
    for filter_ in filters:
        names = {variable.name for variable in filter_.variables()}
        owners = [star for star in stars if names <= star.variable_names()]
        if owners:
            owners[0].filters.append(filter_)
        else:
            residual.append(filter_)
    return residual


def decompose_star_shaped(query: SelectQuery | GroupGraphPattern) -> Decomposition:
    """Decompose into maximal subject-sharing stars (Ontario's default).

    One level of OPTIONAL groups and one top-level UNION are supported:
    OPTIONAL bodies are decomposed recursively and left-joined at the
    engine; a WHERE that is a pure UNION of groups yields one decomposition
    per branch.
    """
    group = query.where if isinstance(query, SelectQuery) else query
    _supported_group(group)

    if group.unions:
        if len(group.unions) > 1 or group.patterns or group.optionals:
            raise PlanningError(
                "UNION is supported only as the entire WHERE clause "
                "(one UNION of basic groups)"
            )
        branches = [decompose_star_shaped(branch) for branch in group.unions[0]]
        return Decomposition(subqueries=[], union_branches=branches)

    by_subject: dict[PatternTerm, StarSubquery] = {}
    order: list[PatternTerm] = []
    for pattern in group.patterns:
        if pattern.subject not in by_subject:
            by_subject[pattern.subject] = StarSubquery(subject=pattern.subject)
            order.append(pattern.subject)
        by_subject[pattern.subject].patterns.append(pattern)
    stars = [by_subject[subject] for subject in order]
    residual = _assign_filters(stars, group.filters)
    optional_groups = []
    for optional in group.optionals:
        _supported_group(optional, allow_extensions=False)
        optional_groups.append(decompose_star_shaped(optional))
    return Decomposition(
        subqueries=stars,
        residual_filters=residual,
        optional_groups=optional_groups,
    )


def decompose_triple_wise(query: SelectQuery | GroupGraphPattern) -> Decomposition:
    """One sub-query per triple pattern (the ablation decomposition)."""
    group = query.where if isinstance(query, SelectQuery) else query
    _supported_group(group, allow_extensions=False)
    stars = [
        StarSubquery(subject=pattern.subject, patterns=[pattern])
        for pattern in group.patterns
    ]
    residual = _assign_filters(stars, group.filters)
    return Decomposition(subqueries=stars, residual_filters=residual)


def validate_decomposition(group: GroupGraphPattern, decomposition: Decomposition) -> bool:
    """Soundness check: the union of sub-query patterns equals the BGP and
    every filter is placed exactly once."""
    original = sorted(pattern.n3() for pattern in group.patterns)
    decomposed = sorted(
        pattern.n3()
        for subquery in decomposition.subqueries
        for pattern in subquery.patterns
    )
    if original != decomposed:
        return False
    original_filters = sorted(filter_.n3() for filter_ in group.filters)
    placed = sorted(
        filter_.n3()
        for subquery in decomposition.subqueries
        for filter_ in subquery.filters
    ) + sorted(filter_.n3() for filter_ in decomposition.residual_filters)
    return original_filters == sorted(placed)
