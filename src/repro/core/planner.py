"""The federated plan generator — the paper's contribution lives here.

Pipeline (Ontario's architecture with the paper's heuristics plugged in):

1. **Decompose** the SPARQL query into star-shaped sub-queries (or triples,
   for the ablation).
2. **Select sources** per star via RDF molecule templates.
3. **Heuristic 1** — merge stars over the same relational endpoint when the
   join attribute is indexed (physical-design-aware policies only).
4. **Heuristic 2** — place each filter at the source or at the engine,
   consulting the physical-design catalog and the network condition.
5. **Order joins** greedily over estimated cardinalities, connecting plan
   units through ANAPSID's non-blocking symmetric hash joins.
6. Apply residual filters, ORDER BY, projection, DISTINCT and LIMIT.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..exceptions import PlanningError
from ..federation.endpoints import RDFSource, RelationalSource
from ..federation.operators import (
    DependentJoin,
    Distinct,
    EngineFilter,
    FedOperator,
    LeftJoin,
    Limit,
    OrderBy,
    Project,
    ServiceNode,
    SymmetricHashJoin,
    Union,
)
from ..federation.wrappers import SPARQLWrapper, SQLWrapper
from ..network.delays import NetworkSetting
from ..sparql.algebra import Filter, SelectQuery
from ..sparql.parser import parse_query
from .decomposer import (
    Decomposition,
    decompose_star_shaped,
    decompose_triple_wise,
)
from .heuristics import (
    FilterDecision,
    MergeDecision,
    MergeGroup,
    place_filters,
    push_down_joins,
)
from .policy import DecompositionKind, JoinStrategy, PlanPolicy
from .source_selection import SelectedStar, select_sources
from .statskeys import join_signature, unit_signature_for

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> datalake cycle
    from ..datalake.lake import SemanticDataLake


@dataclass
class FederatedPlan:
    """An executable federated plan plus its decision log."""

    root: FedOperator
    query: SelectQuery
    policy: PlanPolicy
    network: NetworkSetting
    decomposition: Decomposition
    merge_decisions: list[MergeDecision] = field(default_factory=list)
    filter_decisions: list[tuple[str, FilterDecision]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Every leaf plan unit, in build order: merged star groups (Heuristic 1)
    #: and single selected stars.  The plan-invariant checker
    #: (:mod:`repro.oracle.invariants`) audits SSQ coverage and the
    #: heuristics' preconditions from this log.
    units: list[MergeGroup | SelectedStar] = field(default_factory=list)
    #: The lake's catalog version vector at planning time.  A cached plan
    #: is only ever served while the lake still reports this exact vector
    #: (the plan-cache key embeds it), so heuristic decisions made against
    #: a physical design can never outlive that design.
    catalog_version: tuple = ()

    def explain(self) -> str:
        """Figure-1-style plan rendering with the heuristics' reasoning."""
        lines = [
            f"Plan [{self.policy.name}] network={self.network.name}",
            self.root.explain(indent=1),
        ]
        if self.merge_decisions:
            lines.append("Heuristic 1 (pushing down joins):")
            for decision in self.merge_decisions:
                verdict = "merged" if decision.merged else "kept separate"
                lines.append(
                    f"  {decision.star_a} + {decision.star_b}: {verdict} — {decision.reason}"
                )
        if self.filter_decisions:
            lines.append("Heuristic 2 (filter placement):")
            for source_id, decision in self.filter_decisions:
                lines.append(f"  [{source_id}] {decision.describe()}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


@dataclass
class _PlanUnit:
    """A leaf operator plus the metadata join ordering needs."""

    operator: FedOperator
    variables: set[str]
    estimate: float
    #: Observed-statistics signature of the unit (see
    #: :mod:`repro.core.statskeys`); join ordering folds these into join
    #: signatures so every run feeds the cost-based optimizer's store.
    signature: tuple = ()
    #: Per-variable NDV sketch (filled only by the cost-based planner; the
    #: greedy orderer never reads it).
    ndv: dict[str, float] | None = None


def _annotate(operator: FedOperator, estimate: float) -> FedOperator:
    """Stamp the planner's cardinality estimate onto *operator*.

    The estimate is planning metadata only — join ordering keeps reading
    :attr:`_PlanUnit.estimate`, so annotating can never change a plan.
    EXPLAIN ANALYZE reads it back to compute per-operator q-error.
    """
    operator.estimated_rows = float(estimate)
    return operator


class FederatedPlanner:
    """Builds :class:`FederatedPlan` objects for one lake."""

    #: Cost-based subclasses install callables here (see
    #: :class:`repro.optimizer.CostBasedPlanner`); with both ``None`` the
    #: heuristics' own verdicts stand, so the base planner is unchanged.
    merge_advisor = None
    filter_advisor = None

    def __init__(
        self,
        lake: SemanticDataLake,
        policy: PlanPolicy,
        network: NetworkSetting,
        debug_validate: bool | None = None,
        obs=None,
    ):
        self.lake = lake
        self.policy = policy
        self.network = network
        #: Optional :class:`~repro.obs.observation.RunObservation`: when
        #: set, planning emits lifecycle instants (parse, decompose,
        #: source selection, every heuristic decision) onto its bus.
        #: Planning happens before the run's virtual clock starts, so
        #: these are zero-duration markers at t=0 in emission order.
        self.obs = obs
        # Debug mode: audit every produced plan with the oracle's invariant
        # checker.  ``None`` defers to the REPRO_DEBUG_VALIDATE env var so
        # test runs can switch the whole suite into validating mode.
        if debug_validate is None:
            debug_validate = os.environ.get("REPRO_DEBUG_VALIDATE", "").lower() in (
                "1", "true", "yes", "on",
            )
        self.debug_validate = debug_validate

    # -- public ---------------------------------------------------------------

    def plan(self, query: SelectQuery | str) -> FederatedPlan:
        obs = self.obs
        if isinstance(query, str):
            query = parse_query(query)
            if obs is not None:
                obs.bus.add_instant("parse", "plan")
        if self.policy.decomposition is DecompositionKind.TRIPLE:
            decomposition = decompose_triple_wise(query)
        else:
            decomposition = decompose_star_shaped(query)
        if obs is not None:
            obs.bus.add_instant(
                "decompose",
                "plan",
                kind=self.policy.decomposition.value,
                subqueries=len(decomposition.subqueries),
                union_branches=len(decomposition.union_branches),
                optional_groups=len(decomposition.optional_groups),
            )
        merge_decisions: list[MergeDecision] = []
        filter_decisions: list[tuple[str, FilterDecision]] = []
        notes: list[str] = []
        units: list[MergeGroup | SelectedStar] = []
        root = self._plan_decomposition(
            decomposition, merge_decisions, filter_decisions, notes, units
        )
        root = self._apply_modifiers(root, query, decomposition)
        plan = FederatedPlan(
            root=root,
            query=query,
            policy=self.policy,
            network=self.network,
            decomposition=decomposition,
            merge_decisions=merge_decisions,
            filter_decisions=filter_decisions,
            notes=notes,
            units=units,
            catalog_version=self.lake.catalog_version(),
        )
        if self.debug_validate:
            # Imported lazily: the oracle package depends on core, not the
            # other way around, except in this opt-in debug path.
            from ..oracle.invariants import assert_plan_valid

            assert_plan_valid(plan, self.lake)
        return plan

    def _plan_decomposition(
        self,
        decomposition: Decomposition,
        merge_decisions: list[MergeDecision],
        filter_decisions: list[tuple[str, FilterDecision]],
        notes: list[str],
        unit_log: list[MergeGroup | SelectedStar],
    ) -> FedOperator:
        """Plan one decomposition (recursively for UNION branches and
        OPTIONAL groups) into an operator tree, pre-modifiers."""
        if decomposition.union_branches:
            branches = [
                self._plan_branch(branch, merge_decisions, filter_decisions, notes, unit_log)
                for branch in decomposition.union_branches
            ]
            return _annotate(
                Union(branches),
                sum(branch.estimated_rows or 0.0 for branch in branches),
            )
        return self._plan_branch(
            decomposition, merge_decisions, filter_decisions, notes, unit_log
        )

    def _plan_branch(
        self,
        decomposition: Decomposition,
        merge_decisions: list[MergeDecision],
        filter_decisions: list[tuple[str, FilterDecision]],
        notes: list[str],
        unit_log: list[MergeGroup | SelectedStar],
    ) -> FedOperator:
        obs = self.obs
        selections = select_sources(self.lake, decomposition)
        if obs is not None:
            obs.bus.add_instant(
                "source-selection",
                "plan",
                stars=len(selections),
                candidates=sum(len(s.candidates) for s in selections),
            )
        units_spec, branch_merges = push_down_joins(
            selections,
            self.lake.physical_catalog,
            self.policy,
            merge_advisor=self.merge_advisor,
        )
        if obs is not None:
            for decision in branch_merges:
                obs.bus.add_instant(
                    "h1-decision",
                    "plan",
                    star_a=decision.star_a,
                    star_b=decision.star_b,
                    merged=decision.merged,
                    reason=decision.reason,
                )
        merge_decisions.extend(branch_merges)
        unit_log.extend(units_spec)
        filters_before = len(filter_decisions)
        units = [self._build_unit(unit, filter_decisions) for unit in units_spec]
        if obs is not None:
            for source_id, decision in filter_decisions[filters_before:]:
                obs.bus.add_instant(
                    "h2-decision",
                    "plan",
                    source=source_id,
                    filter=decision.filter.n3(),
                    pushed=decision.pushed,
                    reason=decision.reason,
                )
        notes_before = len(notes)
        root = self._order_joins(units, notes)
        if obs is not None:
            for note in notes[notes_before:]:
                obs.bus.add_instant("note", "plan", text=note)
        if decomposition.residual_filters:
            root = _annotate(
                EngineFilter(root, decomposition.residual_filters),
                root.estimated_rows or 0.0,
            )
        main_variables: set[str] = set()
        for star in decomposition.subqueries:
            main_variables |= star.variable_names()
        for optional in decomposition.optional_groups:
            optional_root = self._plan_decomposition(
                optional, merge_decisions, filter_decisions, notes, unit_log
            )
            optional_variables: set[str] = set()
            for star in optional.subqueries:
                optional_variables |= star.variable_names()
            join_variables = tuple(sorted(main_variables & optional_variables))
            root = _annotate(
                LeftJoin(left=root, right=optional_root, join_variables=join_variables),
                max(root.estimated_rows or 0.0, optional_root.estimated_rows or 0.0),
            )
            main_variables |= optional_variables
        return root

    # -- leaves -----------------------------------------------------------------

    def _build_unit(
        self,
        unit: MergeGroup | SelectedStar,
        filter_decisions: list[tuple[str, FilterDecision]],
    ) -> _PlanUnit:
        if isinstance(unit, MergeGroup):
            return self._build_merged_unit(unit, filter_decisions)
        return self._build_star_unit(unit, filter_decisions)

    def _build_merged_unit(
        self,
        group: MergeGroup,
        filter_decisions: list[tuple[str, FilterDecision]],
    ) -> _PlanUnit:
        source = self.lake.source(group.source_id)
        assert isinstance(source, RelationalSource)
        stars = group.stars_with_mappings()
        filters: list[Filter] = []
        for star in group.stars:
            filters.extend(star.filters)
        filter_plan = place_filters(
            filters,
            stars,
            group.source_id,
            self.lake.physical_catalog,
            self.policy,
            self.network,
            filter_advisor=self.filter_advisor,
        )
        filter_decisions.extend(
            (group.source_id, decision) for decision in filter_plan.decisions
        )
        variables: set[str] = set()
        for star in group.stars:
            variables |= star.variable_names()
        wrapper = SQLWrapper(source)
        translation = wrapper.translate(stars, pushed_filters=filter_plan.pushed)
        operator = ServiceNode(
            source_id=group.source_id,
            description=f"SQL: {translation.sql}",
            runner=lambda context, w=wrapper, t=translation: w.execute(t, context),
            engine_filters=filter_plan.at_engine,
            restricted_runner=(
                lambda context, variable, terms, w=wrapper, t=translation: w.execute(
                    t.restricted(variable, terms), context
                )
            ),
            variables=tuple(sorted(variables)),
            batch_runner=(
                lambda context, w=wrapper, t=translation: w.execute_batch(t, context)
            ),
            restricted_batch_runner=(
                lambda context, variable, terms, w=wrapper, t=translation:
                w.execute_batch(t.restricted(variable, terms), context)
            ),
            data_version_provider=(
                lambda s=source: (s.database, s.database.data_version)
            ),
        )
        estimate = min(
            float(self.lake.physical_catalog.table_rows(group.source_id, mapping.table))
            for __, mapping in stars
        )
        _annotate(operator, estimate)
        signature = unit_signature_for(group)
        operator.stats_signature = signature
        return _PlanUnit(
            operator=operator,
            variables=variables,
            estimate=estimate,
            signature=signature,
        )

    def _build_star_unit(
        self,
        selection: SelectedStar,
        filter_decisions: list[tuple[str, FilterDecision]],
    ) -> _PlanUnit:
        branches: list[FedOperator] = []
        for candidate in selection.candidates:
            source = self.lake.source(candidate.source_id)
            if candidate.kind == "rdb":
                assert isinstance(source, RelationalSource)
                stars = [(selection.star, candidate.class_mapping)]
                filter_plan = place_filters(
                    selection.star.filters,
                    stars,
                    candidate.source_id,
                    self.lake.physical_catalog,
                    self.policy,
                    self.network,
                    filter_advisor=self.filter_advisor,
                )
                filter_decisions.extend(
                    (candidate.source_id, decision) for decision in filter_plan.decisions
                )
                wrapper = SQLWrapper(source)
                translation = wrapper.translate(stars, pushed_filters=filter_plan.pushed)
                branches.append(
                    _annotate(
                        ServiceNode(
                            source_id=candidate.source_id,
                            description=f"SQL: {translation.sql}",
                            runner=lambda context, w=wrapper, t=translation: w.execute(t, context),
                            engine_filters=filter_plan.at_engine,
                            restricted_runner=(
                                lambda context, variable, terms, w=wrapper, t=translation:
                                w.execute(t.restricted(variable, terms), context)
                            ),
                            variables=tuple(sorted(selection.star.variable_names())),
                            batch_runner=(
                                lambda context, w=wrapper, t=translation:
                                w.execute_batch(t, context)
                            ),
                            restricted_batch_runner=(
                                lambda context, variable, terms, w=wrapper, t=translation:
                                w.execute_batch(t.restricted(variable, terms), context)
                            ),
                            data_version_provider=(
                                lambda s=source: (s.database, s.database.data_version)
                            ),
                        ),
                        candidate.cardinality,
                    )
                )
            else:
                assert isinstance(source, RDFSource)
                wrapper = SPARQLWrapper(source)
                star = selection.star
                patterns = " . ".join(p.n3().rstrip(" .") for p in star.patterns)
                branches.append(
                    _annotate(
                        ServiceNode(
                            source_id=candidate.source_id,
                            description=f"SPARQL: {{ {patterns} }}",
                            runner=lambda context, w=wrapper, s=star: w.execute(
                                s, context, pushed_filters=s.filters
                            ),
                            restricted_runner=(
                                lambda context, variable, terms, w=wrapper, s=star:
                                w.execute_restricted(
                                    s, context, variable, terms, pushed_filters=s.filters
                                )
                            ),
                            variables=tuple(sorted(star.variable_names())),
                            batch_runner=(
                                lambda context, w=wrapper, s=star: w.execute_batch(
                                    s, context, pushed_filters=s.filters
                                )
                            ),
                            restricted_batch_runner=(
                                lambda context, variable, terms, w=wrapper, s=star:
                                w.execute_restricted_batch(
                                    s, context, variable, terms, pushed_filters=s.filters
                                )
                            ),
                            # The description renders only the patterns, so
                            # the pushed star filters (which shape the data)
                            # must enter the signature here.
                            data_version_provider=(
                                lambda s=source, st=star: (
                                    s.graph,
                                    s.graph.version,
                                    tuple(f.expression.n3() for f in st.filters),
                                )
                            ),
                        ),
                        candidate.cardinality,
                    )
                )
        operator: FedOperator = branches[0] if len(branches) == 1 else _annotate(
            Union(branches), sum(branch.estimated_rows or 0.0 for branch in branches)
        )
        signature = unit_signature_for(selection)
        operator.stats_signature = signature
        return _PlanUnit(
            operator=operator,
            variables=selection.star.variable_names(),
            estimate=float(selection.estimated_cardinality()),
            signature=signature,
        )

    # -- join ordering -------------------------------------------------------------

    def _order_joins(self, units: list[_PlanUnit], notes: list[str]) -> FedOperator:
        if not units:
            raise PlanningError("nothing to plan: no sub-queries")
        remaining = sorted(units, key=lambda unit: unit.estimate)
        current = remaining.pop(0)
        root = current.operator
        bound = set(current.variables)
        estimate = current.estimate
        member_signatures = [current.signature]
        while remaining:
            connected = [unit for unit in remaining if unit.variables & bound]
            if connected:
                nxt = min(connected, key=lambda unit: unit.estimate)
            else:
                nxt = remaining[0]
                notes.append(
                    "cartesian product: no shared variables between plan units"
                )
            remaining.remove(nxt)
            join_variables = tuple(sorted(nxt.variables & bound))
            root = self._join_operator(root, nxt, join_variables)
            bound |= nxt.variables
            estimate = max(estimate, nxt.estimate)
            # The greedy orderer's running estimate is also the join's own
            # output estimate (no join-selectivity model, as in ANAPSID).
            _annotate(root, estimate)
            member_signatures.append(nxt.signature)
            root.stats_signature = join_signature(member_signatures)
        return root

    def _join_operator(
        self, outer: FedOperator, nxt: _PlanUnit, join_variables: tuple[str, ...]
    ) -> FedOperator:
        use_dependent = (
            self.policy.join_strategy is JoinStrategy.DEPENDENT
            and len(join_variables) == 1
            and isinstance(nxt.operator, ServiceNode)
            and nxt.operator.supports_restriction
        )
        if use_dependent:
            return DependentJoin(
                outer=outer,
                inner=nxt.operator,
                join_variable=join_variables[0],
                block_size=self.policy.dependent_block_size,
            )
        return SymmetricHashJoin(left=outer, right=nxt.operator, join_variables=join_variables)

    # -- modifiers ------------------------------------------------------------------

    def _apply_modifiers(
        self,
        root: FedOperator,
        query: SelectQuery,
        decomposition: Decomposition,
    ) -> FedOperator:
        # residual filters were applied per branch in _plan_branch
        inherited = root.estimated_rows or 0.0
        if query.order_by:
            root = _annotate(OrderBy(root, query.order_by), inherited)
        projected = tuple(variable.name for variable in query.projected_variables())
        root = _annotate(Project(root, projected), inherited)
        if query.distinct:
            root = _annotate(Distinct(root), inherited)
        if query.limit is not None or query.offset is not None:
            capped = inherited if query.limit is None else min(inherited, float(query.limit))
            root = _annotate(Limit(root, query.limit, query.offset), capped)
        return root
