"""RDF-MT-based source selection (MULDER / Ontario style).

Each star-shaped sub-query is matched against the lake's molecule
templates: a source is a candidate when one of its molecules offers every
predicate of the star (and matches the star's ``rdf:type`` constraint when
present).  For relational sources, the matching class mapping is attached
so the planner can translate to SQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..exceptions import SourceSelectionError
from ..federation.endpoints import RDFSource, RelationalSource
from ..mapping.rml import ClassMapping
from ..rdf.namespaces import RDF_TYPE
from .decomposer import Decomposition, StarSubquery

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> datalake cycle
    from ..datalake.lake import SemanticDataLake


@dataclass(frozen=True)
class SourceCandidate:
    """One source able to answer one star."""

    source_id: str
    kind: str  # "rdb" | "rdf"
    class_mapping: ClassMapping | None = None  # set for relational sources
    cardinality: int = 0

    def __repr__(self) -> str:
        return f"SourceCandidate({self.source_id}, {self.kind}, card={self.cardinality})"


@dataclass
class SelectedStar:
    """A star plus the sources selected for it."""

    star: StarSubquery
    candidates: list[SourceCandidate]

    @property
    def is_exclusive(self) -> bool:
        """True when a single source answers the star (FedX's exclusive
        groups; the precondition of Heuristic 1's merge)."""
        return len(self.candidates) == 1

    def estimated_cardinality(self) -> int:
        if not self.candidates:
            return 0
        return max(candidate.cardinality for candidate in self.candidates)


def select_sources(lake: SemanticDataLake, decomposition: Decomposition) -> list[SelectedStar]:
    """Select sources for every star; raises when a star has none."""
    selected = []
    for star in decomposition.subqueries:
        candidates = _candidates_for(lake, star)
        if not candidates:
            raise SourceSelectionError(
                f"no source in lake {lake.name!r} can answer {star.describe()} "
                f"(predicates: {sorted(p.value for p in star.predicates())})"
            )
        selected.append(SelectedStar(star=star, candidates=candidates))
    return selected


def _candidates_for(lake: SemanticDataLake, star: StarSubquery) -> list[SourceCandidate]:
    type_constraint = star.type_constraint()
    predicates = {p for p in star.predicates() if p != RDF_TYPE}
    candidates: list[SourceCandidate] = []
    for source in lake.sources():
        if isinstance(source, RelationalSource):
            if type_constraint is not None:
                if type_constraint not in source.mapping.classes:
                    continue
                class_mappings = [source.mapping.class_mapping(type_constraint)]
            else:
                class_mappings = source.mapping.classes_with_predicates(predicates)
            for class_mapping in class_mappings:
                if all(class_mapping.has_predicate(p) for p in predicates):
                    rows = lake.physical_catalog.table_rows(
                        source.source_id, class_mapping.table
                    )
                    candidates.append(
                        SourceCandidate(
                            source_id=source.source_id,
                            kind="rdb",
                            class_mapping=class_mapping,
                            cardinality=rows,
                        )
                    )
        elif isinstance(source, RDFSource):
            for molecule in source.molecule_templates():
                if type_constraint is not None and molecule.class_iri != type_constraint:
                    continue
                if predicates <= molecule.predicates:
                    candidates.append(
                        SourceCandidate(
                            source_id=source.source_id,
                            kind="rdf",
                            cardinality=molecule.cardinality,
                        )
                    )
                    break  # one candidate per source is enough
    # Deterministic order; prefer richer (larger) candidates first for unions.
    candidates.sort(key=lambda c: (c.source_id, -c.cardinality))
    deduplicated: list[SourceCandidate] = []
    seen: set[tuple[str, str]] = set()
    for candidate in candidates:
        key = (
            candidate.source_id,
            candidate.class_mapping.class_iri.value if candidate.class_mapping else "",
        )
        if key not in seen:
            seen.add(key)
            deduplicated.append(candidate)
    return deduplicated
