"""The paper's contribution: physical-design-aware federated planning."""

from .catalog import PhysicalDesignCatalog, SourcePhysicalDesign
from .decomposer import (
    Decomposition,
    StarSubquery,
    decompose_star_shaped,
    decompose_triple_wise,
    validate_decomposition,
)
from .engine import FederatedEngine, ResultStream
from .heuristics import (
    FilterDecision,
    FilterPlan,
    MergeDecision,
    MergeGroup,
    place_filters,
    push_down_joins,
)
from .planner import FederatedPlan, FederatedPlanner
# Imported from their new home so `import repro.core` stays warning-free;
# only the legacy `repro.core.profiler` module itself is deprecated.
from ..obs.instrument import profile_plan
from ..obs.profile import OperatorProfile, ProfileReport
from .policy import DecompositionKind, FilterPlacement, JoinStrategy, PlanPolicy
from .source_selection import SelectedStar, SourceCandidate, select_sources

__all__ = [
    "Decomposition",
    "DecompositionKind",
    "FederatedEngine",
    "FederatedPlan",
    "FederatedPlanner",
    "FilterDecision",
    "FilterPlacement",
    "FilterPlan",
    "JoinStrategy",
    "MergeDecision",
    "MergeGroup",
    "OperatorProfile",
    "ProfileReport",
    "profile_plan",
    "PhysicalDesignCatalog",
    "PlanPolicy",
    "ResultStream",
    "SelectedStar",
    "SourceCandidate",
    "SourcePhysicalDesign",
    "StarSubquery",
    "decompose_star_shaped",
    "decompose_triple_wise",
    "place_filters",
    "push_down_joins",
    "select_sources",
    "validate_decomposition",
]
