"""The paper's contribution: physical-design-aware federated planning."""

from .catalog import PhysicalDesignCatalog, SourcePhysicalDesign
from .decomposer import (
    Decomposition,
    StarSubquery,
    decompose_star_shaped,
    decompose_triple_wise,
    validate_decomposition,
)
from .engine import FederatedEngine, ResultStream
from .heuristics import (
    FilterDecision,
    FilterPlan,
    MergeDecision,
    MergeGroup,
    place_filters,
    push_down_joins,
)
from .planner import FederatedPlan, FederatedPlanner
from .profiler import OperatorProfile, ProfileReport, profile_plan
from .policy import DecompositionKind, FilterPlacement, JoinStrategy, PlanPolicy
from .source_selection import SelectedStar, SourceCandidate, select_sources

__all__ = [
    "Decomposition",
    "DecompositionKind",
    "FederatedEngine",
    "FederatedPlan",
    "FederatedPlanner",
    "FilterDecision",
    "FilterPlacement",
    "FilterPlan",
    "JoinStrategy",
    "MergeDecision",
    "MergeGroup",
    "OperatorProfile",
    "ProfileReport",
    "profile_plan",
    "PhysicalDesignCatalog",
    "PlanPolicy",
    "ResultStream",
    "SelectedStar",
    "SourceCandidate",
    "SourcePhysicalDesign",
    "StarSubquery",
    "decompose_star_shaped",
    "decompose_triple_wise",
    "place_filters",
    "push_down_joins",
    "select_sources",
    "validate_decomposition",
]
