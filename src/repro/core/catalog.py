"""The physical-design catalog.

The catalog is the knowledge base the paper's heuristics consult: which
attributes of which relational source are indexed (including primary keys),
and which columns are primary keys.  It is harvested from the sources'
databases, the way Ontario's source descriptions would be enriched with
physical metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..relational.database import Database


@dataclass
class SourcePhysicalDesign:
    """Physical facts of one relational source."""

    source_id: str
    #: (table, column) pairs that are the leading column of some index.
    indexed_columns: set[tuple[str, str]] = field(default_factory=set)
    #: (table, column) pairs that are single-column primary keys.
    primary_keys: set[tuple[str, str]] = field(default_factory=set)
    #: table -> number of rows (for join-order estimation).
    table_rows: dict[str, int] = field(default_factory=dict)

    def is_indexed(self, table: str, column: str) -> bool:
        return (table, column) in self.indexed_columns

    def is_primary_key(self, table: str, column: str) -> bool:
        return (table, column) in self.primary_keys


class PhysicalDesignCatalog:
    """Physical design facts for every relational source of a lake."""

    def __init__(self):
        self._sources: dict[str, SourcePhysicalDesign] = {}

    def register_database(self, source_id: str, database: Database) -> SourcePhysicalDesign:
        """Harvest indexes / PKs / row counts from *database*."""
        design = SourcePhysicalDesign(source_id=source_id)
        for table_name in database.table_names:
            storage = database.table(table_name)
            design.table_rows[table_name] = len(storage)
            for definition in storage.indexes.values():
                if definition.columns:
                    design.indexed_columns.add((table_name, definition.columns[0]))
            if len(storage.schema.primary_key) == 1:
                design.primary_keys.add((table_name, storage.schema.primary_key[0]))
        self._sources[source_id] = design
        return design

    def refresh(self, source_id: str, database: Database) -> None:
        """Re-harvest after indexes were added or dropped."""
        self.register_database(source_id, database)

    def source(self, source_id: str) -> SourcePhysicalDesign | None:
        return self._sources.get(source_id)

    def is_indexed(self, source_id: str, table: str, column: str) -> bool:
        """The heuristics' central question: is this attribute indexed?"""
        design = self._sources.get(source_id)
        return design is not None and design.is_indexed(table, column)

    def is_primary_key(self, source_id: str, table: str, column: str) -> bool:
        design = self._sources.get(source_id)
        return design is not None and design.is_primary_key(table, column)

    def table_rows(self, source_id: str, table: str) -> int:
        design = self._sources.get(source_id)
        if design is None:
            return 0
        return design.table_rows.get(table, 0)

    def describe(self) -> str:
        lines = []
        for source_id in sorted(self._sources):
            design = self._sources[source_id]
            lines.append(f"source {source_id}:")
            for table, column in sorted(design.indexed_columns):
                marker = " (pk)" if design.is_primary_key(table, column) else ""
                lines.append(f"  index on {table}.{column}{marker}")
        return "\n".join(lines)
