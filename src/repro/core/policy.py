"""Plan policies: physical-design-aware vs -unaware query planning.

The experiment in the paper compares two kinds of query execution plans:

* **Physical-Design-Unaware** — the engine ignores the physical design of
  the lake: every star is shipped as-is, all joins between stars and all
  filters run at the engine level.
* **Physical-Design-Aware** — "a QEP that considers the indexes present in
  the relational database", i.e. *uses indexes whenever possible*
  (Figure 2's caption): Heuristic 1 merges same-endpoint stars joined on
  indexed attributes, and filters over indexed attributes are pushed into
  the source.

The literal **Heuristic 2** formulation ("perform filters at the engine
unless the attribute is indexed *and* the network is slow") is available as
a third placement mode so the H2 benchmarks can compare all variants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class FilterPlacement(enum.Enum):
    """Where filters over relational sources are evaluated."""

    #: Always at the federated engine (physical-design-unaware behaviour).
    ENGINE = "engine"
    #: Always pushed into the source when translatable.
    SOURCE = "source"
    #: Pushed when the filtered attributes are indexed ("use indexes
    #: whenever possible" — the aware QEPs of the experiment).
    SOURCE_IF_INDEXED = "source_if_indexed"
    #: The paper's Heuristic 2: pushed only when the attributes are indexed
    #: AND the network is slow.
    HEURISTIC2 = "heuristic2"
    #: Decided per filter by the cost-based optimizer: pushing is chosen
    #: when the estimated source-side evaluation plus reduced transfer is
    #: cheaper than shipping every row and filtering at the engine.  Only
    #: structural legality (translatability) is rule-bound; the verdict
    #: itself comes from :mod:`repro.optimizer`.
    COST = "cost"


class DecompositionKind(enum.Enum):
    STAR = "star"
    TRIPLE = "triple"


class JoinStrategy(enum.Enum):
    """Which ANAPSID operator joins plan units at the engine."""

    #: Non-blocking symmetric hash join (agjoin) — ANAPSID's default.
    SYMMETRIC_HASH = "symmetric_hash"
    #: Dependent (bound) join: push outer bindings into restrictable inner
    #: services as IN lists; falls back to the symmetric hash join when the
    #: inner side cannot be restricted.
    DEPENDENT = "dependent"


@dataclass(frozen=True)
class PlanPolicy:
    """Configuration of the federated planner.

    Attributes:
        name: display name used in benchmark tables.
        merge_same_source_joins: Heuristic 1 — merge star-shaped sub-queries
            over the same relational endpoint when the join attribute is
            indexed.
        filter_placement: Heuristic 2 family — where filters run.
        decomposition: star-shaped (Ontario) or triple-wise (ablation).
        max_merged_tables: bound on relational tables joined by one merged
            sub-query ("the number of joins is kept reasonable").
        join_strategy: engine-level join operator choice.
        dependent_block_size: outer block size for the dependent join.
        use_plan_cache: let the engine reuse cached federated plans for
            this policy (the engine's own flag must also be on).
        use_subresult_cache: let wrappers replay cached per-source results
            for this policy (the engine's own flag must also be on).
        cost_based: plan with :class:`repro.optimizer.CostBasedPlanner`
            instead of the fixed heuristics — H1 merges, H2 placements,
            join order and join methods are all chosen by estimated cost
            (catalog statistics plus any observed cardinalities), within
            the same structural legality envelope the heuristics obey.
    """

    name: str
    merge_same_source_joins: bool
    filter_placement: FilterPlacement
    decomposition: DecompositionKind = DecompositionKind.STAR
    max_merged_tables: int = 6
    join_strategy: JoinStrategy = JoinStrategy.SYMMETRIC_HASH
    dependent_block_size: int = 50
    use_plan_cache: bool = True
    use_subresult_cache: bool = True
    cost_based: bool = False

    def fingerprint(self) -> tuple:
        """A hashable identity for plan-cache keys.

        Covers every field that changes what the planner produces, so two
        policies differing anywhere plan-relevant (awareness, filter
        placement, decomposition, join strategy, bounds) can never share a
        cached plan.  The cache toggles themselves are excluded — they gate
        whether the cache is consulted, not what the plan looks like.
        """
        return (
            self.name,
            self.merge_same_source_joins,
            self.filter_placement,
            self.decomposition,
            self.max_merged_tables,
            self.join_strategy,
            self.dependent_block_size,
            self.cost_based,
        )

    @property
    def aware(self) -> bool:
        """Whether the policy consults the physical design at all."""
        return (
            self.merge_same_source_joins
            or self.cost_based
            or self.filter_placement
            in (
                FilterPlacement.SOURCE_IF_INDEXED,
                FilterPlacement.HEURISTIC2,
                FilterPlacement.COST,
            )
        )

    def with_(self, **overrides) -> "PlanPolicy":
        """A modified copy (for ablation benchmarks)."""
        return replace(self, **overrides)

    # -- the named configurations of the experiment ---------------------------

    @classmethod
    def physical_design_aware(cls) -> "PlanPolicy":
        """The experiment's aware QEPs: use indexes whenever possible."""
        return cls(
            name="Physical-Design-Aware",
            merge_same_source_joins=True,
            filter_placement=FilterPlacement.SOURCE_IF_INDEXED,
        )

    @classmethod
    def physical_design_unaware(cls) -> "PlanPolicy":
        """The experiment's unaware QEPs: everything at the engine."""
        return cls(
            name="Physical-Design-Unaware",
            merge_same_source_joins=False,
            filter_placement=FilterPlacement.ENGINE,
        )

    @classmethod
    def heuristic2(cls) -> "PlanPolicy":
        """Aware planning with the literal Heuristic 2 filter rule."""
        return cls(
            name="Heuristic-2",
            merge_same_source_joins=True,
            filter_placement=FilterPlacement.HEURISTIC2,
        )

    @classmethod
    def filters_at_source(cls) -> "PlanPolicy":
        """Push every translatable filter down (classic RDB wisdom)."""
        return cls(
            name="Filters-At-Source",
            merge_same_source_joins=True,
            filter_placement=FilterPlacement.SOURCE,
        )

    @classmethod
    def dependent_join(cls) -> "PlanPolicy":
        """Aware planning with ANAPSID's dependent (bound) join."""
        return cls(
            name="Dependent-Join",
            merge_same_source_joins=True,
            filter_placement=FilterPlacement.SOURCE_IF_INDEXED,
            join_strategy=JoinStrategy.DEPENDENT,
        )

    @classmethod
    def cost(cls) -> "PlanPolicy":
        """Cost-based planning over catalog + observed statistics.

        ``merge_same_source_joins`` stays on because cost-based merges are
        only ever chosen among Heuristic-1-*eligible* pairs (same endpoint,
        shared join variable, index on one side, table budget) — the flag
        gates structural legality, the optimizer supplies the verdict.
        """
        return cls(
            name="Cost-Based",
            merge_same_source_joins=True,
            filter_placement=FilterPlacement.COST,
            cost_based=True,
        )

    @classmethod
    def triple_wise(cls) -> "PlanPolicy":
        """Triple-based decomposition (future-work ablation)."""
        return cls(
            name="Triple-Wise",
            merge_same_source_joins=False,
            filter_placement=FilterPlacement.ENGINE,
            decomposition=DecompositionKind.TRIPLE,
        )
