"""The paper's source-specific heuristics.

**Heuristic 1 (pushing down joins).**  Given two star-shaped sub-queries
over the same RDB endpoint, combine them into one sub-query if the join
attribute is indexed (and the number of relational tables involved stays
reasonable).

**Heuristic 2 (pushing up instantiations).**  Given a star-shaped sub-query
over a relational database, perform filters at the query-engine level
unless there is an index on the filtered attribute and the network speed is
low.  The experiment's aware plans additionally support the "use indexes
whenever possible" placement (push down whenever the attribute is indexed,
regardless of network) — the variant Figure 2 evaluates.

Both heuristics return decision records so plans can explain themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import TranslationError
from ..mapping.rml import ClassMapping
from ..mapping.translator import (
    can_translate_filter,
    filter_columns,
    stars_variable_columns,
    translate_stars,
)
from ..network.delays import NetworkSetting
from ..sparql.algebra import BinaryOp, Filter
from .catalog import PhysicalDesignCatalog
from .decomposer import StarSubquery
from .policy import FilterPlacement, PlanPolicy
from .source_selection import SelectedStar, SourceCandidate

StarWithMapping = tuple[StarSubquery, ClassMapping]


# ---------------------------------------------------------------------------
# Heuristic 1 — pushing down joins
# ---------------------------------------------------------------------------


@dataclass
class MergeDecision:
    """Why two stars were (not) merged.

    Both alternatives' cardinality estimates are recorded regardless of the
    verdict, so EXPLAIN ANALYZE and the scorecard can attribute wins to the
    road not taken: ``est_merged`` is the planner's estimate for the combined
    sub-query, ``est_separate`` for the symmetric-hash join of the two
    separate units.  ``None`` when no estimate applies (e.g. the pair is not
    translatable at all, so neither alternative could be costed).
    """

    star_a: str
    star_b: str
    merged: bool
    reason: str
    est_merged: float | None = None
    est_separate: float | None = None


@dataclass
class MergeGroup:
    """A maximal set of stars shipped as one sub-query to one source."""

    source_id: str
    candidates: list[SourceCandidate]
    selections: list[SelectedStar]

    @property
    def stars(self) -> list[StarSubquery]:
        return [selection.star for selection in self.selections]

    def stars_with_mappings(self) -> list[StarWithMapping]:
        return [
            (selection.star, candidate.class_mapping)
            for selection, candidate in zip(self.selections, self.candidates)
        ]


def _mergeable(
    group: MergeGroup,
    selection: SelectedStar,
    candidate: SourceCandidate,
    catalog: PhysicalDesignCatalog,
    policy: PlanPolicy,
) -> tuple[bool, str]:
    """Check Heuristic 1's conditions for adding *selection* to *group*."""
    source_id = group.source_id
    shared_with: list[tuple[SelectedStar, SourceCandidate, set[str]]] = []
    for existing, existing_candidate in zip(group.selections, group.candidates):
        shared = existing.star.join_variables(selection.star)
        if shared:
            shared_with.append((existing, existing_candidate, shared))
    if not shared_with:
        return False, "no shared join variable with the group"

    try:
        new_columns = stars_variable_columns([(selection.star, candidate.class_mapping)])
    except TranslationError as exc:
        return False, f"star not translatable: {exc}"

    table_count = {candidate.class_mapping.table}
    for existing, existing_candidate in zip(group.selections, group.candidates):
        table_count.add(existing_candidate.class_mapping.table)
    if len(table_count) + _satellite_tables(group, candidate, selection) > policy.max_merged_tables:
        return False, (
            f"merged sub-query would involve more than "
            f"{policy.max_merged_tables} relational tables"
        )

    for existing, existing_candidate, shared in shared_with:
        try:
            existing_columns = stars_variable_columns(
                [(existing.star, existing_candidate.class_mapping)]
            )
        except TranslationError as exc:
            return False, f"existing star not translatable: {exc}"
        for variable in shared:
            if variable not in new_columns or variable not in existing_columns:
                return False, f"join variable ?{variable} is not column-backed on both sides"
            table_a, column_a = existing_columns[variable]
            table_b, column_b = new_columns[variable]
            indexed_a = catalog.is_indexed(source_id, table_a, column_a)
            indexed_b = catalog.is_indexed(source_id, table_b, column_b)
            if not (indexed_a or indexed_b):
                return False, (
                    f"join attribute ?{variable} "
                    f"({table_a}.{column_a} / {table_b}.{column_b}) is not indexed"
                )
    # Finally ensure the merged statement actually translates.
    try:
        translate_stars(group.stars_with_mappings() + [(selection.star, candidate.class_mapping)])
    except TranslationError as exc:
        return False, f"merged stars not translatable: {exc}"
    return True, "same endpoint, shared join variable over an indexed attribute"


def _satellite_tables(group, candidate, selection) -> int:
    """Count satellite tables the merged query would additionally join."""
    count = 0
    for star, mapping in group.stars_with_mappings() + [
        (selection.star, candidate.class_mapping)
    ]:
        for pattern in star.patterns:
            predicate = pattern.predicate
            if mapping.has_predicate(predicate):
                if mapping.predicate_mapping(predicate).kind == "multivalued":
                    count += 1
    return count


def _merge_estimates(
    group: MergeGroup,
    selection: SelectedStar,
    candidate: SourceCandidate,
    catalog: PhysicalDesignCatalog,
) -> tuple[float, float]:
    """Cardinality estimates for merging vs keeping *selection* separate.

    Mirrors the planner's own unit formulas: a merged relational unit is
    estimated at the smallest involved table, a symmetric-hash join of
    separate units at the larger input (no join-selectivity model).
    """
    source_id = group.source_id
    group_rows = min(
        float(catalog.table_rows(source_id, c.class_mapping.table))
        for c in group.candidates
    )
    candidate_rows = float(catalog.table_rows(source_id, candidate.class_mapping.table))
    est_merged = min(group_rows, candidate_rows)
    est_separate = max(group_rows, float(selection.estimated_cardinality()))
    return est_merged, est_separate


def push_down_joins(
    selections: list[SelectedStar],
    catalog: PhysicalDesignCatalog,
    policy: PlanPolicy,
    merge_advisor=None,
) -> tuple[list[MergeGroup | SelectedStar], list[MergeDecision]]:
    """Apply Heuristic 1: greedily grow merge groups over shared variables.

    Returns the plan units (merged groups and untouched stars, in original
    star order) and the decision log.

    ``merge_advisor`` is the cost-based planner's hook: called only for
    pairs that pass every structural Heuristic 1 precondition (same
    endpoint, shared indexed join variable, table budget, translatable),
    with ``(group, selection, candidate, est_merged, est_separate)``, it
    returns ``(merge, reason)`` and overrides the heuristic's verdict.
    Structural legality stays rule-bound so advised plans remain valid
    under the plan-invariant checker.
    """
    decisions: list[MergeDecision] = []
    units: list[MergeGroup | SelectedStar] = []
    groups_by_source: dict[str, list[MergeGroup]] = {}

    for selection in selections:
        placed = False
        if selection.is_exclusive:
            candidate = selection.candidates[0]
            if candidate.kind == "rdb" and candidate.class_mapping is not None:
                for group in groups_by_source.get(candidate.source_id, []):
                    est_merged, est_separate = _merge_estimates(
                        group, selection, candidate, catalog
                    )
                    if policy.merge_same_source_joins:
                        mergeable, reason = _mergeable(
                            group, selection, candidate, catalog, policy
                        )
                        if mergeable and merge_advisor is not None:
                            mergeable, reason = merge_advisor(
                                group, selection, candidate, est_merged, est_separate
                            )
                    else:
                        # Log the considered pair anyway so decision-level
                        # comparisons (the scorecard) can pit this policy's
                        # declined execution against a policy that merged
                        # the same pair.
                        mergeable = False
                        reason = "Heuristic 1 disabled by policy"
                    decisions.append(
                        MergeDecision(
                            star_a=group.stars[-1].subject_name,
                            star_b=selection.star.subject_name,
                            merged=mergeable,
                            reason=reason,
                            est_merged=est_merged,
                            est_separate=est_separate,
                        )
                    )
                    if mergeable:
                        group.selections.append(selection)
                        group.candidates.append(candidate)
                        placed = True
                        break
                if not placed:
                    group = MergeGroup(
                        source_id=candidate.source_id,
                        candidates=[candidate],
                        selections=[selection],
                    )
                    groups_by_source.setdefault(candidate.source_id, []).append(group)
                    units.append(group)
                    placed = True
        if not placed:
            units.append(selection)

    # Collapse 1-star groups back to plain selections for a cleaner plan.
    collapsed: list[MergeGroup | SelectedStar] = []
    for unit in units:
        if isinstance(unit, MergeGroup) and len(unit.selections) == 1:
            collapsed.append(unit.selections[0])
        else:
            collapsed.append(unit)
    return collapsed, decisions


# ---------------------------------------------------------------------------
# Heuristic 2 — pushing up instantiations
# ---------------------------------------------------------------------------


@dataclass
class FilterDecision:
    """Where one filter was placed, and why.

    As with :class:`MergeDecision`, both alternatives carry estimates even
    when declined: ``est_pushed`` is the expected row count shipped after
    source-side evaluation, ``est_engine`` the rows shipped when the filter
    runs at the engine (the unfiltered sub-query output).  ``None`` when the
    filter cannot be costed (e.g. untranslatable, so pushing is not an
    alternative at all).
    """

    filter: Filter
    pushed: bool
    reason: str
    est_pushed: float | None = None
    est_engine: float | None = None

    def describe(self) -> str:
        where = "source" if self.pushed else "engine"
        return f"{self.filter.n3()} -> {where} ({self.reason})"


@dataclass
class FilterPlan:
    """The outcome of filter placement for one sub-query."""

    pushed: list[Filter] = field(default_factory=list)
    at_engine: list[Filter] = field(default_factory=list)
    decisions: list[FilterDecision] = field(default_factory=list)


#: Fallback selectivities when no statistics subsystem is consulted —
#: the classic System R defaults (equality 1/10, everything else 1/3).
_EQUALITY_SELECTIVITY = 0.1
_DEFAULT_SELECTIVITY = 1.0 / 3.0


def filter_selectivity(filter_: Filter) -> float:
    """Rough selectivity of one filter, used only for decision estimates."""
    expression = filter_.expression
    if isinstance(expression, BinaryOp) and expression.operator == "=":
        return _EQUALITY_SELECTIVITY
    return _DEFAULT_SELECTIVITY


def _base_rows(stars: list[StarWithMapping], source_id: str, catalog) -> float:
    """The sub-query's unfiltered output estimate (smallest involved table)."""
    rows = [
        float(catalog.table_rows(source_id, mapping.table)) for __, mapping in stars
    ]
    return min(rows) if rows else 0.0


def place_filters(
    filters: list[Filter],
    stars: list[StarWithMapping],
    source_id: str,
    catalog: PhysicalDesignCatalog,
    policy: PlanPolicy,
    network: NetworkSetting,
    filter_advisor=None,
) -> FilterPlan:
    """Apply Heuristic 2 (or the policy's placement mode) to *filters*.

    ``filter_advisor`` is the cost-based planner's hook for
    :attr:`FilterPlacement.COST`: called with
    ``(filter_, stars, source_id, est_pushed, est_engine)`` for every
    *translatable* filter, it returns ``(push, reason)``.  Untranslatable
    filters never reach it — legality stays rule-bound.
    """
    plan = FilterPlan()
    base = _base_rows(stars, source_id, catalog)
    for filter_ in filters:
        translatable = can_translate_filter(filter_, stars)
        est_engine = base if translatable else None
        est_pushed = base * filter_selectivity(filter_) if translatable else None
        if policy.filter_placement is FilterPlacement.COST and translatable:
            if filter_advisor is not None:
                pushed, reason = filter_advisor(
                    filter_, stars, source_id, est_pushed, est_engine
                )
            else:
                # No optimizer attached (e.g. a bare FederatedPlanner built
                # with a cost policy): fall back to the aware default.
                pushed, reason = _decide_filter(
                    filter_, stars, source_id, catalog,
                    policy.with_(filter_placement=FilterPlacement.SOURCE_IF_INDEXED),
                    network,
                )
        else:
            pushed, reason = _decide_filter(
                filter_, stars, source_id, catalog, policy, network
            )
        plan.decisions.append(
            FilterDecision(filter_, pushed, reason, est_pushed, est_engine)
        )
        if pushed:
            plan.pushed.append(filter_)
        else:
            plan.at_engine.append(filter_)
    return plan


def _decide_filter(
    filter_: Filter,
    stars: list[StarWithMapping],
    source_id: str,
    catalog: PhysicalDesignCatalog,
    policy: PlanPolicy,
    network: NetworkSetting,
) -> tuple[bool, str]:
    placement = policy.filter_placement
    if placement is FilterPlacement.ENGINE:
        return False, "policy keeps filters at the engine"
    if not can_translate_filter(filter_, stars):
        return False, "filter is not translatable to SQL"
    if placement is FilterPlacement.SOURCE:
        return True, "policy pushes every translatable filter"
    columns = filter_columns(filter_, stars)
    if not columns:
        return False, "filter touches no source column"
    unindexed = [
        f"{table}.{column}"
        for table, column in columns
        if not catalog.is_indexed(source_id, table, column)
    ]
    if unindexed:
        return False, f"no index on filtered attribute(s) {', '.join(sorted(set(unindexed)))}"
    if placement is FilterPlacement.SOURCE_IF_INDEXED:
        return True, "filtered attributes are indexed (use indexes whenever possible)"
    # FilterPlacement.HEURISTIC2
    if network.is_slow:
        return True, (
            f"filtered attributes indexed and network is slow "
            f"(mean latency {network.mean_latency * 1000:.1f} ms)"
        )
    return False, (
        "Heuristic 2: engine-level filtering preferred on fast networks "
        f"(mean latency {network.mean_latency * 1000:.1f} ms)"
    )
