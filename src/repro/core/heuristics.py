"""The paper's source-specific heuristics.

**Heuristic 1 (pushing down joins).**  Given two star-shaped sub-queries
over the same RDB endpoint, combine them into one sub-query if the join
attribute is indexed (and the number of relational tables involved stays
reasonable).

**Heuristic 2 (pushing up instantiations).**  Given a star-shaped sub-query
over a relational database, perform filters at the query-engine level
unless there is an index on the filtered attribute and the network speed is
low.  The experiment's aware plans additionally support the "use indexes
whenever possible" placement (push down whenever the attribute is indexed,
regardless of network) — the variant Figure 2 evaluates.

Both heuristics return decision records so plans can explain themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import TranslationError
from ..mapping.rml import ClassMapping
from ..mapping.translator import (
    can_translate_filter,
    filter_columns,
    stars_variable_columns,
    translate_stars,
)
from ..network.delays import NetworkSetting
from ..sparql.algebra import Filter
from .catalog import PhysicalDesignCatalog
from .decomposer import StarSubquery
from .policy import FilterPlacement, PlanPolicy
from .source_selection import SelectedStar, SourceCandidate

StarWithMapping = tuple[StarSubquery, ClassMapping]


# ---------------------------------------------------------------------------
# Heuristic 1 — pushing down joins
# ---------------------------------------------------------------------------


@dataclass
class MergeDecision:
    """Why two stars were (not) merged."""

    star_a: str
    star_b: str
    merged: bool
    reason: str


@dataclass
class MergeGroup:
    """A maximal set of stars shipped as one sub-query to one source."""

    source_id: str
    candidates: list[SourceCandidate]
    selections: list[SelectedStar]

    @property
    def stars(self) -> list[StarSubquery]:
        return [selection.star for selection in self.selections]

    def stars_with_mappings(self) -> list[StarWithMapping]:
        return [
            (selection.star, candidate.class_mapping)
            for selection, candidate in zip(self.selections, self.candidates)
        ]


def _mergeable(
    group: MergeGroup,
    selection: SelectedStar,
    candidate: SourceCandidate,
    catalog: PhysicalDesignCatalog,
    policy: PlanPolicy,
) -> tuple[bool, str]:
    """Check Heuristic 1's conditions for adding *selection* to *group*."""
    source_id = group.source_id
    shared_with: list[tuple[SelectedStar, SourceCandidate, set[str]]] = []
    for existing, existing_candidate in zip(group.selections, group.candidates):
        shared = existing.star.join_variables(selection.star)
        if shared:
            shared_with.append((existing, existing_candidate, shared))
    if not shared_with:
        return False, "no shared join variable with the group"

    try:
        new_columns = stars_variable_columns([(selection.star, candidate.class_mapping)])
    except TranslationError as exc:
        return False, f"star not translatable: {exc}"

    table_count = {candidate.class_mapping.table}
    for existing, existing_candidate in zip(group.selections, group.candidates):
        table_count.add(existing_candidate.class_mapping.table)
    if len(table_count) + _satellite_tables(group, candidate, selection) > policy.max_merged_tables:
        return False, (
            f"merged sub-query would involve more than "
            f"{policy.max_merged_tables} relational tables"
        )

    for existing, existing_candidate, shared in shared_with:
        try:
            existing_columns = stars_variable_columns(
                [(existing.star, existing_candidate.class_mapping)]
            )
        except TranslationError as exc:
            return False, f"existing star not translatable: {exc}"
        for variable in shared:
            if variable not in new_columns or variable not in existing_columns:
                return False, f"join variable ?{variable} is not column-backed on both sides"
            table_a, column_a = existing_columns[variable]
            table_b, column_b = new_columns[variable]
            indexed_a = catalog.is_indexed(source_id, table_a, column_a)
            indexed_b = catalog.is_indexed(source_id, table_b, column_b)
            if not (indexed_a or indexed_b):
                return False, (
                    f"join attribute ?{variable} "
                    f"({table_a}.{column_a} / {table_b}.{column_b}) is not indexed"
                )
    # Finally ensure the merged statement actually translates.
    try:
        translate_stars(group.stars_with_mappings() + [(selection.star, candidate.class_mapping)])
    except TranslationError as exc:
        return False, f"merged stars not translatable: {exc}"
    return True, "same endpoint, shared join variable over an indexed attribute"


def _satellite_tables(group, candidate, selection) -> int:
    """Count satellite tables the merged query would additionally join."""
    count = 0
    for star, mapping in group.stars_with_mappings() + [
        (selection.star, candidate.class_mapping)
    ]:
        for pattern in star.patterns:
            predicate = pattern.predicate
            if mapping.has_predicate(predicate):
                if mapping.predicate_mapping(predicate).kind == "multivalued":
                    count += 1
    return count


def push_down_joins(
    selections: list[SelectedStar],
    catalog: PhysicalDesignCatalog,
    policy: PlanPolicy,
) -> tuple[list[MergeGroup | SelectedStar], list[MergeDecision]]:
    """Apply Heuristic 1: greedily grow merge groups over shared variables.

    Returns the plan units (merged groups and untouched stars, in original
    star order) and the decision log.
    """
    decisions: list[MergeDecision] = []
    units: list[MergeGroup | SelectedStar] = []
    groups_by_source: dict[str, list[MergeGroup]] = {}

    for selection in selections:
        placed = False
        if selection.is_exclusive:
            candidate = selection.candidates[0]
            if candidate.kind == "rdb" and candidate.class_mapping is not None:
                for group in groups_by_source.get(candidate.source_id, []):
                    if policy.merge_same_source_joins:
                        mergeable, reason = _mergeable(
                            group, selection, candidate, catalog, policy
                        )
                    else:
                        # Log the considered pair anyway so decision-level
                        # comparisons (the scorecard) can pit this policy's
                        # declined execution against a policy that merged
                        # the same pair.
                        mergeable = False
                        reason = "Heuristic 1 disabled by policy"
                    decisions.append(
                        MergeDecision(
                            star_a=group.stars[-1].subject_name,
                            star_b=selection.star.subject_name,
                            merged=mergeable,
                            reason=reason,
                        )
                    )
                    if mergeable:
                        group.selections.append(selection)
                        group.candidates.append(candidate)
                        placed = True
                        break
                if not placed:
                    group = MergeGroup(
                        source_id=candidate.source_id,
                        candidates=[candidate],
                        selections=[selection],
                    )
                    groups_by_source.setdefault(candidate.source_id, []).append(group)
                    units.append(group)
                    placed = True
        if not placed:
            units.append(selection)

    # Collapse 1-star groups back to plain selections for a cleaner plan.
    collapsed: list[MergeGroup | SelectedStar] = []
    for unit in units:
        if isinstance(unit, MergeGroup) and len(unit.selections) == 1:
            collapsed.append(unit.selections[0])
        else:
            collapsed.append(unit)
    return collapsed, decisions


# ---------------------------------------------------------------------------
# Heuristic 2 — pushing up instantiations
# ---------------------------------------------------------------------------


@dataclass
class FilterDecision:
    """Where one filter was placed, and why."""

    filter: Filter
    pushed: bool
    reason: str

    def describe(self) -> str:
        where = "source" if self.pushed else "engine"
        return f"{self.filter.n3()} -> {where} ({self.reason})"


@dataclass
class FilterPlan:
    """The outcome of filter placement for one sub-query."""

    pushed: list[Filter] = field(default_factory=list)
    at_engine: list[Filter] = field(default_factory=list)
    decisions: list[FilterDecision] = field(default_factory=list)


def place_filters(
    filters: list[Filter],
    stars: list[StarWithMapping],
    source_id: str,
    catalog: PhysicalDesignCatalog,
    policy: PlanPolicy,
    network: NetworkSetting,
) -> FilterPlan:
    """Apply Heuristic 2 (or the policy's placement mode) to *filters*."""
    plan = FilterPlan()
    for filter_ in filters:
        pushed, reason = _decide_filter(filter_, stars, source_id, catalog, policy, network)
        plan.decisions.append(FilterDecision(filter_, pushed, reason))
        if pushed:
            plan.pushed.append(filter_)
        else:
            plan.at_engine.append(filter_)
    return plan


def _decide_filter(
    filter_: Filter,
    stars: list[StarWithMapping],
    source_id: str,
    catalog: PhysicalDesignCatalog,
    policy: PlanPolicy,
    network: NetworkSetting,
) -> tuple[bool, str]:
    placement = policy.filter_placement
    if placement is FilterPlacement.ENGINE:
        return False, "policy keeps filters at the engine"
    if not can_translate_filter(filter_, stars):
        return False, "filter is not translatable to SQL"
    if placement is FilterPlacement.SOURCE:
        return True, "policy pushes every translatable filter"
    columns = filter_columns(filter_, stars)
    if not columns:
        return False, "filter touches no source column"
    unindexed = [
        f"{table}.{column}"
        for table, column in columns
        if not catalog.is_indexed(source_id, table, column)
    ]
    if unindexed:
        return False, f"no index on filtered attribute(s) {', '.join(sorted(set(unindexed)))}"
    if placement is FilterPlacement.SOURCE_IF_INDEXED:
        return True, "filtered attributes are indexed (use indexes whenever possible)"
    # FilterPlacement.HEURISTIC2
    if network.is_slow:
        return True, (
            f"filtered attributes indexed and network is slow "
            f"(mean latency {network.mean_latency * 1000:.1f} ms)"
        )
    return False, (
        "Heuristic 2: engine-level filtering preferred on fast networks "
        f"(mean latency {network.mean_latency * 1000:.1f} ms)"
    )
