"""The multi-tenant query service and its deterministic load driver.

Layers (each importable and testable on its own):

* :mod:`repro.service.config` — :class:`ServiceConfig` /
  :class:`TenantConfig` with strict, fail-fast validation;
* :mod:`repro.service.admission` — the clock-agnostic admission-control
  state machine (per-tenant FIFO, concurrency limits, deadlines,
  structured shedding) plus the :func:`audit_schedule` post-hoc verifier;
* :mod:`repro.service.pool` — N identically-configured engines sharing
  one thread-safe plan/sub-result cache registry;
* :mod:`repro.service.server` — the asyncio HTTP daemon (``repro serve``);
* :mod:`repro.service.driver` — the seeded virtual-time closed-loop load
  generator (``repro loadtest``), deterministic per seed.
"""

from .admission import (
    AdmissionController,
    AdmissionMetrics,
    DONE,
    QUEUED,
    RUNNING,
    SHED,
    TIMED_OUT,
    Ticket,
    audit_schedule,
)
from .config import ServiceConfig, ServiceConfigError, TenantConfig
from .driver import DriverReport, RequestResult, WorkloadSpec, run_load
from .pool import EnginePool
from .server import (
    QueryService,
    STATS_VERSION,
    ServiceServer,
    serialize_answers,
    serialize_solution,
    start_service,
)

__all__ = [
    "AdmissionController",
    "AdmissionMetrics",
    "DONE",
    "DriverReport",
    "EnginePool",
    "QUEUED",
    "QueryService",
    "RequestResult",
    "RUNNING",
    "SHED",
    "STATS_VERSION",
    "ServiceConfig",
    "ServiceConfigError",
    "ServiceServer",
    "TIMED_OUT",
    "TenantConfig",
    "Ticket",
    "WorkloadSpec",
    "audit_schedule",
    "run_load",
    "serialize_answers",
    "serialize_solution",
    "start_service",
]
