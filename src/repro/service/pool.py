"""The service's engine pool: N workers, one shared cache registry.

Mirrors the worker-data-plane shape of large federated deployments
(scheduler -> worker instances -> shared artifact/result cache): each
pooled :class:`~repro.core.engine.FederatedEngine` is a full engine with
identical lake/policy/network/cost-model settings, and all of them consult
one :class:`~repro.cache.CacheRegistry` — so a plan or wrapper sub-result
warmed by any tenant's request is a hit for every worker.  Sharing is safe
because the LRU caches are internally locked and the registry's recorded
charges are cost-model-dependent, which is uniform across the pool by
construction (enforced here).

``checkout()``/``checkin()`` hand engines to executor threads (the asyncio
server); ``engine_for(i)`` deterministically round-robins (the driver).
"""

from __future__ import annotations

import queue
from typing import TYPE_CHECKING

from ..cache import CacheRegistry, CacheStats
from ..core.engine import FederatedEngine
from ..core.policy import PlanPolicy
from ..network.costmodel import CostModel
from ..network.delays import NetworkSetting

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalake.lake import SemanticDataLake


class EnginePool:
    """A fixed-size pool of identically-configured engines."""

    def __init__(
        self,
        lake: "SemanticDataLake",
        size: int = 4,
        policy: PlanPolicy | None = None,
        network: NetworkSetting | None = None,
        cost_model: CostModel | None = None,
        runtime: str = "sequential",
        exec: str = "batch",
        batch_size: int | None = None,
        plan_cache_size: int = 512,
        subresult_cache_size: int = 4096,
    ):
        if size < 1:
            raise ValueError(f"pool size must be a positive integer, got {size}")
        policy = policy or PlanPolicy.physical_design_aware()
        self.caches = CacheRegistry(
            plan_capacity=plan_cache_size,
            subresult_capacity=subresult_cache_size,
            plans_enabled=policy.use_plan_cache,
            subresults_enabled=policy.use_subresult_cache,
        )
        self.engines = [
            FederatedEngine(
                lake,
                policy=policy,
                network=network,
                cost_model=cost_model,
                runtime=runtime,
                exec=exec,
                batch_size=batch_size,
                caches=self.caches,
            )
            for __ in range(size)
        ]
        first = self.engines[0]
        assert all(
            engine.cost_model is first.cost_model for engine in self.engines
        ), "pooled engines must share one cost model (recorded charges depend on it)"
        self._idle: queue.Queue[FederatedEngine] = queue.Queue()
        for engine in self.engines:
            self._idle.put(engine)

    def __len__(self) -> int:
        return len(self.engines)

    def engine_for(self, index: int) -> FederatedEngine:
        """Deterministic round-robin assignment (the driver's path)."""
        return self.engines[index % len(self.engines)]

    def checkout(self, timeout: float | None = None) -> FederatedEngine:
        """Borrow an idle engine (blocks until one is free)."""
        return self._idle.get(timeout=timeout)

    def checkin(self, engine: FederatedEngine) -> None:
        self._idle.put(engine)

    def clear_caches(self) -> None:
        self.caches.clear()

    def cache_stats(self) -> dict[str, CacheStats]:
        """The shared registry's counters (identical via any engine)."""
        return self.caches.stats()
