"""Admission control: per-tenant FIFO queues, concurrency limits, shedding.

The controller is a pure, clock-agnostic state machine — every transition
takes ``now`` as an argument — so the exact same code governs the asyncio
server (wall clock) and the deterministic load driver (virtual clock).
That is what makes service behaviour *testable*: a seeded simulation
exercises precisely the admission logic production traffic hits.

Request lifecycle::

                  submit
                    |
        queue full? +----------> SHED        (structured refusal, never queued)
                    |
                  QUEUED
                    |
     deadline hit?  +----------> TIMED_OUT   (expired while waiting)
                    |
       start_ready  v
                 RUNNING -------> TIMED_OUT  (deadline hit while executing;
                    |                         the slot is released when the
                    v                         execution actually finishes)
                   DONE

Invariants (property-tested in ``tests/service/test_admission.py``):

* every accepted (queued) request reaches exactly one terminal state —
  DONE or TIMED_OUT — and is never silently dropped;
* within one tenant, requests start in submission order (FIFO);
* at no instant do running requests exceed the global limit, nor one
  tenant's running requests its per-tenant limit;
* a shed request receives a structured refusal naming the reason and the
  limit that triggered it.

Scheduling across tenants is weighted fair-share via stride scheduling:
each tenant carries a virtual *pass* that advances by ``1 / weight`` every
time one of its requests starts, and the controller repeatedly starts the
queued head of the startable tenant with the lowest pass (ties broken by
submission order, so a fresh controller with equal weights begins in FIFO
order).  A tenant with weight 3 therefore gets ~3x the starts of a
weight-1 tenant under contention, while per-tenant FIFO order is
preserved because only each tenant's head is ever eligible.  A tenant at
its concurrency limit is skipped without blocking other tenants (no
cross-tenant head-of-line blocking), and a tenant going idle has its pass
caught up to the active minimum on return, so idleness banks no credit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from .config import ServiceConfig, TenantConfig

# Request states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
SHED = "shed"
TIMED_OUT = "timeout"

#: Terminal states a ticket can end in.
TERMINAL = (DONE, SHED, TIMED_OUT)

# Shed reasons.
REASON_TENANT_QUEUE_FULL = "tenant-queue-full"
REASON_UNKNOWN_TENANT = "unknown-tenant"


@dataclass
class Ticket:
    """One request's admission-control record."""

    request_id: str
    tenant: str
    submitted_at: float
    #: Monotonic submission sequence number (global FIFO order).
    seq: int
    deadline: float | None = None
    state: str = QUEUED
    started_at: float | None = None
    finished_at: float | None = None
    #: Shed/timeout detail for the structured refusal.
    reason: str | None = None
    #: The tenant's stride pass when this ticket started (fair-share audit).
    stride_pass: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def refusal(self) -> dict:
        """The structured refusal document of a shed/timed-out ticket."""
        body = {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "state": self.state,
            "reason": self.reason,
            "submitted_at": self.submitted_at,
        }
        if self.deadline is not None:
            body["deadline"] = self.deadline
        return body

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "deadline": self.deadline,
            "reason": self.reason,
            "stride_pass": self.stride_pass,
        }


@dataclass
class AdmissionMetrics:
    """Lifetime counters of one controller."""

    submitted: int = 0
    shed: int = 0
    started: int = 0
    completed: int = 0
    timed_out: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        total = self.submitted
        return {
            "submitted": total,
            "shed": self.shed,
            "started": self.started,
            "completed": self.completed,
            "timed_out": self.timed_out,
            "shed_rate": round(self.shed / total, 4) if total else 0.0,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
        }


class AdmissionController:
    """The service's admission-control state machine (clock-agnostic).

    Telemetry taps in through *observers*: objects exposing
    ``admission_event(kind, ticket)`` (the SLO accountant, the event
    journal) registered via :meth:`add_observer`.  Observers only *read*
    ticket fields — they never see a clock and never influence a
    transition — so enabling telemetry cannot perturb scheduling, which
    is what keeps telemetry-on and telemetry-off runs bit-identical.
    Event kinds: ``submit`` (every submission, accepted or not), ``shed``,
    ``start``, ``done``, ``running-timeout``, ``queued-timeout``, and
    ``tenant-idle`` (a tenant's queued+running both drained to zero).
    """

    def __init__(self, config: ServiceConfig):
        config.validate()
        self.config = config
        self._queue: deque[Ticket] = deque()
        self._running_global = 0
        self._running_by_tenant: dict[str, int] = {}
        self._queued_by_tenant: dict[str, int] = {}
        #: Stride-scheduling virtual pass per tenant; advances by
        #: ``1 / weight`` on every start, never decreases.
        self._pass_by_tenant: dict[str, float] = {}
        self._seq = 0
        self.metrics = AdmissionMetrics()
        self.observers: list = []

    def add_observer(self, observer) -> None:
        """Register a telemetry observer (``admission_event(kind, ticket)``)."""
        self.observers.append(observer)

    def _notify(self, kind: str, ticket: Ticket) -> None:
        for observer in self.observers:
            observer.admission_event(kind, ticket)

    def _notify_if_idle(self, ticket: Ticket) -> None:
        """Emit ``tenant-idle`` when *ticket*'s exit drained its tenant."""
        tenant = ticket.tenant
        if self.queued_for(tenant) == 0 and self.running_for(tenant) == 0:
            self._notify("tenant-idle", ticket)

    # -- introspection -------------------------------------------------------

    @property
    def running(self) -> int:
        return self._running_global

    @property
    def queued(self) -> int:
        return len(self._queue)

    def running_for(self, tenant: str) -> int:
        return self._running_by_tenant.get(tenant, 0)

    def queued_for(self, tenant: str) -> int:
        return self._queued_by_tenant.get(tenant, 0)

    def snapshot(self) -> dict:
        return {
            "running": self._running_global,
            "queued": len(self._queue),
            "global_concurrency": self.config.global_concurrency,
            "running_by_tenant": dict(sorted(self._running_by_tenant.items())),
            "queued_by_tenant": dict(sorted(self._queued_by_tenant.items())),
            "metrics": self.metrics.to_dict(),
        }

    # -- transitions ---------------------------------------------------------

    def submit(self, request_id: str, tenant: str, now: float) -> Ticket:
        """Accept (QUEUED) or refuse (SHED) a new request at time *now*."""
        self.metrics.submitted += 1
        self._seq += 1
        deadline = None if self.config.timeout is None else now + self.config.timeout
        ticket = Ticket(
            request_id=request_id,
            tenant=tenant,
            submitted_at=now,
            seq=self._seq,
            deadline=deadline,
        )
        if self.observers:
            self._notify("submit", ticket)
        try:
            limits = self.config.tenant(tenant)
        except Exception:
            return self._shed(ticket, REASON_UNKNOWN_TENANT)
        if self.queued_for(tenant) >= limits.queue_depth:
            return self._shed(ticket, REASON_TENANT_QUEUE_FULL)
        if self.queued_for(tenant) == 0 and self.running_for(tenant) == 0:
            self._activate_tenant(tenant)
        self._queue.append(ticket)
        self._queued_by_tenant[tenant] = self.queued_for(tenant) + 1
        return ticket

    def _activate_tenant(self, tenant: str) -> None:
        """Catch an idle tenant's pass up to the active minimum.

        A tenant with no queued or running work must not accumulate
        fair-share credit while idle: on its first new submission its pass
        jumps to the smallest pass among currently active tenants (never
        backwards), so it competes from *now* instead of replaying the
        whole backlog it skipped.  When *no* tenant is active the whole
        system has drained: the activating tenant jumps to the historical
        peak pass instead, so the next busy period starts even — debt
        never carries across idle gaps, yet passes stay monotone (the
        property the post-hoc fairness audit depends on).
        """
        active = [
            self._pass_by_tenant.get(other, 0.0)
            for other in set(self._queued_by_tenant) | set(self._running_by_tenant)
            if other != tenant
            and (self.queued_for(other) > 0 or self.running_for(other) > 0)
        ]
        if active:
            floor = min(active)
        elif self._pass_by_tenant:
            floor = max(self._pass_by_tenant.values())
        else:
            return
        current = self._pass_by_tenant.get(tenant, 0.0)
        self._pass_by_tenant[tenant] = max(current, floor)

    def _shed(self, ticket: Ticket, reason: str) -> Ticket:
        ticket.state = SHED
        ticket.reason = reason
        ticket.finished_at = ticket.submitted_at
        self.metrics.shed += 1
        self.metrics.shed_by_reason[reason] = (
            self.metrics.shed_by_reason.get(reason, 0) + 1
        )
        if self.observers:
            self._notify("shed", ticket)
        return ticket

    def expire_queued(self, now: float) -> list[Ticket]:
        """Time out every queued ticket whose deadline has passed."""
        expired: list[Ticket] = []
        if not self._queue:
            return expired
        survivors: deque[Ticket] = deque()
        for ticket in self._queue:
            if ticket.deadline is not None and now >= ticket.deadline:
                self._queued_by_tenant[ticket.tenant] -= 1
                ticket.state = TIMED_OUT
                ticket.reason = "queued-timeout"
                ticket.finished_at = ticket.deadline
                self.metrics.timed_out += 1
                expired.append(ticket)
            else:
                survivors.append(ticket)
        self._queue = survivors
        if self.observers and expired:
            for ticket in expired:
                self._notify("queued-timeout", ticket)
            # One idle check per affected tenant, after the sweep settled.
            seen: set[str] = set()
            for ticket in reversed(expired):
                if ticket.tenant not in seen:
                    seen.add(ticket.tenant)
                    self._notify_if_idle(ticket)
        return expired

    def start_ready(self, now: float) -> list[Ticket]:
        """Move every startable queued ticket to RUNNING, fair-share order.

        Expired tickets are timed out first, so a request never *starts*
        past its deadline.  While slots remain, the queued head of the
        startable tenant with the lowest ``(pass, seq)`` key starts next
        (stride scheduling) — per-tenant FIFO is preserved because only
        each tenant's earliest queued ticket is ever eligible.
        """
        started: list[Ticket] = []
        self.expire_queued(now)
        if not self._queue:
            return started
        # Earliest queued ticket per tenant (the queue is in seq order).
        heads: dict[str, Ticket] = {}
        for ticket in self._queue:
            if ticket.tenant not in heads:
                heads[ticket.tenant] = ticket
        tenant_limits: dict[str, TenantConfig] = {}
        while heads and self._running_global < self.config.global_concurrency:
            best: tuple[float, int] | None = None
            best_tenant: str | None = None
            for tenant, head in heads.items():
                limits = tenant_limits.get(tenant)
                if limits is None:
                    limits = tenant_limits[tenant] = self.config.tenant(tenant)
                if self.running_for(tenant) >= limits.max_concurrency:
                    continue
                key = (self._pass_by_tenant.get(tenant, 0.0), head.seq)
                if best is None or key < best:
                    best = key
                    best_tenant = tenant
            if best_tenant is None or best is None:
                break
            ticket = heads.pop(best_tenant)
            self._queue.remove(ticket)
            self._queued_by_tenant[best_tenant] -= 1
            self._running_by_tenant[best_tenant] = (
                self.running_for(best_tenant) + 1
            )
            self._running_global += 1
            ticket.state = RUNNING
            ticket.started_at = now
            ticket.stride_pass = best[0]
            self._pass_by_tenant[best_tenant] = (
                best[0] + 1.0 / tenant_limits[best_tenant].weight
            )
            self.metrics.started += 1
            if self.observers:
                self._notify("start", ticket)
            started.append(ticket)
            for queued in self._queue:
                if queued.tenant == best_tenant:
                    heads[best_tenant] = queued
                    break
        return started

    def complete(self, ticket: Ticket, now: float) -> Ticket:
        """Finish a RUNNING ticket at *now* and release its slots.

        The outcome is DONE unless the deadline passed mid-execution, in
        which case the ticket is TIMED_OUT (the caller already answered
        the client with a timeout refusal; the slot is only released here,
        when the execution actually finished — limits always hold).
        """
        if ticket.state != RUNNING:
            raise ValueError(
                f"cannot complete ticket {ticket.request_id!r} in state "
                f"{ticket.state!r}"
            )
        self._running_global -= 1
        self._running_by_tenant[ticket.tenant] -= 1
        ticket.finished_at = now
        if ticket.deadline is not None and now > ticket.deadline:
            ticket.state = TIMED_OUT
            ticket.reason = "running-timeout"
            self.metrics.timed_out += 1
            if self.observers:
                self._notify("running-timeout", ticket)
        else:
            ticket.state = DONE
            self.metrics.completed += 1
            if self.observers:
                self._notify("done", ticket)
        if self.observers:
            self._notify_if_idle(ticket)
        return ticket

    # -- convenience ---------------------------------------------------------

    def pump(self, now: float, on_start: Callable[[Ticket], None]) -> None:
        """Expire, then start every ready ticket, notifying *on_start*."""
        for ticket in self.start_ready(now):
            on_start(ticket)


def audit_schedule(tickets: Iterable[Ticket], config: ServiceConfig) -> list[str]:
    """Re-verify the admission invariants over a finished schedule.

    Returns human-readable violation strings (empty = clean).  Used by the
    property tests and by the driver's self-check: the controller's
    behaviour is validated twice, once live and once post-hoc from the
    ticket log alone.
    """
    violations: list[str] = []
    events: list[tuple[float, int, int, Ticket]] = []  # (time, order, delta, t)
    starts_by_tenant: dict[str, list[tuple[int, float, str]]] = {}
    by_tenant: dict[str, list[Ticket]] = {}  # accepted tickets, seq order
    for ticket in sorted(tickets, key=lambda t: t.seq):
        if not ticket.terminal:
            violations.append(
                f"{ticket.request_id}: non-terminal state {ticket.state!r} "
                "(accepted request dropped)"
            )
            continue
        if ticket.state == SHED:
            if ticket.reason is None:
                violations.append(f"{ticket.request_id}: shed without a reason")
            continue
        by_tenant.setdefault(ticket.tenant, []).append(ticket)
        if ticket.state == TIMED_OUT and ticket.started_at is None:
            continue  # queued-timeout: never ran
        if ticket.started_at is None or ticket.finished_at is None:
            violations.append(
                f"{ticket.request_id}: ran without start/finish timestamps"
            )
            continue
        starts_by_tenant.setdefault(ticket.tenant, []).append(
            (ticket.seq, ticket.started_at, ticket.request_id)
        )
        # Starts before ends at equal times: a slot freed at t is usable
        # at t, so count ends first (delta sorted ascending puts -1 first).
        events.append((ticket.started_at, ticket.seq, +1, ticket))
        events.append((ticket.finished_at, ticket.seq, -1, ticket))
    # Per-tenant FIFO: in submission (seq) order, start times never go
    # backwards — a younger request must not start strictly before an
    # older one of the same tenant.
    for tenant, starts in starts_by_tenant.items():
        for (__, earlier_at, earlier_id), (__, later_at, later_id) in zip(
            starts, starts[1:]
        ):
            if later_at < earlier_at:
                violations.append(
                    f"{later_id}: started at {later_at:.6f}, before the "
                    f"earlier-submitted {earlier_id} of tenant {tenant!r} "
                    f"({earlier_at:.6f}) — FIFO violation"
                )
    events.sort(key=lambda item: (item[0], item[2], item[1]))
    running_global = 0
    running_tenant: dict[str, int] = {}
    for time, __, delta, ticket in events:
        running_global += delta
        count = running_tenant.get(ticket.tenant, 0) + delta
        running_tenant[ticket.tenant] = count
        if running_global > config.global_concurrency:
            violations.append(
                f"t={time:.6f}: {running_global} running exceeds the global "
                f"limit {config.global_concurrency}"
            )
        limit = config.tenant(ticket.tenant).max_concurrency
        if count > limit:
            violations.append(
                f"t={time:.6f}: tenant {ticket.tenant!r} has {count} running, "
                f"limit {limit}"
            )
    # Weighted fair-share (stride): a ticket that started at time t with
    # pass P must not have skipped over another tenant whose queued head
    # was startable under a strictly lower (pass, seq) key.  The pass a
    # tenant held at t is bounded from above by the recorded pass of its
    # next start strictly after t (passes only ever grow), and running
    # counts are taken inclusively at both endpoints — both conservative,
    # so every flagged violation is real (the check can only under-report).
    started_by_tenant: dict[str, list[Ticket]] = {
        tenant: sorted(
            (t for t in group if t.started_at is not None),
            key=lambda t: (t.started_at, t.seq),
        )
        for tenant, group in by_tenant.items()
    }
    for tenant, starts in started_by_tenant.items():
        for ticket in starts:
            if ticket.stride_pass is None:
                continue
            t0 = ticket.started_at
            for other, group in by_tenant.items():
                if other == tenant:
                    continue
                head = None
                for candidate in group:  # seq order: first match is the head
                    queued_past_t0 = (
                        candidate.started_at > t0
                        if candidate.started_at is not None
                        else (
                            candidate.finished_at is not None
                            and candidate.finished_at > t0
                        )
                    )
                    if (
                        candidate.submitted_at <= t0
                        and queued_past_t0
                        and (candidate.deadline is None or candidate.deadline > t0)
                    ):
                        head = candidate
                        break
                if head is None:
                    continue
                running = sum(
                    1
                    for other_ticket in started_by_tenant.get(other, ())
                    if other_ticket.started_at <= t0
                    and (
                        other_ticket.finished_at is None
                        or other_ticket.finished_at >= t0
                    )
                )
                if running >= config.tenant(other).max_concurrency:
                    continue
                bound = next(
                    (
                        other_ticket.stride_pass
                        for other_ticket in started_by_tenant.get(other, ())
                        if other_ticket.started_at > t0
                        and other_ticket.stride_pass is not None
                    ),
                    None,
                )
                if bound is None:
                    continue
                if (bound, head.seq) < (ticket.stride_pass, ticket.seq):
                    violations.append(
                        f"{ticket.request_id}: started at {t0:.6f} with pass "
                        f"{ticket.stride_pass:.4f} while tenant {other!r} head "
                        f"{head.request_id} was startable at pass <= "
                        f"{bound:.4f} — weighted fair-share violation"
                    )
    return violations
