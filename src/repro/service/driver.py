"""Deterministic closed-loop workload driver for the query service.

Simulates thousands of clients against the *exact* admission-control
state machine and engine pool the HTTP daemon runs — but in **virtual
time**, driven by a seeded discrete-event loop, so two runs with the same
seed produce identical request outcomes (accepted/shed/timeout per
request), identical latency distributions, and identical shared-cache
counter totals.  That determinism is the point: service behaviour under
contention becomes testable and regression-gateable, not just
benchmarkable.

How the pieces line up with a real deployment:

* **arrivals** — clients join by a seeded Poisson process; each client is
  closed-loop (think time after each response, then its next request);
* **tenant skew** — clients are assigned to tenants by Zipf-like weights,
  so a few tenants dominate traffic (the regime admission control is for);
* **hot/cold mix** — hot requests draw from a small set of benchmark
  queries (plan + sub-result cache hits); cold requests are textually
  distinct variants (fresh ``LIMIT`` clauses), forcing plan-cache misses;
* **service times** — an admitted request is *actually executed* on a
  pooled engine (exercising the shared caches and producing answers that
  are verified against a pristine single-engine run); its **virtual**
  execution time — which is cache-neutral by the PR-1 re-charging design —
  is used as the simulated service duration;
* **admission** — the same :class:`AdmissionController` as the server:
  per-tenant FIFO, per-tenant and global concurrency limits, deadline
  timeouts, structured shedding.

Executions happen sequentially in deterministic event order (simulated
concurrency lives in virtual time), so shared cache hit/miss totals are
reproducible bit for bit.  Wall-clock throughput is also measured — it
benefits from warm caches — but only virtual quantities are part of the
determinism contract.

Run it via ``repro loadtest`` or ``python -m repro.service.driver``.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.engine import FederatedEngine
from ..obs.journal import EventJournal
from ..obs.slo import SLOAccountant
from .admission import AdmissionController, DONE, SHED, TIMED_OUT, Ticket, audit_schedule
from .config import ServiceConfig, TenantConfig
from .pool import EnginePool
from .server import serialize_answers

# Event kinds, in tie-break priority order at equal timestamps: finishes
# release slots before new arrivals claim them.
_FINISH = 0
_ARRIVE = 1


@dataclass
class WorkloadSpec:
    """The shape of one simulated workload (all randomness is seeded)."""

    #: Number of simulated clients.
    clients: int = 1000
    #: Closed-loop rounds: each client issues this many requests.
    requests_per_client: int = 1
    #: Tenants ``t0..t{n-1}``; clients are assigned by Zipf-like weights.
    tenants: int = 4
    #: Skew exponent (0 = uniform; larger = heavier head tenant).
    tenant_skew: float = 1.2
    #: Hot query names (must be benchmark names).
    hot_queries: tuple[str, ...] = ("Q1", "Q2", "Q3")
    #: Cold base query names (textual variants are derived from these).
    cold_queries: tuple[str, ...] = ("Q4", "Q5")
    #: Probability a request draws from the hot set.
    hot_fraction: float = 0.8
    #: Number of distinct cold text variants (plan-cache misses).
    cold_variants: int = 20
    #: Mean inter-arrival gap between clients' first requests (virtual s).
    mean_interarrival: float = 0.05
    #: Mean think time between a client's consecutive requests (virtual s).
    mean_think: float = 2.0
    #: Distinct per-request delay seeds (duration variety).
    run_seeds: tuple[int, ...] = (7, 11, 13, 17)

    def validate(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be positive, got {self.clients}")
        if self.requests_per_client < 1:
            raise ValueError(
                f"requests_per_client must be positive, got {self.requests_per_client}"
            )
        if self.tenants < 1:
            raise ValueError(f"tenants must be positive, got {self.tenants}")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )
        if not self.hot_queries and not self.cold_queries:
            raise ValueError("at least one of hot/cold query sets must be non-empty")


@dataclass
class RequestResult:
    """One simulated request's outcome."""

    request_id: str
    client: int
    tenant: str
    query: str
    run_seed: int
    outcome: str  # done | shed | timeout
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    latency: float | None
    answers: int | None
    reason: str | None

    def key(self) -> tuple:
        """The determinism fingerprint contribution of this request."""
        return (
            self.request_id,
            self.tenant,
            self.query,
            self.run_seed,
            self.outcome,
            round(self.submitted_at, 9),
            None if self.started_at is None else round(self.started_at, 9),
            None if self.finished_at is None else round(self.finished_at, 9),
            self.answers,
            self.reason,
        )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(np.ceil(q * len(sorted_values))))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class DriverReport:
    """Everything one driver run measured."""

    seed: int
    spec: WorkloadSpec
    results: list[RequestResult]
    cache_stats: dict[str, dict]
    admission: dict
    wall_seconds: float
    executions: int
    mismatches: list[str] = field(default_factory=list)
    audit_violations: list[str] = field(default_factory=list)
    #: Structured event journal of the run (None when telemetry was off).
    journal: EventJournal | None = None
    #: Per-tenant SLO snapshot (None when telemetry was off).
    slo: dict | None = None

    # -- derived metrics -----------------------------------------------------

    def outcomes(self) -> dict[str, int]:
        counts: dict[str, int] = {DONE: 0, SHED: 0, TIMED_OUT: 0}
        for result in self.results:
            counts[result.outcome] = counts.get(result.outcome, 0) + 1
        return counts

    def latencies(self) -> list[float]:
        return sorted(
            result.latency
            for result in self.results
            if result.outcome == DONE and result.latency is not None
        )

    def makespan(self) -> float:
        return max(
            (result.finished_at or result.submitted_at for result in self.results),
            default=0.0,
        )

    def fingerprint(self) -> str:
        """SHA-256 over every request outcome + the cache totals."""
        digest = hashlib.sha256()
        for result in self.results:
            digest.update(repr(result.key()).encode())
        digest.update(
            json.dumps(self.cache_stats, sort_keys=True).encode()
        )
        return digest.hexdigest()

    def summary(self) -> dict:
        counts = self.outcomes()
        latencies = self.latencies()
        total = len(self.results)
        makespan = self.makespan()
        per_tenant: dict[str, dict[str, int]] = {}
        for result in self.results:
            bucket = per_tenant.setdefault(
                result.tenant, {DONE: 0, SHED: 0, TIMED_OUT: 0}
            )
            bucket[result.outcome] = bucket.get(result.outcome, 0) + 1
        return {
            "requests": total,
            "completed": counts.get(DONE, 0),
            "shed": counts.get(SHED, 0),
            "timed_out": counts.get(TIMED_OUT, 0),
            "shed_rate": round(counts.get(SHED, 0) / total, 4) if total else 0.0,
            "throughput_per_virtual_s": (
                round(counts.get(DONE, 0) / makespan, 4) if makespan else 0.0
            ),
            "virtual_makespan": round(makespan, 6),
            "latency_p50": round(_percentile(latencies, 0.50), 6),
            "latency_p95": round(_percentile(latencies, 0.95), 6),
            "latency_p99": round(_percentile(latencies, 0.99), 6),
            "wall_seconds": round(self.wall_seconds, 3),
            "wall_throughput_per_s": (
                round(self.executions / self.wall_seconds, 2)
                if self.wall_seconds
                else 0.0
            ),
            "executions": self.executions,
            "answer_mismatches": len(self.mismatches),
            "audit_violations": len(self.audit_violations),
            "per_tenant": {name: per_tenant[name] for name in sorted(per_tenant)},
            "cache": self.cache_stats,
        }

    def to_dict(self, include_requests: bool = False) -> dict:
        body = {
            "seed": self.seed,
            "spec": asdict(self.spec),
            "summary": self.summary(),
            "admission": self.admission,
            "fingerprint": self.fingerprint(),
        }
        if self.journal is not None:
            body["journal_fingerprint"] = self.journal.fingerprint()
            body["journal_events"] = self.journal.counts_by_kind()
        if self.slo is not None:
            body["slo"] = self.slo
        if self.mismatches:
            body["mismatches"] = self.mismatches[:20]
        if self.audit_violations:
            body["audit_violations"] = self.audit_violations[:20]
        if include_requests:
            body["requests"] = [asdict(result) for result in self.results]
        return body

    def to_chrome_trace(self) -> dict:
        """Per-request spans (queued + running phases) on tenant tracks."""
        from ..obs import to_chrome_trace
        from ..obs.bus import TraceBus

        bus = TraceBus()
        for result in self.results:
            if result.started_at is not None:
                bus.add_span(
                    f"queued {result.query}",
                    "service",
                    f"tenant {result.tenant}",
                    result.submitted_at,
                    result.started_at,
                    request_id=result.request_id,
                )
                bus.add_span(
                    f"run {result.query}",
                    "service",
                    f"tenant {result.tenant}",
                    result.started_at,
                    result.finished_at or result.started_at,
                    request_id=result.request_id,
                    outcome=result.outcome,
                )
            else:
                bus.add_instant(
                    f"{result.outcome} {result.query}",
                    "service",
                    f"tenant {result.tenant}",
                    result.finished_at or result.submitted_at,
                    request_id=result.request_id,
                    reason=result.reason or "",
                )
        shim = _DriverObservation(bus)
        return to_chrome_trace([(f"service-load seed={self.seed}", shim)])


class _DriverObservation:
    """The minimal observation surface the Chrome exporter needs."""

    def __init__(self, bus):
        self.bus = bus
        self.profiles: list = []
        self.request_id = None


@dataclass
class _PlannedRequest:
    client: int
    round: int
    tenant: str
    query_name: str
    query_text: str
    run_seed: int


class _Workload:
    """The seeded request generator (tenants, queries, think times)."""

    def __init__(self, spec: WorkloadSpec, seed: int):
        from ..datasets import BENCHMARK_QUERIES

        spec.validate()
        unknown = [
            name
            for name in (*spec.hot_queries, *spec.cold_queries)
            if name not in BENCHMARK_QUERIES
        ]
        if unknown:
            raise ValueError(f"unknown benchmark queries in spec: {unknown}")
        self.spec = spec
        self.rng = np.random.default_rng(seed)
        self._queries = BENCHMARK_QUERIES
        weights = np.array(
            [1.0 / (rank + 1) ** spec.tenant_skew for rank in range(spec.tenants)]
        )
        self._tenant_probs = weights / weights.sum()
        self._tenant_names = [f"t{rank}" for rank in range(spec.tenants)]
        # Cold variants: textually distinct LIMIT clauses => distinct plan
        # cache keys.  The limits are far above any result size at bench
        # scales, so answers are unaffected; what matters is the cache miss.
        self._cold_pool: list[tuple[str, str]] = []
        for index in range(max(1, spec.cold_variants)):
            base = spec.cold_queries[index % len(spec.cold_queries)] if spec.cold_queries else spec.hot_queries[index % len(spec.hot_queries)]
            text = self._queries[base].text.rstrip()
            if "LIMIT" in text.upper():
                variant = (f"{base}#v{index}", text)  # already limited: reuse
            else:
                variant = (f"{base}#v{index}", f"{text}\nLIMIT {1000000 + index}")
            self._cold_pool.append(variant)

    def tenant_for_client(self, client: int) -> str:
        return self._tenant_names[
            int(self.rng.choice(len(self._tenant_names), p=self._tenant_probs))
        ]

    def draw_request(self, client: int, round_index: int, tenant: str) -> _PlannedRequest:
        spec = self.spec
        hot = bool(spec.hot_queries) and (
            not spec.cold_queries or self.rng.random() < spec.hot_fraction
        )
        if hot:
            name = spec.hot_queries[int(self.rng.integers(len(spec.hot_queries)))]
            text = self._queries[name].text
        else:
            name, text = self._cold_pool[
                int(self.rng.integers(len(self._cold_pool)))
            ]
        run_seed = int(spec.run_seeds[int(self.rng.integers(len(spec.run_seeds)))])
        return _PlannedRequest(
            client=client,
            round=round_index,
            tenant=tenant,
            query_name=name,
            query_text=text,
            run_seed=run_seed,
        )

    def interarrival(self) -> float:
        return float(self.rng.exponential(self.spec.mean_interarrival))

    def think(self) -> float:
        return float(self.rng.exponential(self.spec.mean_think))


def run_load(
    lake,
    config: ServiceConfig,
    spec: WorkloadSpec | None = None,
    seed: int = 42,
    verify_answers: bool = True,
    telemetry: bool = True,
) -> DriverReport:
    """Run one seeded load test; see the module docstring for semantics.

    With *telemetry* on (the default) the run carries an SLO accountant
    and an event journal as admission observers.  Observers only read
    ticket fields, so the run is **bit-identical** to a telemetry-off run
    with the same seed — answers, virtual times, cache totals and the
    report fingerprint all match; the journal itself is deterministic per
    seed (its SHA-256 is pinned by the telemetry regression gate).
    """
    spec = spec or WorkloadSpec()
    config.validate()
    workload = _Workload(spec, seed)
    # Tenant roster: every simulated tenant under the default limits unless
    # the config names it explicitly.
    tenants = dict(config.tenants)
    for rank in range(spec.tenants):
        name = f"t{rank}"
        if name not in tenants:
            tenants[name] = TenantConfig(
                name=name,
                max_concurrency=config.default_tenant.max_concurrency,
                queue_depth=config.default_tenant.queue_depth,
            )
    from dataclasses import replace

    config = replace(config, tenants=tenants)

    from ..benchmark.baseline import NETWORK_CHOICES, POLICY_CHOICES

    policy = POLICY_CHOICES[config.policy]()
    network = NETWORK_CHOICES[config.network]()
    pool = EnginePool(
        lake,
        size=config.workers,
        policy=policy,
        network=network,
        runtime=config.runtime,
        exec=config.exec,
        batch_size=config.batch_size,
        plan_cache_size=config.plan_cache_size,
        subresult_cache_size=config.subresult_cache_size,
    )
    controller = AdmissionController(config)
    journal: EventJournal | None = None
    accountant: SLOAccountant | None = None
    if telemetry:
        journal = EventJournal()
        accountant = SLOAccountant(config)
        controller.add_observer(accountant)
        controller.add_observer(journal)
    # The pristine reference: same settings, caches off, its own engine —
    # every unique (query, seed) pair is executed once and memoized.
    reference = FederatedEngine(
        lake,
        policy=policy,
        network=network,
        runtime=config.runtime,
        exec=config.exec,
        batch_size=config.batch_size,
        enable_plan_cache=False,
        enable_subresult_cache=False,
    )
    reference_memo: dict[tuple[str, int], tuple[list, float]] = {}

    # Pre-plan every client's tenant and arrival; requests themselves are
    # drawn lazily in event order (so the RNG stream is consumed in one
    # deterministic order).
    heap: list[tuple[float, int, int, object]] = []
    event_seq = 0

    def schedule(when: float, kind: int, payload: object) -> None:
        nonlocal event_seq
        event_seq += 1
        heapq.heappush(heap, (when, kind, event_seq, payload))

    client_tenant: dict[int, str] = {}
    arrival = 0.0
    for client in range(spec.clients):
        arrival += workload.interarrival()
        client_tenant[client] = workload.tenant_for_client(client)
        schedule(arrival, _ARRIVE, (client, 0))

    results: list[RequestResult] = []
    tickets: dict[str, tuple[Ticket, _PlannedRequest]] = {}
    all_tickets: list[Ticket] = []
    request_counter = 0
    executions = 0
    mismatches: list[str] = []
    wall_start = time.perf_counter()

    def execute(planned: _PlannedRequest) -> tuple[float, int, dict]:
        """Run the request on the pool; returns (virtual duration, answers,
        blame components)."""
        nonlocal executions
        engine = pool.engine_for(executions)
        executions += 1
        answers, stats = engine.run(planned.query_text, seed=planned.run_seed)
        serialized = serialize_answers(answers)
        if verify_answers:
            memo_key = (planned.query_text, planned.run_seed)
            expected = reference_memo.get(memo_key)
            if expected is None:
                ref_answers, ref_stats = reference.run(
                    planned.query_text, seed=planned.run_seed
                )
                expected = reference_memo[memo_key] = (
                    serialize_answers(ref_answers),
                    ref_stats.execution_time,
                )
            if serialized != expected[0]:
                mismatches.append(
                    f"{planned.query_name} seed={planned.run_seed}: pooled "
                    f"answers differ from single-engine reference"
                )
            if stats.execution_time != expected[1]:
                mismatches.append(
                    f"{planned.query_name} seed={planned.run_seed}: virtual "
                    f"time {stats.execution_time!r} != reference {expected[1]!r}"
                )
        return stats.execution_time, len(serialized), stats.blame_components()

    def log_result(
        ticket: Ticket, planned: _PlannedRequest, answers: int | None
    ) -> None:
        latency = None
        if ticket.state == DONE and ticket.finished_at is not None:
            latency = ticket.finished_at - ticket.submitted_at
        elif ticket.state == TIMED_OUT and ticket.finished_at is not None:
            latency = ticket.finished_at - ticket.submitted_at
        results.append(
            RequestResult(
                request_id=ticket.request_id,
                client=planned.client,
                tenant=ticket.tenant,
                query=planned.query_name,
                run_seed=planned.run_seed,
                outcome=ticket.state,
                submitted_at=ticket.submitted_at,
                started_at=ticket.started_at,
                finished_at=ticket.finished_at,
                latency=latency,
                answers=answers,
                reason=ticket.reason,
            )
        )

    def next_round(planned: _PlannedRequest, now: float) -> None:
        """Closed loop: the client thinks, then issues its next request."""
        if planned.round + 1 < spec.requests_per_client:
            schedule(
                now + workload.think(), _ARRIVE, (planned.client, planned.round + 1)
            )

    # request_id -> (duration, answers, blame components)
    finish_info: dict[str, tuple[float, int, dict]] = {}

    def pump(now: float) -> None:
        # Queued tickets past their deadline become timeouts *before*
        # admission, and are logged here (start_ready would silently
        # expire them otherwise).
        for ticket in controller.expire_queued(now):
            __, planned = tickets[ticket.request_id]
            log_result(ticket, planned, None)
            next_round(planned, ticket.finished_at or now)
        for ticket in controller.start_ready(now):
            __, planned = tickets[ticket.request_id]
            duration, answer_count, components = execute(planned)
            finish_info[ticket.request_id] = (duration, answer_count, components)
            schedule(now + duration, _FINISH, ticket.request_id)

    clock = 0.0
    while heap:
        when, kind, __, payload = heapq.heappop(heap)
        # A client that timed out in the queue reacts at its *deadline*,
        # which may schedule its next arrival before events the simulation
        # has already processed.  Handle such events at the current clock —
        # virtual time must stay monotone or the audited start/finish
        # timestamps would violate causality (overlap a slot that was only
        # freed later).
        clock = when if when > clock else clock
        now = clock
        if kind == _ARRIVE:
            client, round_index = payload
            tenant = client_tenant[client]
            planned = workload.draw_request(client, round_index, tenant)
            request_counter += 1
            request_id = f"r-{request_counter:06d}"
            ticket = controller.submit(request_id, tenant, now)
            all_tickets.append(ticket)
            tickets[request_id] = (ticket, planned)
            if ticket.state == SHED:
                log_result(ticket, planned, None)
                next_round(planned, now)
            pump(now)
        else:  # _FINISH
            request_id = payload
            ticket, planned = tickets[request_id]
            controller.complete(ticket, now)
            __, answer_count, components = finish_info.pop(request_id)
            log_result(
                ticket, planned, answer_count if ticket.state == DONE else None
            )
            if accountant is not None and journal is not None and ticket.state == DONE:
                # Emitted right after the observer's "done" event, at the
                # same virtual finish time — journal order stays ticket
                # order, so the fingerprint is deterministic per seed.
                per_source = {
                    source: parts["network_delay"]
                    for source, parts in components["sources"].items()
                }
                accountant.note_execution_profile(
                    ticket.tenant,
                    components["engine_work"],
                    components["network_delay"],
                    components["cache_miss_penalty"],
                    per_source,
                )
                journal.append(
                    "exec-profile",
                    now,
                    request_id=request_id,
                    tenant=ticket.tenant,
                    engine=components["engine_work"],
                    network=components["network_delay"],
                    cache=components["cache_miss_penalty"],
                    total=components["total"],
                    sources=per_source,
                )
            next_round(planned, now)
            pump(now)

    wall_seconds = time.perf_counter() - wall_start
    audit = audit_schedule(all_tickets, config)
    cache_stats = {
        name: stats.as_dict() for name, stats in pool.cache_stats().items()
    }
    slo_snapshot: dict | None = None
    if telemetry and journal is not None and accountant is not None:
        # Closing marker: the shared-cache totals at end of run, stamped
        # at the virtual makespan.  Journal replays reproduce hit ratios
        # from this event alone.
        makespan = max(
            (result.finished_at or result.submitted_at for result in results),
            default=0.0,
        )
        journal.append("cache-snapshot", makespan, caches=cache_stats)
        slo_snapshot = accountant.snapshot(cache_stats=cache_stats)
    return DriverReport(
        seed=seed,
        spec=spec,
        results=results,
        cache_stats=cache_stats,
        admission=controller.snapshot(),
        wall_seconds=wall_seconds,
        executions=executions,
        mismatches=mismatches,
        audit_violations=audit,
        journal=journal,
        slo=slo_snapshot,
    )


def main(argv=None) -> int:  # pragma: no cover - thin shim over the CLI
    """``python -m repro.service.driver`` == ``repro loadtest``."""
    from ..cli import main as cli_main

    return cli_main(["loadtest", *(argv or [])])


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main(sys.argv[1:]))
