"""The multi-tenant query service: asyncio HTTP daemon over an engine pool.

Architecture (langbridge-style worker data plane, scaled to this repo)::

    HTTP clients ──> asyncio server ──> AdmissionController ──> EnginePool
                       (stdlib)          per-tenant FIFO,        N engines,
                                         limits, timeouts        shared caches

:class:`QueryService` is the transport-independent core: ``submit`` /
``status`` / ``result`` / ``trace`` work on plain dicts, so tests (and the
replay harness) can drive the exact service logic the HTTP layer exposes.
The HTTP layer itself is a minimal hand-rolled HTTP/1.1 server on
``asyncio.start_server`` — no third-party dependency, one JSON document
per response, ``Connection: close``.

API:

* ``POST /queries`` ``{"tenant": ..., "query": ..., "seed": ...}`` —
  ``202`` with a request ID, or ``429`` with a structured refusal when
  admission control sheds the request.
* ``GET /queries/<id>`` — status document (state machine:
  queued/running/done/timeout/shed/error).
* ``GET /queries/<id>/result`` — the answers (N3-serialized terms) plus
  execution stats; ``409`` while not finished, ``504`` after a timeout.
* ``GET /queries/<id>/trace`` — per-request Chrome trace (observe mode).
* ``GET /stats`` — versioned (``stats_version``) document: admission
  metrics, shared cache counters (engine caches and the cross-request
  result cache, evictions included), and the per-tenant SLO snapshot.
* ``GET /metrics`` — the same numbers in Prometheus text exposition
  format (``text/plain; version=0.0.4``), scrape-ready.
* ``GET /healthz`` — liveness.

Every request's execution carries its request ID into the PR-4 trace bus
(``RunObservation.request_id``), so a multi-request Chrome export shows
one process per request, attributable by ID.

Request timeouts cover queue wait + execution.  A request timing out while
queued never starts; one timing out mid-execution is answered with a
refusal immediately, but its concurrency slot is only released when the
worker thread actually finishes — the admission limits hold at every
instant, at the price of a slow query briefly "shadowing" a slot.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from ..federation.answers import EXEC_MODES, Solution
from ..obs.journal import EventJournal
from ..obs.promexport import render_exposition
from ..obs.slo import SLOAccountant
from .admission import AdmissionController, DONE, RUNNING, SHED, TIMED_OUT, Ticket
from .config import ServiceConfig, ServiceConfigError
from .pool import EnginePool

#: Version stamp of the ``/stats`` JSON shape.  v1 (PR 7) was unversioned;
#: v2 adds ``stats_version``, result-cache eviction counts, and the
#: per-tenant SLO snapshot; v3 adds the per-blame-class and per-source
#: network-delay histograms inside the SLO snapshot (slo_version 2) and
#: the per-request ``critical_path`` attribution on observed executions.
STATS_VERSION = 3

#: Largest accepted request body.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


def serialize_solution(solution: Solution) -> dict[str, str]:
    """One answer as a JSON-safe dict (N3-rendered terms, sorted names)."""
    return {name: solution[name].n3() for name in sorted(solution)}


def serialize_answers(answers: list[Solution]) -> list[dict[str, str]]:
    """Answers in stream order — bit-comparable across execution paths."""
    return [serialize_solution(solution) for solution in answers]


class _Request:
    """Service-side state of one submitted request."""

    __slots__ = (
        "ticket",
        "query",
        "seed",
        "runtime",
        "exec",
        "started",
        "finished",
        "answers",
        "stats",
        "observation",
        "error",
    )

    def __init__(
        self,
        ticket: Ticket,
        query: str,
        seed: int | None,
        runtime: str | None,
        exec: str | None,
    ):
        self.ticket = ticket
        self.query = query
        self.seed = seed
        self.runtime = runtime
        self.exec = exec
        self.started = asyncio.Event()
        self.finished = asyncio.Event()
        self.answers: list[dict[str, str]] | None = None
        self.stats: dict | None = None
        self.observation = None
        self.error: str | None = None


class QueryService:
    """The admission-controlled, pooled query execution core."""

    def __init__(
        self,
        lake,
        config: ServiceConfig,
        time_source: Callable[[], float] | None = None,
    ):
        config.validate()
        from ..benchmark.baseline import NETWORK_CHOICES, POLICY_CHOICES
        from ..runtime import RUNTIMES

        if config.policy not in POLICY_CHOICES:
            raise ServiceConfigError(
                f"unknown policy {config.policy!r}; choose from "
                f"{sorted(POLICY_CHOICES)}"
            )
        if config.network not in NETWORK_CHOICES:
            raise ServiceConfigError(
                f"unknown network {config.network!r}; choose from "
                f"{sorted(NETWORK_CHOICES)}"
            )
        if config.runtime not in RUNTIMES:
            raise ServiceConfigError(
                f"unknown runtime {config.runtime!r}; choose from {RUNTIMES}"
            )
        if config.exec not in EXEC_MODES:
            raise ServiceConfigError(
                f"unknown exec mode {config.exec!r}; choose from {EXEC_MODES}"
            )
        self.config = config
        self.pool = EnginePool(
            lake,
            size=config.workers,
            policy=POLICY_CHOICES[config.policy](),
            network=NETWORK_CHOICES[config.network](),
            runtime=config.runtime,
            exec=config.exec,
            batch_size=config.batch_size,
            plan_cache_size=config.plan_cache_size,
            subresult_cache_size=config.subresult_cache_size,
        )
        self.admission = AdmissionController(config)
        self._lake = lake
        # Cross-request result cache: (canonical query, catalog version,
        # seed, runtime, exec) -> (serialized answers, stats).  The catalog
        # version in the key invalidates every entry the moment the lake's
        # data changes; LRU-bounded by ``config.result_cache_size``.
        # Observed runs bypass it — a trace must measure a real execution.
        self._result_cache: OrderedDict[tuple, tuple[list, dict]] = OrderedDict()
        self._result_cache_lock = threading.Lock()
        self._result_cache_hits = 0
        self._result_cache_misses = 0
        self._result_cache_evictions = 0
        # Telemetry plane: SLO accountant + event journal observe every
        # admission transition; the journal optionally streams canonical
        # JSONL to config.journal_path.
        self.slo = SLOAccountant(config)
        self._journal_sink = (
            open(config.journal_path, "w", encoding="utf-8")
            if config.journal_path
            else None
        )
        self.journal = EventJournal(sink=self._journal_sink)
        self.admission.add_observer(self.slo)
        self.admission.add_observer(self.journal)
        self._requests: dict[str, _Request] = {}
        self._counter = 0
        self._executor = ThreadPoolExecutor(
            max_workers=config.global_concurrency,
            thread_name_prefix="repro-service",
        )
        self._now = time_source or time.monotonic
        self._lifecycles: set[asyncio.Task] = set()

    # -- core operations -----------------------------------------------------

    async def submit(self, payload: object) -> tuple[int, dict]:
        """Admit one request; returns (HTTP status, response document)."""
        if not isinstance(payload, dict):
            return 400, {"error": "bad-request", "detail": "body must be a JSON object"}
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            return 400, {
                "error": "bad-request",
                "detail": "field 'query' must be a non-empty string "
                "(benchmark name or SPARQL text)",
            }
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            return 400, {
                "error": "bad-request",
                "detail": f"field 'tenant' must be a non-empty string, got {tenant!r}",
            }
        seed = payload.get("seed")
        if seed is not None and not isinstance(seed, int):
            return 400, {
                "error": "bad-request",
                "detail": f"field 'seed' must be an integer, got {seed!r}",
            }
        runtime = payload.get("runtime")
        if runtime is not None:
            from ..runtime import RUNTIMES

            if runtime not in RUNTIMES:
                return 400, {
                    "error": "bad-request",
                    "detail": f"unknown runtime {runtime!r}; choose from {RUNTIMES}",
                }
        exec_mode = payload.get("exec")
        if exec_mode is not None and exec_mode not in EXEC_MODES:
            return 400, {
                "error": "bad-request",
                "detail": f"unknown exec mode {exec_mode!r}; choose from {EXEC_MODES}",
            }

        self._counter += 1
        request_id = f"r-{self._counter:06d}"
        ticket = self.admission.submit(request_id, tenant, self._now())
        record = _Request(ticket, query, seed, runtime, exec_mode)
        self._requests[request_id] = record
        if ticket.state == SHED:
            record.finished.set()
            body = ticket.refusal()
            body["error"] = "shed"
            return 429, body
        task = asyncio.get_running_loop().create_task(self._lifecycle(record))
        self._lifecycles.add(task)
        task.add_done_callback(self._lifecycles.discard)
        self._pump()
        return 202, {
            "request_id": request_id,
            "tenant": tenant,
            "state": ticket.state,
            "status_url": f"/queries/{request_id}",
        }

    def status(self, request_id: str) -> tuple[int, dict]:
        record = self._requests.get(request_id)
        if record is None:
            return 404, {"error": "not-found", "request_id": request_id}
        ticket = record.ticket
        body = ticket.to_dict()
        if record.error is not None:
            body["state"] = "error"
            body["detail"] = record.error
        elif ticket.state == DONE:
            body["answers"] = len(record.answers or [])
            if ticket.finished_at is not None:
                body["latency"] = ticket.finished_at - ticket.submitted_at
            if record.stats and "critical_path" in record.stats:
                body["critical_path"] = record.stats["critical_path"]
        return 200, body

    def result(self, request_id: str) -> tuple[int, dict]:
        record = self._requests.get(request_id)
        if record is None:
            return 404, {"error": "not-found", "request_id": request_id}
        ticket = record.ticket
        if record.error is not None:
            return 500, {
                "error": "execution-failed",
                "request_id": request_id,
                "detail": record.error,
            }
        if ticket.state == SHED:
            body = ticket.refusal()
            body["error"] = "shed"
            return 429, body
        if ticket.state == TIMED_OUT:
            body = ticket.refusal()
            body["error"] = "timeout"
            return 504, body
        if ticket.state != DONE:
            return 409, {
                "error": "not-ready",
                "request_id": request_id,
                "state": ticket.state,
            }
        return 200, {
            "request_id": request_id,
            "tenant": ticket.tenant,
            "answers": record.answers,
            "stats": record.stats,
        }

    def trace(self, request_id: str) -> tuple[int, dict]:
        record = self._requests.get(request_id)
        if record is None:
            return 404, {"error": "not-found", "request_id": request_id}
        if record.observation is None:
            return 404, {
                "error": "no-trace",
                "request_id": request_id,
                "detail": "run not observed (start the service with observe "
                "on) or not finished",
            }
        from ..obs import to_chrome_trace

        ticket = record.ticket
        label = f"{request_id} tenant={ticket.tenant}"
        return 200, to_chrome_trace([(label, record.observation)])

    def stats(self) -> tuple[int, dict]:
        caches = {
            name: stats.as_dict() for name, stats in self.pool.cache_stats().items()
        }
        with self._result_cache_lock:
            result_cache = {
                "capacity": self.config.result_cache_size,
                "entries": len(self._result_cache),
                "hits": self._result_cache_hits,
                "misses": self._result_cache_misses,
                "evictions": self._result_cache_evictions,
            }
        cache_stats = dict(caches)
        cache_stats["result"] = result_cache
        return 200, {
            "stats_version": STATS_VERSION,
            "admission": self.admission.snapshot(),
            "caches": caches,
            "pool": {"engines": len(self.pool)},
            "requests": len(self._requests),
            "result_cache": result_cache,
            "slo": self.slo.snapshot(cache_stats=cache_stats),
        }

    def metrics_text(self) -> str:
        """The ``/stats`` document rendered as Prometheus exposition text."""
        __, stats = self.stats()
        return render_exposition(stats)

    async def drain(self) -> None:
        """Wait for every in-flight lifecycle to finish (tests/shutdown)."""
        while self._lifecycles:
            await asyncio.gather(*list(self._lifecycles), return_exceptions=True)

    def close(self) -> None:
        self._executor.shutdown(wait=True)
        if self._journal_sink is not None:
            self._journal_sink.close()
            self._journal_sink = None

    # -- lifecycle -----------------------------------------------------------

    def _pump(self) -> None:
        """Start every startable queued request."""
        for ticket in self.admission.start_ready(self._now()):
            record = self._requests[ticket.request_id]
            record.started.set()
        # Tickets the controller expired while pumping surface through
        # their own lifecycle tasks (the queued-phase wait below).

    async def _lifecycle(self, record: _Request) -> None:
        ticket = record.ticket
        # Queued phase: wait for a slot, bounded by the deadline.
        remaining = None
        if ticket.deadline is not None:
            remaining = max(0.0, ticket.deadline - self._now())
        try:
            await asyncio.wait_for(record.started.wait(), timeout=remaining)
        except asyncio.TimeoutError:
            # Let the controller time the ticket out (it may have been
            # started concurrently; then just continue below).
            self.admission.expire_queued(max(self._now(), ticket.deadline))
            if ticket.state != RUNNING:
                record.finished.set()
                return
        # Running phase.
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, self._run_query, record)
        remaining = None
        if ticket.deadline is not None:
            remaining = max(0.0, ticket.deadline - self._now())
        timed_out = False
        try:
            outcome = await asyncio.wait_for(asyncio.shield(future), timeout=remaining)
        except asyncio.TimeoutError:
            timed_out = True
            record.finished.set()  # client can read the timeout refusal now
            outcome = await asyncio.gather(future, return_exceptions=True)
            outcome = outcome[0]
        except Exception as error:  # execution failed; surface as 500
            outcome = error
        if isinstance(outcome, BaseException):
            record.error = f"{type(outcome).__name__}: {outcome}"
        else:
            # Stored even after a timeout: the work is done anyway, and a
            # late poll of a timed-out request can still see its trace.
            record.answers, record.stats, record.observation = outcome
        now = self._now()
        if timed_out and ticket.deadline is not None:
            now = max(now, ticket.deadline)
        self.admission.complete(ticket, now)
        if record.error is not None:
            self.slo.note_error(ticket.tenant)
            self.journal.append(
                "error",
                now,
                request_id=ticket.request_id,
                tenant=ticket.tenant,
                detail=record.error,
            )
        record.finished.set()
        self._pump()

    def _result_cache_key(self, query_text: str, record: _Request) -> tuple:
        """Cache identity of one execution: canonical (whitespace-folded)
        query text, the lake's catalog version, and every knob that can
        change the answer stream (seed, runtime, exec mode)."""
        return (
            " ".join(query_text.split()),
            self._lake.catalog_version(),
            record.seed,
            record.runtime or self.config.runtime,
            record.exec or self.config.exec,
        )

    def _run_query(self, record: _Request):
        """Executor-thread body: borrow an engine, run, serialize."""
        from ..datasets import BENCHMARK_QUERIES

        named = BENCHMARK_QUERIES.get(record.query)
        query_text = named.text if named is not None else record.query
        use_cache = self.config.result_cache_size > 0 and not self.config.observe
        key = self._result_cache_key(query_text, record) if use_cache else None
        if use_cache:
            with self._result_cache_lock:
                cached = self._result_cache.get(key)
                if cached is not None:
                    self._result_cache.move_to_end(key)
                    self._result_cache_hits += 1
                    answers, stats = cached
                    return answers, dict(stats, result_cache="hit"), None
                self._result_cache_misses += 1
        engine = self.pool.checkout()
        try:
            stream = engine.execute(
                query_text,
                seed=record.seed,
                runtime=record.runtime,
                exec=record.exec,
                observe=self.config.observe,
            )
            answers = stream.collect()
            stats = stream.stats
            observation = stream.observation
            if observation is not None:
                observation.request_id = record.ticket.request_id
            serialized = serialize_answers(answers)
            stats_doc = {
                "answers": stats.answers,
                "execution_time": stats.execution_time,
                "time_to_first_answer": stats.time_to_first_answer,
                "messages": stats.messages,
                "cache": stats.cache_summary(),
            }
            # Fresh executions (never cache replays) feed the service-wide
            # blame histograms and leave an audit event in the journal.
            components = stats.blame_components()
            ticket = record.ticket
            self.slo.note_execution_profile(
                ticket.tenant,
                components["engine_work"],
                components["network_delay"],
                components["cache_miss_penalty"],
                {
                    source: parts["network_delay"]
                    for source, parts in components["sources"].items()
                },
            )
            self.journal.append(
                "exec-profile",
                self._now(),
                request_id=ticket.request_id,
                tenant=ticket.tenant,
                engine=components["engine_work"],
                network=components["network_delay"],
                cache=components["cache_miss_penalty"],
                total=components["total"],
                sources={
                    source: parts["network_delay"]
                    for source, parts in components["sources"].items()
                },
            )
            if observation is not None:
                from ..obs.critpath import attribute_run

                queue_wait = 0.0
                if ticket.started_at is not None:
                    queue_wait = max(0.0, ticket.started_at - ticket.submitted_at)
                report = attribute_run(observation, stats, queue_wait=queue_wait)
                stats_doc["critical_path"] = report.summary()
            if use_cache:
                evicted = 0
                with self._result_cache_lock:
                    self._result_cache[key] = (serialized, stats_doc)
                    self._result_cache.move_to_end(key)
                    while len(self._result_cache) > self.config.result_cache_size:
                        self._result_cache.popitem(last=False)
                        self._result_cache_evictions += 1
                        evicted += 1
                if evicted:
                    # Journaled from the executor thread (append is locked).
                    self.journal.append(
                        "result-cache-evict",
                        self._now(),
                        cache="result",
                        evicted=evicted,
                        request_id=record.ticket.request_id,
                    )
                return serialized, dict(stats_doc, result_cache="miss"), observation
            return serialized, stats_doc, observation
        finally:
            self.pool.checkin(engine)


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------


class ServiceServer:
    """The asyncio HTTP front of a :class:`QueryService`."""

    def __init__(self, service: QueryService):
        self.service = service
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        config = self.service.config
        self._server = await asyncio.start_server(
            self._handle_connection, config.host, config.port
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.drain()
        self.service.close()

    # -- request handling ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body = await self._handle_one(reader)
        except Exception as error:  # defensive: never kill the accept loop
            status, body = 500, {"error": "internal", "detail": str(error)}
        try:
            # A str body is pre-rendered plain text (the /metrics
            # exposition); anything else is a JSON document.
            if isinstance(body, str):
                payload = body.encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                payload = json.dumps(body, sort_keys=True).encode()
                content_type = "application/json"
            reason = _REASONS.get(status, "Unknown")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                + ("Retry-After: 1\r\n" if status == 429 else "")
                + "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + payload)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict | str]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "bad-request", "detail": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, __, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                size = int(length)
            except ValueError:
                return 400, {"error": "bad-request", "detail": "bad Content-Length"}
            if size > MAX_BODY_BYTES:
                return 413, {
                    "error": "too-large",
                    "detail": f"body exceeds {MAX_BODY_BYTES} bytes",
                }
            body = await reader.readexactly(size)
        return await self._route(method, path, body)

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict | str]:
        service = self.service
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "method-not-allowed"}
            return 200, {"status": "ok", "engines": len(service.pool)}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "method-not-allowed"}
            return service.stats()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "method-not-allowed"}
            return 200, service.metrics_text()
        if path == "/queries":
            if method != "POST":
                return 405, {"error": "method-not-allowed"}
            try:
                payload = json.loads(body.decode() or "null")
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                return 400, {"error": "bad-request", "detail": f"invalid JSON: {error}"}
            return await service.submit(payload)
        if path.startswith("/queries/"):
            if method != "GET":
                return 405, {"error": "method-not-allowed"}
            rest = path[len("/queries/"):]
            if rest.endswith("/result"):
                return service.result(rest[: -len("/result")])
            if rest.endswith("/trace"):
                return service.trace(rest[: -len("/trace")])
            if "/" not in rest:
                return service.status(rest)
        return 404, {"error": "not-found", "path": path}


async def start_service(lake, config: ServiceConfig) -> ServiceServer:
    """Build and start the HTTP service; returns the running server."""
    server = ServiceServer(QueryService(lake, config))
    await server.start()
    return server
