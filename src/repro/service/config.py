"""Service configuration: tenants, limits, and their validation.

One :class:`ServiceConfig` describes a whole deployment of the query
service — the engine pool, the admission-control limits, and the tenant
roster.  Validation is strict and front-loaded: every bad value raises
:class:`ServiceConfigError` with a message naming the offending field and
value, so ``repro serve`` fails fast with an actionable error instead of
misbehaving under load.

Tenant configs may come from a JSON document (``repro serve --tenants
file.json``)::

    {
      "acme":   {"max_concurrency": 4, "queue_depth": 32, "weight": 3.0},
      "globex": {"max_concurrency": 1, "queue_depth": 8}
    }

Unknown keys are rejected (a typo'd limit must not silently fall back to
the default).  Tenants not in the roster are admitted under
``default_tenant`` limits unless ``strict_tenants`` is set.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from ..exceptions import ReproError


class ServiceConfigError(ReproError):
    """A service/tenant configuration value is invalid."""


#: Keys accepted in one tenant's JSON/dict config.
_TENANT_KEYS = frozenset({"max_concurrency", "queue_depth", "weight"})


@dataclass(frozen=True)
class TenantConfig:
    """Admission limits of one tenant.

    ``weight`` is the tenant's fair-share weight: the admission
    controller's stride scheduler gives a weight-3 tenant ~3x the starts
    of a weight-1 tenant under contention.  The workload driver also uses
    it as the tenant-skew weight when generating traffic.
    """

    name: str
    max_concurrency: int = 2
    queue_depth: int = 16
    weight: float = 1.0

    def validate(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ServiceConfigError(
                f"tenant name must be a non-empty string, got {self.name!r}"
            )
        if not isinstance(self.max_concurrency, int) or self.max_concurrency < 1:
            raise ServiceConfigError(
                f"tenant {self.name!r}: max_concurrency must be a positive "
                f"integer, got {self.max_concurrency!r}"
            )
        if not isinstance(self.queue_depth, int) or self.queue_depth < 1:
            raise ServiceConfigError(
                f"tenant {self.name!r}: queue_depth must be a positive "
                f"integer, got {self.queue_depth!r}"
            )
        if not isinstance(self.weight, (int, float)) or self.weight <= 0:
            raise ServiceConfigError(
                f"tenant {self.name!r}: weight must be a positive number, "
                f"got {self.weight!r}"
            )

    @classmethod
    def from_dict(cls, name: str, payload: object) -> "TenantConfig":
        if not isinstance(payload, dict):
            raise ServiceConfigError(
                f"tenant {name!r}: config must be an object of limits, "
                f"got {type(payload).__name__} ({payload!r})"
            )
        unknown = sorted(set(payload) - _TENANT_KEYS)
        if unknown:
            raise ServiceConfigError(
                f"tenant {name!r}: unknown config keys {unknown}; "
                f"allowed: {sorted(_TENANT_KEYS)}"
            )
        tenant = cls(name=name, **payload)
        tenant.validate()
        return tenant


@dataclass
class ServiceConfig:
    """The query service's deployment configuration."""

    host: str = "127.0.0.1"
    port: int = 8089
    #: Number of pooled :class:`~repro.core.engine.FederatedEngine` workers
    #: (they share one plan/sub-result cache registry).
    workers: int = 4
    #: Hard cap on requests executing at once, across all tenants.
    global_concurrency: int = 8
    #: Per-request deadline in (wall or virtual) seconds, covering queue
    #: wait + execution; None disables timeouts.
    timeout: float | None = 30.0
    #: Limits applied to tenants absent from ``tenants``.
    default_tenant: TenantConfig = field(
        default_factory=lambda: TenantConfig(name="default")
    )
    #: The tenant roster (name -> limits).
    tenants: dict[str, TenantConfig] = field(default_factory=dict)
    #: Reject requests from tenants absent from the roster instead of
    #: applying ``default_tenant`` limits.
    strict_tenants: bool = False
    #: Execute observed (per-request spans/profiles, ``/queries/<id>/trace``).
    observe: bool = False
    # Engine-pool execution settings (same axes as the CLI).
    policy: str = "aware"
    network: str = "nodelay"
    runtime: str = "sequential"
    exec: str = "batch"
    batch_size: int | None = None
    plan_cache_size: int = 512
    subresult_cache_size: int = 4096
    #: Cross-request result cache entries, keyed on (canonical query,
    #: catalog version, seed, runtime, exec); 0 disables the cache.
    result_cache_size: int = 256
    #: Stream the structured event journal (canonical JSONL of admission
    #: decisions, deadline outcomes, cache evictions) to this path; None
    #: keeps the journal in memory only.
    journal_path: str | None = None

    def validate(self) -> None:
        if not isinstance(self.port, int) or not (0 <= self.port <= 65535):
            raise ServiceConfigError(
                f"port must be an integer in 0..65535 (0 = ephemeral), "
                f"got {self.port!r}"
            )
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ServiceConfigError(
                f"workers must be a positive integer, got {self.workers!r}"
            )
        if not isinstance(self.global_concurrency, int) or self.global_concurrency < 1:
            raise ServiceConfigError(
                "global_concurrency must be a positive integer, "
                f"got {self.global_concurrency!r}"
            )
        if self.timeout is not None and (
            not isinstance(self.timeout, (int, float)) or self.timeout <= 0
        ):
            raise ServiceConfigError(
                f"timeout must be positive (or None to disable), got {self.timeout!r}"
            )
        if self.plan_cache_size < 1:
            raise ServiceConfigError(
                f"plan_cache_size must be a positive integer, got {self.plan_cache_size!r}"
            )
        if self.subresult_cache_size < 1:
            raise ServiceConfigError(
                "subresult_cache_size must be a positive integer, "
                f"got {self.subresult_cache_size!r}"
            )
        if not isinstance(self.result_cache_size, int) or self.result_cache_size < 0:
            raise ServiceConfigError(
                "result_cache_size must be a non-negative integer "
                f"(0 disables), got {self.result_cache_size!r}"
            )
        if self.journal_path is not None and (
            not isinstance(self.journal_path, str) or not self.journal_path
        ):
            raise ServiceConfigError(
                f"journal_path must be a non-empty string (or None), "
                f"got {self.journal_path!r}"
            )
        self.default_tenant.validate()
        for name, tenant in self.tenants.items():
            if name != tenant.name:
                raise ServiceConfigError(
                    f"tenant roster key {name!r} does not match config name "
                    f"{tenant.name!r}"
                )
            tenant.validate()

    def tenant(self, name: str) -> TenantConfig:
        """The limits governing *name* (roster entry or the default)."""
        known = self.tenants.get(name)
        if known is not None:
            return known
        if self.strict_tenants:
            raise ServiceConfigError(
                f"unknown tenant {name!r} (strict_tenants is on; roster: "
                f"{sorted(self.tenants)})"
            )
        return replace(self.default_tenant, name=name)

    def with_tenants_json(self, text: str, source: str = "<tenants>") -> "ServiceConfig":
        """This config with the tenant roster parsed from JSON *text*."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ServiceConfigError(
                f"{source}: tenant config is not valid JSON: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise ServiceConfigError(
                f"{source}: tenant config must be a JSON object mapping "
                f"tenant names to limits, got {type(payload).__name__}"
            )
        tenants = {
            name: TenantConfig.from_dict(name, entry)
            for name, entry in payload.items()
        }
        clone = replace(self, tenants=tenants)
        clone.validate()
        return clone

    def describe(self) -> str:
        lines = [
            f"listen        {self.host}:{self.port}",
            f"workers       {self.workers} engines "
            f"({self.policy}/{self.network}, runtime={self.runtime}, exec={self.exec})",
            f"admission     global={self.global_concurrency} "
            f"timeout={'off' if self.timeout is None else f'{self.timeout:g}s'} "
            f"strict_tenants={self.strict_tenants}",
            f"default       concurrency={self.default_tenant.max_concurrency} "
            f"queue={self.default_tenant.queue_depth}",
            f"result-cache  "
            f"{'off' if not self.result_cache_size else f'{self.result_cache_size} entries'}",
            f"journal       {self.journal_path or 'in-memory'}",
        ]
        for name in sorted(self.tenants):
            tenant = self.tenants[name]
            lines.append(
                f"tenant {name:<12} concurrency={tenant.max_concurrency} "
                f"queue={tenant.queue_depth} weight={tenant.weight:g}"
            )
        return "\n".join(lines)
