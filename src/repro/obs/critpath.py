"""Critical-path attribution: tile the run's virtual time into blame classes.

The question the paper keeps asking — *where does federated query time
go?* — gets an exact answer here.  Every observed run's end-to-end virtual
time ``T`` is partitioned into non-overlapping segments, each blamed on
one class:

* ``engine_work`` — the engine loop's own charges (joins, filters,
  projection, sort);
* ``cache_miss_penalty`` — source-side virtual cost: the price of actually
  evaluating a sub-query at a source instead of replaying a cache;
* ``network_delay`` — request/answer transfer pauses (the paper's gamma
  delays plus message overhead);
* ``queue_wait`` — service-layer admission wait (zero at engine level;
  reported separately so execution attribution still sums to ``T``);
* ``planner_time`` — always zero today: planning never advances the
  virtual clock (kept in the class set so the schema is stable when
  planning is ever charged).

**Exactness.**  Boundaries are computed in :class:`fractions.Fraction`
arithmetic over the exact binary values of the recorded floats, so the
per-class durations sum to ``Fraction(T)`` *identically*, not within an
epsilon — the ``exact_classes`` strings in the report are those fractions
verbatim, and ``exact`` records the (machine-checked) invariant.

**Event/thread runs** are tiled from the scheduler's delivery records
(:class:`~repro.obs.causal.CausalRecorder`): between the engine's arrival
clock ``a`` and each delivery's event time ``t``, the engine was *waiting*
on that producer — the producer's cumulative source-cost delta splits the
wait into cache-miss work first, network delay second (the canonical
order; a producer's real charge interleaving per answer is
request→lookup→transfer, which this two-way split aggregates), and the
stretches between deliveries are pure engine work.  The segment list is
therefore the critical path itself: the unique chain of waits and
cascades that determined ``T``.

**Sequential runs** have no overlap, so the run's accumulators already
partition ``[0, T]``; they are tiled in canonical order (engine, then per
source cache cost, then per source network delay), with the final bucket
absorbing the ulp-scale difference between the float accumulator sum and
the clock's own float (the clock interleaved the same charges in a
different addition order).

The what-if **slack** analysis uses the scheduler's runner-up event
times: per source, the minimum lead its deliveries had over the second
best pending event — speed the source up by less than that and the
delivery order (hence the whole timeline) provably cannot change.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING

from .schema import validate_json_schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..federation.answers import ExecutionStats
    from .observation import RunObservation

#: Bump when the report dict shape changes.
CRITPATH_VERSION = 1

#: Every second of a run is blamed on exactly one of these.
BLAME_CLASSES = (
    "engine_work",
    "network_delay",
    "queue_wait",
    "cache_miss_penalty",
    "planner_time",
)

CRITPATH_SCHEMA = {
    "type": "object",
    "required": [
        "critpath_version",
        "runtime",
        "total",
        "exact",
        "classes",
        "exact_classes",
        "sources",
        "slack",
        "deliveries",
        "answers",
        "queue_wait",
        "structural_fingerprint",
    ],
    "properties": {
        "critpath_version": {"type": "integer"},
        "runtime": {"type": "string", "enum": ["sequential", "event", "thread"]},
        "total": {"type": "number"},
        "exact": {"type": "boolean"},
        "classes": {
            "type": "object",
            "required": list(BLAME_CLASSES),
            "properties": {name: {"type": "number"} for name in BLAME_CLASSES},
            "additionalProperties": False,
        },
        "exact_classes": {
            "type": "object",
            "required": list(BLAME_CLASSES),
            "properties": {name: {"type": "string"} for name in BLAME_CLASSES},
            "additionalProperties": False,
        },
        "sources": {"type": "object"},
        "slack": {"type": "object"},
        "deliveries": {"type": "integer"},
        "answers": {"type": "integer"},
        "queue_wait": {"type": "number"},
        "structural_fingerprint": {"type": "string"},
        "segments": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["start", "end", "class"],
                "properties": {
                    "start": {"type": "number"},
                    "end": {"type": "number"},
                    "class": {"type": "string", "enum": list(BLAME_CLASSES)},
                    "source": {"type": ["string", "null"]},
                },
            },
        },
    },
}


def fraction_str(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


@dataclass
class CriticalPathReport:
    """Exact attribution of one run's virtual time."""

    runtime: str
    total: float
    exact: bool
    classes: dict[str, float]
    exact_classes: dict[str, str]
    #: Per source: {"cache_miss_penalty": seconds, "network_delay": seconds}.
    sources: dict[str, dict[str, float]]
    #: Per source: minimum lead over the runner-up event (None when the
    #: source's producer only ever ran unopposed / sequential runtime).
    slack: dict[str, float | None]
    #: Chronological blame segments tiling [0, total].
    segments: list[dict]
    deliveries: int
    answers: int
    queue_wait: float
    structural_fingerprint: str

    def dominant_class(self) -> str:
        return max(BLAME_CLASSES, key=lambda name: (self.classes[name], name))

    def share(self, name: str) -> float:
        return self.classes[name] / self.total if self.total > 0 else 0.0

    def summary(self) -> dict:
        """The compact dict the service's ``/status`` embeds."""
        return {
            "total": self.total,
            "exact": self.exact,
            "classes": dict(self.classes),
            "dominant_class": self.dominant_class(),
            "queue_wait": self.queue_wait,
        }

    def to_dict(self, include_segments: bool = False) -> dict:
        document = {
            "critpath_version": CRITPATH_VERSION,
            "runtime": self.runtime,
            "total": self.total,
            "exact": self.exact,
            "classes": dict(self.classes),
            "exact_classes": dict(self.exact_classes),
            "sources": {
                source: dict(parts) for source, parts in self.sources.items()
            },
            "slack": dict(self.slack),
            "deliveries": self.deliveries,
            "answers": self.answers,
            "queue_wait": self.queue_wait,
            "structural_fingerprint": self.structural_fingerprint,
        }
        if include_segments:
            document["segments"] = list(self.segments)
        validate_json_schema(document, CRITPATH_SCHEMA)
        return document


class _Tiling:
    """Accumulates exact segments and per-class / per-source totals."""

    def __init__(self) -> None:
        self.classes = {name: Fraction(0) for name in BLAME_CLASSES}
        self.sources: dict[str, dict[str, Fraction]] = {}
        self.segments: list[dict] = []

    def add(
        self, name: str, source: str | None, start: Fraction, end: Fraction
    ) -> None:
        if end <= start:
            return
        self.classes[name] += end - start
        if source is not None:
            parts = self.sources.setdefault(
                source,
                {"cache_miss_penalty": Fraction(0), "network_delay": Fraction(0)},
            )
            parts[name] += end - start
        self.segments.append(
            {
                "start": float(start),
                "end": float(end),
                "class": name,
                "source": source,
            }
        )


def _tile_sequential(stats: "ExecutionStats", target: Fraction, tiling: _Tiling) -> None:
    """Tile [0, T] from the run's accumulators in canonical order.

    Sequential execution has no overlap: every clock advance was one
    charge, so the accumulators partition the timeline up to float
    summation order.  The last bucket's boundary is forced to ``T`` so the
    ulp residual (clock float vs. re-summed floats) lands there instead of
    breaking exactness.
    """
    buckets: list[tuple[str, str | None, float]] = [
        ("engine_work", None, stats.engine_cost)
    ]
    for source_id in sorted(stats.source_stats):
        buckets.append(
            ("cache_miss_penalty", source_id, stats.source_stats[source_id].virtual_cost)
        )
    for source_id in sorted(stats.source_stats):
        buckets.append(
            ("network_delay", source_id, stats.source_stats[source_id].network_delay)
        )
    boundary = Fraction(0)
    for position, (name, source_id, value) in enumerate(buckets):
        if position == len(buckets) - 1:
            end = target
        else:
            end = boundary + Fraction(value)
            if end > target:
                end = target
        tiling.add(name, source_id, boundary, end)
        boundary = end


def _tile_deliveries(
    deliveries: list[tuple],
    source_of: dict[int, str | None],
    target: Fraction,
    tiling: _Tiling,
) -> None:
    """Tile [0, T] from the scheduler's delivery records.

    For delivery *i* with engine arrival clock ``a_i`` and event time
    ``t_i``, the post-advance clock is ``e_i = max(a_i, t_i)``; the engine
    stretch ``[e_{i-1}, a_i]`` is pure cascade work and the wait
    ``[a_i, e_i]`` belongs to the delivering producer — split at the
    producer's cumulative source-cost delta (cache first, network delay
    as the remainder; the split point is clamped into the wait, so a
    producer that overlapped its source work with earlier engine time
    never over-claims).  The segment ends telescope — ``a_i`` *is* the
    previous cascade's end — so the sum is exactly ``T``.
    """
    prev_end = Fraction(0)
    last_cache: dict[int, Fraction] = {}
    for pid, _kind, time, arrival, _segment_start, cum_cache, _cum_network, _ru in deliveries:
        a = Fraction(arrival)
        e = Fraction(time)
        if e < a:
            e = a
        tiling.add("engine_work", None, prev_end, a)
        cache_total = Fraction(cum_cache)
        if e > a:
            source_id = source_of.get(pid)
            mid = a + (cache_total - last_cache.get(pid, Fraction(0)))
            if mid > e:
                mid = e
            elif mid < a:  # pragma: no cover - cumulative charges never shrink
                mid = a
            tiling.add("cache_miss_penalty", source_id, a, mid)
            tiling.add("network_delay", source_id, mid, e)
        last_cache[pid] = cache_total
        prev_end = e
    tiling.add("engine_work", None, prev_end, target)


def _slack_by_source(
    deliveries: list[tuple], source_of: dict[int, str | None]
) -> dict[str, float | None]:
    slack: dict[str, float | None] = {}
    for pid, _kind, time, *_rest, runner_up in deliveries:
        source_id = source_of.get(pid)
        if source_id is None:
            continue
        if runner_up is None:
            slack.setdefault(source_id, None)
            continue
        lead = runner_up - time
        current = slack.get(source_id)
        if current is None or lead < current:
            slack[source_id] = lead
    return slack


def attribute_run(
    observation: "RunObservation",
    stats: "ExecutionStats",
    queue_wait: float = 0.0,
) -> CriticalPathReport:
    """Compute the exact blame tiling of one observed run."""
    from .causal import build_causal_graph

    target = Fraction(stats.execution_time)
    tiling = _Tiling()
    recorder = observation.causal
    source_of = {spawn[0]: spawn[2] for spawn in recorder.spawns}
    if recorder.deliveries:
        _tile_deliveries(recorder.deliveries, source_of, target, tiling)
        slack = _slack_by_source(recorder.deliveries, source_of)
    else:
        _tile_sequential(stats, target, tiling)
        slack = {}

    exact = sum(tiling.classes.values(), Fraction(0)) == target
    graph = build_causal_graph(observation, queue_wait if queue_wait else None)
    return CriticalPathReport(
        runtime=observation.runtime,
        total=stats.execution_time,
        exact=exact,
        classes={name: float(value) for name, value in tiling.classes.items()},
        exact_classes={
            name: fraction_str(value) for name, value in tiling.classes.items()
        },
        sources={
            source: {name: float(value) for name, value in parts.items()}
            for source, parts in sorted(tiling.sources.items())
        },
        slack=dict(sorted(slack.items())),
        segments=tiling.segments,
        deliveries=len(recorder.deliveries),
        answers=stats.answers,
        queue_wait=queue_wait,
        structural_fingerprint=graph.structural_fingerprint(),
    )


# -- renderers ----------------------------------------------------------------


def render_critpath(report: CriticalPathReport, label: str | None = None) -> str:
    """Human-readable attribution table for one run."""
    lines = []
    title = "critical-path attribution"
    if label:
        title += f" — {label}"
    lines.append(title)
    exactness = "exact" if report.exact else "INEXACT"
    lines.append(
        f"total {report.total:.9f}s  runtime={report.runtime}  "
        f"attribution={exactness}"
    )
    lines.append(f"{'class':<20} {'seconds':>14} {'share':>8}")
    for name in BLAME_CLASSES:
        lines.append(
            f"{name:<20} {report.classes[name]:>14.9f} {report.share(name):>7.1%}"
        )
    if report.sources:
        lines.append("")
        lines.append(
            f"{'source':<28} {'cache_miss':>12} {'network':>12} {'min slack':>12}"
        )
        for source, parts in report.sources.items():
            slack = report.slack.get(source)
            slack_text = f"{slack:.6f}" if slack is not None else "-"
            lines.append(
                f"{source:<28} {parts['cache_miss_penalty']:>12.6f} "
                f"{parts['network_delay']:>12.6f} {slack_text:>12}"
            )
    lines.append("")
    lines.append(
        f"deliveries={report.deliveries} answers={report.answers} "
        f"queue_wait={report.queue_wait:.6f} dominant={report.dominant_class()}"
    )
    return "\n".join(lines)


def aggregate_reports(reports: list[CriticalPathReport]) -> dict:
    """Grid-level attribution: summed per-class seconds and shares."""
    classes = {name: 0.0 for name in BLAME_CLASSES}
    total = 0.0
    for report in reports:
        total += report.total
        for name in BLAME_CLASSES:
            classes[name] += report.classes[name]
    shares = {
        name: (classes[name] / total if total > 0 else 0.0) for name in BLAME_CLASSES
    }
    return {
        "cells": len(reports),
        "total": total,
        "classes": classes,
        "shares": shares,
        "all_exact": all(report.exact for report in reports),
    }


def render_aggregate(aggregate: dict) -> str:
    lines = [
        f"grid attribution over {aggregate['cells']} cells "
        f"(total {aggregate['total']:.6f}s, "
        f"{'all exact' if aggregate['all_exact'] else 'INEXACT CELLS'})",
        f"{'class':<20} {'seconds':>14} {'share':>8}",
    ]
    for name in BLAME_CLASSES:
        lines.append(
            f"{name:<20} {aggregate['classes'][name]:>14.6f} "
            f"{aggregate['shares'][name]:>7.1%}"
        )
    return "\n".join(lines)


def chrome_overlay(
    observation: "RunObservation",
    report: CriticalPathReport,
    label: str = "repro",
) -> dict:
    """The run's Chrome trace with the blame tiling as an extra thread row.

    Loads in Perfetto next to the engine/source tracks: one colored slice
    per blame segment, so the critical path is visible as a gap-free band
    under the spans that caused it.
    """
    from .export import to_chrome_trace

    document = to_chrome_trace([(label, observation)])
    events = document["traceEvents"]
    tid = 10_000  # far above the bus-track/operator rows
    events.append(
        {
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": "critical path"},
        }
    )
    for segment in report.segments:
        args = {"blame": segment["class"]}
        if segment["source"] is not None:
            args["source"] = segment["source"]
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "name": segment["class"],
                "cat": "critpath",
                "ts": segment["start"] * 1e6,
                "dur": (segment["end"] - segment["start"]) * 1e6,
                "args": args,
            }
        )
    return document
