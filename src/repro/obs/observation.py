"""One run's observation: trace bus + operator profiles + metrics.

A :class:`RunObservation` is created when the caller asks for an observed
execution (``FederatedEngine.execute(..., observe=True)``, ``engine.profile``
or ``engine.observe``) and attached to the run's
:class:`~repro.federation.answers.RunContext` as ``context.obs``.  Every
instrumentation hook in the engine guards on ``context.obs is None``, so an
unobserved run executes exactly the PR-3 hot paths — no bus, no extra
attribute traffic in the per-tuple loops, bit-identical timelines.

The observation never mutates the plan it watches: operator profiles are
keyed on operator *identity*, and the sequential instrumenter restores any
rebinding in a ``finally`` — so plans served from the plan cache stay
clean for the next (observed or unobserved) execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .bus import (
    CATEGORY_CACHE,
    CATEGORY_QUERY,
    ENGINE_TRACK,
    TraceBus,
)
from .causal import CausalRecorder
from .metrics import MetricsRegistry
from .profile import OperatorProfile, ProfileReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.planner import FederatedPlan
    from ..federation.answers import ExecutionStats
    from ..federation.operators import FedOperator


class RunObservation:
    """Everything recorded about one observed query execution."""

    def __init__(self) -> None:
        self.bus = TraceBus()
        self.metrics = MetricsRegistry()
        #: Spawn/delivery facts from the event/thread schedulers (empty for
        #: sequential runs); consumed by :mod:`repro.obs.causal` and
        #: :mod:`repro.obs.critpath`.
        self.causal = CausalRecorder()
        #: Operator profiles in plan pre-order (the report's order).
        self.profiles: list[OperatorProfile] = []
        self._profile_by_op: dict[int, OperatorProfile] = {}
        self.plan: FederatedPlan | None = None
        self.runtime: str = "sequential"
        #: Service-layer request ID of the run (None outside the service).
        #: The Chrome exporter stamps it on the run's process metadata, so
        #: per-request spans are attributable in a multi-request trace.
        self.request_id: str | None = None
        self._finalized = False

    # -- plan registration ---------------------------------------------------

    def register_plan(self, plan: "FederatedPlan") -> None:
        """Register every operator of *plan* (pre-order) for row accounting.

        Idempotent per observation; does not touch the plan object, so a
        cached plan can be observed any number of times.
        """
        if self.plan is not None:
            return
        self.plan = plan
        self._register(plan.root, 0)

    def _register(self, operator: "FedOperator", depth: int) -> None:
        profile = OperatorProfile(
            label=operator.label(),
            depth=depth,
            estimated_rows=getattr(operator, "estimated_rows", None),
        )
        self.profiles.append(profile)
        self._profile_by_op[id(operator)] = profile
        for child in operator.children():
            self._register(child, depth + 1)

    def profile_for(self, operator: "FedOperator") -> OperatorProfile | None:
        return self._profile_by_op.get(id(operator))

    # -- reports -------------------------------------------------------------

    def profile_report(self, stats: "ExecutionStats | None" = None) -> ProfileReport:
        report = ProfileReport(
            entries=self.profiles,
            runtime=self.runtime,
        )
        if stats is not None:
            report.execution_time = stats.execution_time
        return report

    # -- finalization --------------------------------------------------------

    def finalize(self, stats: "ExecutionStats") -> None:
        """Fold the finished run's statistics into the metrics registry and
        stamp the whole-query span.  Called when the result stream ends
        (including early-abandoned streams); idempotent."""
        if self._finalized:
            return
        self._finalized = True
        self.bus.add_span(
            "query",
            CATEGORY_QUERY,
            ENGINE_TRACK,
            0.0,
            stats.execution_time,
            answers=stats.answers,
            runtime=self.runtime,
        )
        metrics = self.metrics
        metrics.counter("answers").inc(stats.answers)
        metrics.gauge("execution_time_seconds").set(stats.execution_time)
        if stats.time_to_first_answer is not None:
            metrics.gauge("time_to_first_answer_seconds").set(stats.time_to_first_answer)
        metrics.counter("messages").inc(stats.messages)
        metrics.gauge("engine_cost_seconds").set(stats.engine_cost)
        for source_id, source in sorted(stats.source_stats.items()):
            metrics.counter("source_requests", source=source_id).inc(source.requests)
            metrics.counter("source_answers", source=source_id).inc(source.answers)
            metrics.gauge("source_cost_seconds", source=source_id).set(
                source.virtual_cost
            )
            metrics.gauge("source_network_delay_seconds", source=source_id).set(
                source.network_delay
            )
            metrics.histogram("source_network_delay").observe(source.network_delay)
        if stats.plan_cache_hit is not None:
            metrics.counter(
                "plan_cache", outcome="hit" if stats.plan_cache_hit else "miss"
            ).inc()
        metrics.counter("subresult_cache", outcome="hit").inc(
            stats.subresult_cache_hits
        )
        metrics.counter("subresult_cache", outcome="miss").inc(
            stats.subresult_cache_misses
        )
        for profile in self.profiles:
            metrics.counter("operator_rows_out", operator=profile.label).inc(
                profile.rows_out
            )
            metrics.histogram("operator_rows_out_distribution").observe(
                profile.rows_out
            )
        if self.plan is not None:
            self._finalize_plan_metrics()

    def _finalize_plan_metrics(self) -> None:
        metrics = self.metrics
        for decision in self.plan.merge_decisions:
            outcome = "taken" if decision.merged else "declined"
            metrics.counter("h1_merge", outcome=outcome).inc()
            metrics.counter(
                "h1_merge_reason", outcome=outcome, reason=decision.reason
            ).inc()
        for source_id, decision in self.plan.filter_decisions:
            outcome = "source" if decision.pushed else "engine"
            metrics.counter("h2_filter", placement=outcome).inc()
            metrics.counter(
                "h2_filter_reason",
                placement=outcome,
                reason=decision.reason,
                source=source_id,
            ).inc()

    # -- planning-side events (emitted by engine/planner) ---------------------

    def plan_cache_event(self, hit: bool) -> None:
        self.bus.add_instant(
            "plan-cache", CATEGORY_CACHE, outcome="hit" if hit else "miss"
        )

    # -- exports --------------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-friendly dump: spans, instants, profiles, metrics."""
        from .export import observation_to_json

        return observation_to_json(self)

    def to_chrome_trace(self, label: str = "repro") -> dict:
        """Chrome trace-event dict (load in Perfetto / chrome://tracing)."""
        from .export import to_chrome_trace

        return to_chrome_trace([(label, self)])
