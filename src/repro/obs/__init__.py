"""Observability: tracing, metrics and explain across all runtimes.

The subsystem has four pieces:

* :mod:`repro.obs.bus` — the trace bus: spans and instant events stamped
  with virtual-clock times on per-task tracks (determinism contract:
  never wall time);
* :mod:`repro.obs.metrics` — counters / gauges / histograms aggregated
  per run (rows per operator, cache hits, delay per source, H1/H2
  decisions taken vs declined);
* :mod:`repro.obs.observation` — :class:`RunObservation`, the per-run
  container the engine attaches to a :class:`~repro.federation.answers.RunContext`
  when observation is requested (``context.obs``; ``None`` = zero cost);
* exporters — the ASCII :class:`~repro.obs.profile.ProfileReport`, a JSON
  dump, and Chrome trace-event format for Perfetto
  (:mod:`repro.obs.export`, validated by :mod:`repro.obs.schema`).

Entry points: ``FederatedEngine.profile`` (EXPLAIN ANALYZE under any
runtime), ``FederatedEngine.observe`` (full observation), ``repro explain``
and ``repro trace --format chrome`` on the command line.
"""

from .bus import (
    CATEGORY_CACHE,
    CATEGORY_OPERATOR,
    CATEGORY_PLAN,
    CATEGORY_QUERY,
    CATEGORY_WRAPPER,
    ENGINE_TRACK,
    Instant,
    Span,
    TraceBus,
)
from .analyze import (
    ANALYZE_SCHEMA,
    AnalyzeReport,
    Hotspot,
    OperatorAnalysis,
    analyze_observation,
)
from .causal import (
    CAUSAL_SCHEMA,
    CausalGraph,
    CausalRecorder,
    build_causal_graph,
)
from .critpath import (
    BLAME_CLASSES,
    CRITPATH_SCHEMA,
    CriticalPathReport,
    aggregate_reports,
    attribute_run,
    chrome_overlay,
    render_aggregate,
    render_critpath,
)
from .doctor import DOCTOR_SCHEMA, DoctorReport, Finding, diagnose
from .explain import DecisionRecord, EXPLAIN_SCHEMA, ExplainReport, explain_plan
from .export import chrome_trace_json, observation_to_json, to_chrome_trace
from .instrument import instrument_sequential, profile_plan
from .journal import (
    EventJournal,
    JOURNAL_VERSION,
    SEAL_KIND,
    canonical_line,
    verify_journal_file,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .observation import RunObservation
from .profile import OperatorProfile, ProfileReport, q_error
from .promexport import (
    ExpositionError,
    parse_exposition,
    render_exposition,
    validate_exposition,
)
from .schema import CHROME_TRACE_SCHEMA, validate_chrome_trace, validate_json_schema
from .slo import (
    BUCKET_BOUNDS,
    LogBucketHistogram,
    SLOAccountant,
    SLO_VERSION,
    TenantSLO,
    accountant_from_journal,
    render_slo_report,
)

__all__ = [
    "ANALYZE_SCHEMA",
    "AnalyzeReport",
    "BLAME_CLASSES",
    "BUCKET_BOUNDS",
    "CAUSAL_SCHEMA",
    "CRITPATH_SCHEMA",
    "CATEGORY_CACHE",
    "CATEGORY_OPERATOR",
    "CATEGORY_PLAN",
    "CATEGORY_QUERY",
    "CATEGORY_WRAPPER",
    "CHROME_TRACE_SCHEMA",
    "CausalGraph",
    "CausalRecorder",
    "Counter",
    "CriticalPathReport",
    "DOCTOR_SCHEMA",
    "DecisionRecord",
    "DoctorReport",
    "ENGINE_TRACK",
    "EXPLAIN_SCHEMA",
    "EventJournal",
    "Finding",
    "ExplainReport",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "Hotspot",
    "Instant",
    "JOURNAL_VERSION",
    "LogBucketHistogram",
    "MetricsRegistry",
    "OperatorAnalysis",
    "OperatorProfile",
    "ProfileReport",
    "RunObservation",
    "SEAL_KIND",
    "SLOAccountant",
    "SLO_VERSION",
    "Span",
    "TenantSLO",
    "TraceBus",
    "accountant_from_journal",
    "aggregate_reports",
    "analyze_observation",
    "attribute_run",
    "build_causal_graph",
    "canonical_line",
    "chrome_overlay",
    "chrome_trace_json",
    "diagnose",
    "explain_plan",
    "instrument_sequential",
    "observation_to_json",
    "parse_exposition",
    "profile_plan",
    "q_error",
    "render_aggregate",
    "render_critpath",
    "render_exposition",
    "render_slo_report",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_exposition",
    "validate_json_schema",
    "verify_journal_file",
]
