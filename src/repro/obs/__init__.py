"""Observability: tracing, metrics and explain across all runtimes.

The subsystem has four pieces:

* :mod:`repro.obs.bus` — the trace bus: spans and instant events stamped
  with virtual-clock times on per-task tracks (determinism contract:
  never wall time);
* :mod:`repro.obs.metrics` — counters / gauges / histograms aggregated
  per run (rows per operator, cache hits, delay per source, H1/H2
  decisions taken vs declined);
* :mod:`repro.obs.observation` — :class:`RunObservation`, the per-run
  container the engine attaches to a :class:`~repro.federation.answers.RunContext`
  when observation is requested (``context.obs``; ``None`` = zero cost);
* exporters — the ASCII :class:`~repro.obs.profile.ProfileReport`, a JSON
  dump, and Chrome trace-event format for Perfetto
  (:mod:`repro.obs.export`, validated by :mod:`repro.obs.schema`).

Entry points: ``FederatedEngine.profile`` (EXPLAIN ANALYZE under any
runtime), ``FederatedEngine.observe`` (full observation), ``repro explain``
and ``repro trace --format chrome`` on the command line.
"""

from .bus import (
    CATEGORY_CACHE,
    CATEGORY_OPERATOR,
    CATEGORY_PLAN,
    CATEGORY_QUERY,
    CATEGORY_WRAPPER,
    ENGINE_TRACK,
    Instant,
    Span,
    TraceBus,
)
from .analyze import (
    ANALYZE_SCHEMA,
    AnalyzeReport,
    Hotspot,
    OperatorAnalysis,
    analyze_observation,
)
from .explain import DecisionRecord, EXPLAIN_SCHEMA, ExplainReport, explain_plan
from .export import chrome_trace_json, observation_to_json, to_chrome_trace
from .instrument import instrument_sequential, profile_plan
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .observation import RunObservation
from .profile import OperatorProfile, ProfileReport, q_error
from .schema import CHROME_TRACE_SCHEMA, validate_chrome_trace, validate_json_schema

__all__ = [
    "ANALYZE_SCHEMA",
    "AnalyzeReport",
    "CATEGORY_CACHE",
    "CATEGORY_OPERATOR",
    "CATEGORY_PLAN",
    "CATEGORY_QUERY",
    "CATEGORY_WRAPPER",
    "CHROME_TRACE_SCHEMA",
    "Counter",
    "DecisionRecord",
    "ENGINE_TRACK",
    "EXPLAIN_SCHEMA",
    "ExplainReport",
    "Gauge",
    "Histogram",
    "Hotspot",
    "Instant",
    "MetricsRegistry",
    "OperatorAnalysis",
    "OperatorProfile",
    "ProfileReport",
    "RunObservation",
    "Span",
    "TraceBus",
    "analyze_observation",
    "chrome_trace_json",
    "explain_plan",
    "instrument_sequential",
    "observation_to_json",
    "profile_plan",
    "q_error",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_json_schema",
]
