"""Structured event journal: an append-only, canonically-encoded record
of service decisions.

Where the trace bus captures *how one query executed*, the journal
captures *what the service decided*: admissions, sheds, deadline
outcomes, replans from the feedback loop, result-cache evictions, and
end-of-run cache snapshots.  Events are dicts serialized as canonical
JSONL (sorted keys, no whitespace), so the journal of a seeded
``repro loadtest`` is **bit-deterministic**: the SHA-256
:meth:`EventJournal.fingerprint` is identical across two same-seed runs,
and the telemetry regression gate pins it.

Clock discipline matches the trace bus: the journal never reads a clock.
Every timestamp arrives from the caller — ticket fields stamped by the
admission controller's driving clock (virtual in the loadtest driver,
wall in the live server) or an explicit ``ts`` argument.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import IO, TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.admission import Ticket

#: Version stamp carried by every journal event.
JOURNAL_VERSION = 1

#: Event kinds the journal knows how to emit (admission transitions plus
#: the service/feedback-layer events).  Readers should tolerate unknown
#: kinds — the vocabulary is open for future PRs.
EVENT_KINDS = (
    "submit",
    "shed",
    "start",
    "done",
    "running-timeout",
    "queued-timeout",
    "tenant-idle",
    "error",
    "replan",
    "result-cache-evict",
    "cache-snapshot",
    "exec-profile",
)

#: Kind of the optional integrity trailer ``write_jsonl(..., seal=True)``
#: appends: it carries the SHA-256 fingerprint and count of the event
#: lines before it, so ``verify_journal_file`` can prove a file on disk
#: was neither tampered with nor truncated.
SEAL_KIND = "journal-seal"


def canonical_line(event: dict) -> str:
    """One event as canonical JSON: sorted keys, minimal separators."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class EventJournal:
    """Append-only event log with a canonical SHA-256 fingerprint.

    Events accumulate in memory (ordered); an optional *sink* (any
    text-mode file object) additionally receives each canonical line as
    it is appended, flushed per event so a crashed run still leaves a
    usable journal.  Appends are lock-protected — result-cache evictions
    are journaled from executor threads while admission events come from
    the loop thread.
    """

    def __init__(self, sink: IO[str] | None = None):
        self._events: list[dict] = []
        self._sink = sink
        self._lock = threading.Lock()
        #: The seal line found by :meth:`read_jsonl` (never an event).
        self.seal: dict | None = None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[dict]:
        return iter(list(self._events))

    @property
    def events(self) -> list[dict]:
        return list(self._events)

    def append(self, kind: str, ts: float, **fields) -> dict:
        event = {"v": JOURNAL_VERSION, "kind": kind, "ts": ts}
        event.update(fields)
        with self._lock:
            self._events.append(event)
            if self._sink is not None:
                self._sink.write(canonical_line(event) + "\n")
                self._sink.flush()
        return event

    # -- the admission controller's observer protocol ------------------------

    def admission_event(self, kind: str, ticket: "Ticket") -> None:
        """Record one ticket transition with the quantities an audit needs."""
        base = {"request_id": ticket.request_id, "tenant": ticket.tenant}
        if kind == "submit":
            self.append(
                kind,
                ticket.submitted_at,
                deadline=ticket.deadline,
                seq=ticket.seq,
                **base,
            )
        elif kind == "shed":
            self.append(kind, ticket.submitted_at, reason=ticket.reason, **base)
        elif kind == "start":
            self.append(
                kind,
                ticket.started_at,
                queue_wait=ticket.started_at - ticket.submitted_at,
                stride_pass=ticket.stride_pass,
                **base,
            )
        elif kind == "done":
            self.append(
                kind,
                ticket.finished_at,
                execution=ticket.finished_at - ticket.started_at,
                end_to_end=ticket.finished_at - ticket.submitted_at,
                **base,
            )
        elif kind == "running-timeout":
            # A running request past its deadline: the slot was freed
            # *late* — `overrun` records by how much.
            self.append(
                kind,
                ticket.finished_at,
                execution=ticket.finished_at - ticket.started_at,
                overrun=ticket.finished_at - ticket.deadline,
                **base,
            )
        elif kind == "queued-timeout":
            self.append(
                kind,
                ticket.finished_at,
                waited=ticket.finished_at - ticket.submitted_at,
                **base,
            )
        elif kind == "tenant-idle":
            # Tenant queue drained to idle (no queued, no running).  The
            # ticket is whichever transition emptied it; ts is its
            # finish/expiry stamp.
            self.append(kind, ticket.finished_at, tenant=ticket.tenant)

    # -- fingerprinting / io --------------------------------------------------

    def canonical_lines(self) -> list[str]:
        return [canonical_line(event) for event in self._events]

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSONL — the determinism pin."""
        digest = hashlib.sha256()
        for line in self.canonical_lines():
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self._events:
            kind = event["kind"]
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def seal_line(self) -> str:
        """The integrity trailer for the current events, as one canonical
        JSONL line: fingerprint + event count of everything before it."""
        return canonical_line(
            {
                "v": JOURNAL_VERSION,
                "kind": SEAL_KIND,
                "fingerprint": self.fingerprint(),
                "events": len(self._events),
            }
        )

    def write_jsonl(self, path: str, seal: bool = False) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.canonical_lines():
                handle.write(line + "\n")
            if seal:
                handle.write(self.seal_line() + "\n")

    @classmethod
    def read_jsonl(cls, path: str) -> "EventJournal":
        journal = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if isinstance(event, dict) and event.get("kind") == SEAL_KIND:
                    # The trailer is integrity metadata, not an event: keep
                    # it aside so replay/fingerprinting see the events only.
                    journal.seal = event
                    continue
                journal._events.append(event)
        return journal

    @classmethod
    def from_events(cls, events: Iterable[dict]) -> "EventJournal":
        journal = cls()
        journal._events.extend(events)
        return journal


def verify_journal_file(
    path: str, allow_unsealed: bool = False
) -> tuple[bool, list[str], dict]:
    """Integrity-check a journal file on disk.

    Re-parses every line, checks the per-line schema (``v`` int, ``kind``
    str, numeric ``ts`` on events), locates the seal trailer and re-derives
    the SHA-256 fingerprint of the event lines before it.  Returns
    ``(ok, problems, info)`` where *info* carries what a report wants:
    event count, counts by kind, the recomputed fingerprint and the seal
    (if any).  Tampered, truncated, reordered or seal-less files (unless
    *allow_unsealed*) all come back ``ok=False`` with a problem per cause.
    """
    problems: list[str] = []
    events: list[dict] = []
    seal: dict | None = None
    digest = hashlib.sha256()
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                problems.append(f"line {lineno}: not valid JSON")
                continue
            if not isinstance(event, dict):
                problems.append(f"line {lineno}: not a JSON object")
                continue
            if seal is not None:
                problems.append(
                    f"line {lineno}: content after the seal line "
                    "(appended or reordered journal)"
                )
                continue
            if not isinstance(event.get("v"), int):
                problems.append(f"line {lineno}: missing/non-integer 'v'")
            kind = event.get("kind")
            if not isinstance(kind, str):
                problems.append(f"line {lineno}: missing/non-string 'kind'")
                continue
            if kind == SEAL_KIND:
                seal = event
                continue
            if not isinstance(event.get("ts"), (int, float)) or isinstance(
                event.get("ts"), bool
            ):
                problems.append(f"line {lineno}: missing/non-numeric 'ts'")
            events.append(event)
            # Fingerprint the canonical re-encoding: byte-level edits that
            # do not change the parsed value (whitespace) are forgiven,
            # anything that changes an event is caught.
            digest.update(canonical_line(event).encode("utf-8"))
            digest.update(b"\n")
    fingerprint = digest.hexdigest()
    if seal is None:
        if not allow_unsealed:
            problems.append("no seal line: journal is unsealed or truncated")
    else:
        expected = seal.get("fingerprint")
        if not isinstance(expected, str):
            problems.append("seal line: missing/non-string 'fingerprint'")
        elif expected != fingerprint:
            problems.append(
                "fingerprint mismatch: journal content was tampered with "
                f"(seal {expected[:12]}…, recomputed {fingerprint[:12]}…)"
            )
        declared = seal.get("events")
        if not isinstance(declared, int):
            problems.append("seal line: missing/non-integer 'events'")
        elif declared != len(events):
            problems.append(
                f"event count mismatch: seal declares {declared}, "
                f"file has {len(events)} (truncated or padded journal)"
            )
    counts: dict[str, int] = {}
    for event in events:
        kind = event.get("kind")
        if isinstance(kind, str):
            counts[kind] = counts.get(kind, 0) + 1
    info = {
        "events": len(events),
        "counts_by_kind": dict(sorted(counts.items())),
        "fingerprint": fingerprint,
        "seal": seal,
    }
    return (not problems), problems, info
