"""EXPLAIN ANALYZE: q-error feedback from observed runs to the planner.

The planner orders joins over cardinality *estimates* (molecule/table row
counts, no join-selectivity model) while the observation layer records the
*actual* rows each operator produced.  This module closes the loop: it
lines both up per operator, computes the q-error ``max(est/actual,
actual/est)`` — the standard accuracy measure of the cardinality-estimation
literature — and reports which Heuristic-1/Heuristic-2 decisions sat on the
worst-estimated operators, so a bad plan can be traced back to the estimate
that caused it.

Everything here is derived from plan metadata and the runtime-invariant
operator profiles, so a query analyzed under the sequential, event and
thread runtimes reports identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .explain import DecisionRecord, explain_plan
from .profile import q_error

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.planner import FederatedPlan
    from ..federation.answers import ExecutionStats
    from ..federation.operators import FedOperator
    from .observation import RunObservation


@dataclass
class OperatorAnalysis:
    """One plan operator: the planner's estimate vs the observed rows."""

    label: str
    depth: int
    actual_rows: int
    estimated_rows: float | None
    q_error: float | None
    #: Source ids reachable in this operator's subtree (links heuristic
    #: decisions, which are per-source, to engine-level operators).
    sources: tuple[str, ...] = ()

    def describe(self) -> str:
        if self.estimated_rows is None:
            return f"{self.label}  [rows={self.actual_rows} est=? q=?]"
        return (
            f"{self.label}  [rows={self.actual_rows} "
            f"est={self.estimated_rows:g} q={self.q_error:.2f}]"
        )


@dataclass
class Hotspot:
    """A worst-estimated operator plus the heuristic decisions on it."""

    operator_index: int
    q_error: float
    decisions: list[DecisionRecord] = field(default_factory=list)


@dataclass
class AnalyzeReport:
    """EXPLAIN ANALYZE for one executed query: estimates, actuals, q-error."""

    policy: str
    network: str
    runtime: str
    execution_time: float
    answers: int
    operators: list[OperatorAnalysis] = field(default_factory=list)
    hotspots: list[Hotspot] = field(default_factory=list)

    # -- summaries -----------------------------------------------------------

    def estimated(self) -> list[OperatorAnalysis]:
        return [op for op in self.operators if op.q_error is not None]

    @property
    def max_q_error(self) -> float:
        qs = [op.q_error for op in self.estimated()]
        return max(qs) if qs else 1.0

    @property
    def mean_q_error(self) -> float:
        qs = [op.q_error for op in self.estimated()]
        return sum(qs) / len(qs) if qs else 1.0

    # -- renderings ----------------------------------------------------------

    def render(self) -> str:
        lines = [
            (
                f"Explain Analyze [{self.policy}] network={self.network} "
                f"runtime={self.runtime}"
            ),
            (
                f"{self.answers} answers in {self.execution_time:.4f} virtual s | "
                f"q-error max={self.max_q_error:.2f} mean={self.mean_q_error:.2f} "
                f"over {len(self.estimated())} estimated operators"
            ),
        ]
        for op in self.operators:
            lines.append("  " * op.depth + op.describe())
        if self.hotspots:
            lines.append("Worst-estimated operators:")
            for hotspot in self.hotspots:
                op = self.operators[hotspot.operator_index]
                lines.append(f"  q={hotspot.q_error:.2f}  {op.label}")
                for decision in hotspot.decisions:
                    lines.append(f"    {decision.describe()}")
                if not hotspot.decisions:
                    lines.append("    (no heuristic decision involves this operator)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "network": self.network,
            "runtime": self.runtime,
            "execution_time": self.execution_time,
            "answers": self.answers,
            "q_error": {
                "max": self.max_q_error,
                "mean": self.mean_q_error,
                "estimated_operators": len(self.estimated()),
            },
            "operators": [
                {
                    "label": op.label,
                    "depth": op.depth,
                    "actual_rows": op.actual_rows,
                    "estimated_rows": op.estimated_rows,
                    "q_error": op.q_error,
                    "sources": list(op.sources),
                }
                for op in self.operators
            ],
            "hotspots": [
                {
                    "operator_index": hotspot.operator_index,
                    "q_error": hotspot.q_error,
                    "decisions": [
                        {
                            "heuristic": decision.heuristic,
                            "subject": decision.subject,
                            "taken": decision.taken,
                            "outcome": decision.outcome,
                            "reason": decision.reason,
                            "estimate": decision.estimate,
                            "alternative_estimate": decision.alternative_estimate,
                        }
                        for decision in hotspot.decisions
                    ],
                }
                for hotspot in self.hotspots
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AnalyzeReport":
        report = cls(
            policy=payload["policy"],
            network=payload["network"],
            runtime=payload["runtime"],
            execution_time=payload["execution_time"],
            answers=payload["answers"],
            operators=[
                OperatorAnalysis(
                    label=op["label"],
                    depth=op["depth"],
                    actual_rows=op["actual_rows"],
                    estimated_rows=op["estimated_rows"],
                    q_error=op["q_error"],
                    sources=tuple(op["sources"]),
                )
                for op in payload["operators"]
            ],
        )
        for hotspot in payload["hotspots"]:
            report.hotspots.append(
                Hotspot(
                    operator_index=hotspot["operator_index"],
                    q_error=hotspot["q_error"],
                    decisions=[
                        DecisionRecord(
                            heuristic=d["heuristic"],
                            subject=d["subject"],
                            taken=d["taken"],
                            outcome=d["outcome"],
                            reason=d["reason"],
                            estimate=d.get("estimate"),
                            alternative_estimate=d.get("alternative_estimate"),
                        )
                        for d in hotspot["decisions"]
                    ],
                )
            )
        return report


#: Schema of :meth:`AnalyzeReport.to_dict` (validated by the CLI before
#: emitting JSON, and by the round-trip tests — the machine-readable
#: contract of ``repro explain --analyze --format json``).
_DECISION_SCHEMA = {
    "type": "object",
    "required": [
        "heuristic",
        "subject",
        "taken",
        "outcome",
        "reason",
        "estimate",
        "alternative_estimate",
    ],
    "properties": {
        "heuristic": {"type": "string", "enum": ["H1", "H2"]},
        "subject": {"type": "string"},
        "taken": {"type": "boolean"},
        "outcome": {"type": "string"},
        "reason": {"type": "string"},
        "estimate": {"type": ["number", "null"]},
        "alternative_estimate": {"type": ["number", "null"]},
    },
    "additionalProperties": False,
}

ANALYZE_SCHEMA: dict = {
    "type": "object",
    "required": [
        "policy",
        "network",
        "runtime",
        "execution_time",
        "answers",
        "q_error",
        "operators",
        "hotspots",
    ],
    "properties": {
        "policy": {"type": "string"},
        "network": {"type": "string"},
        "runtime": {"type": "string", "enum": ["sequential", "event", "thread"]},
        "execution_time": {"type": "number"},
        "answers": {"type": "integer"},
        "q_error": {
            "type": "object",
            "required": ["max", "mean", "estimated_operators"],
            "properties": {
                "max": {"type": "number"},
                "mean": {"type": "number"},
                "estimated_operators": {"type": "integer"},
            },
            "additionalProperties": False,
        },
        "operators": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "label",
                    "depth",
                    "actual_rows",
                    "estimated_rows",
                    "q_error",
                    "sources",
                ],
                "properties": {
                    "label": {"type": "string"},
                    "depth": {"type": "integer"},
                    "actual_rows": {"type": "integer"},
                    "estimated_rows": {"type": ["number", "null"]},
                    "q_error": {"type": ["number", "null"]},
                    "sources": {"type": "array", "items": {"type": "string"}},
                },
                "additionalProperties": False,
            },
        },
        "hotspots": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["operator_index", "q_error", "decisions"],
                "properties": {
                    "operator_index": {"type": "integer"},
                    "q_error": {"type": "number"},
                    "decisions": {"type": "array", "items": _DECISION_SCHEMA},
                },
                "additionalProperties": False,
            },
        },
    },
    "additionalProperties": False,
}


def _subtree_sources(operator: "FedOperator") -> tuple[str, ...]:
    sources: list[str] = []

    def walk(node: "FedOperator") -> None:
        source_id = getattr(node, "source_id", None)
        if source_id is not None:
            sources.append(source_id)
        for child in node.children():
            walk(child)

    walk(operator)
    return tuple(sorted(set(sources)))


def _star_source_map(plan: "FederatedPlan") -> dict[str, set[str]]:
    """Star subject name -> source ids it was planned against (from the
    plan's unit log), so H1 decisions (which name stars) can be related to
    operators (which name sources)."""
    mapping: dict[str, set[str]] = {}
    for unit in plan.units:
        if hasattr(unit, "source_id"):  # MergeGroup
            for star in unit.stars:
                mapping.setdefault(star.subject_name, set()).add(unit.source_id)
        else:  # SelectedStar
            targets = mapping.setdefault(unit.star.subject_name, set())
            for candidate in unit.candidates:
                targets.add(candidate.source_id)
    return mapping


def analyze_observation(
    observation: "RunObservation",
    stats: "ExecutionStats",
    hotspot_count: int = 3,
) -> AnalyzeReport:
    """Build the EXPLAIN ANALYZE report from one observed execution.

    *observation* must carry a registered plan (every ``engine.observe`` /
    ``engine.analyze`` run does).  ``hotspot_count`` bounds how many
    worst-estimated operators get their heuristic decisions attached.
    """
    plan = observation.plan
    if plan is None:
        raise ValueError("observation has no registered plan to analyze")
    # Plan operators in pre-order — the exact order register_plan used, so
    # profiles[i] measures operators[i].
    operators: list["FedOperator"] = []

    def walk(node: "FedOperator") -> None:
        operators.append(node)
        for child in node.children():
            walk(child)

    walk(plan.root)
    analyses: list[OperatorAnalysis] = []
    for operator, profile in zip(operators, observation.profiles):
        estimated = profile.estimated_rows
        analyses.append(
            OperatorAnalysis(
                label=profile.label,
                depth=profile.depth,
                actual_rows=profile.rows_out,
                estimated_rows=estimated,
                q_error=None if estimated is None else q_error(estimated, profile.rows_out),
                sources=_subtree_sources(operator),
            )
        )
    report = AnalyzeReport(
        policy=plan.policy.name,
        network=plan.network.name,
        runtime=observation.runtime,
        execution_time=stats.execution_time,
        answers=stats.answers,
        operators=analyses,
    )
    star_sources = _star_source_map(plan)
    decisions = explain_plan(plan).decisions
    ranked = sorted(
        (index for index, op in enumerate(analyses) if op.q_error is not None),
        key=lambda index: (-analyses[index].q_error, index),
    )
    for index in ranked[:hotspot_count]:
        op = analyses[index]
        related: list[DecisionRecord] = []
        touched = set(op.sources)
        for decision in decisions:
            if decision.heuristic == "H1":
                # subject is "starA + starB"; map star names to sources.
                stars = [part.strip() for part in decision.subject.split("+")]
                involved: set[str] = set()
                for star in stars:
                    involved |= star_sources.get(star, set())
            else:
                # subject is "[source] FILTER(...)".
                source = decision.subject.split("]", 1)[0].lstrip("[")
                involved = {source}
            if involved & touched:
                related.append(decision)
        report.hotspots.append(
            Hotspot(operator_index=index, q_error=op.q_error, decisions=related)
        )
    return report
