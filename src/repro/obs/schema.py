"""A minimal JSON-schema checker and the Chrome trace-event schema.

The container deliberately carries no third-party ``jsonschema``
dependency, so this module implements the small subset of JSON Schema the
trace exporter needs — ``type``, ``properties``, ``required``, ``items``,
``enum``, ``additionalProperties`` — enough for CI to validate every
exported trace before uploading it as an artifact.
"""

from __future__ import annotations

from typing import Any

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[expected])


def validate_json_schema(instance: Any, schema: dict, path: str = "$") -> list[str]:
    """Validate *instance* against *schema*; returns a list of problems
    (empty = valid).  Supports the subset documented in the module docstring."""
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(instance, one) for one in allowed):
            return [
                f"{path}: expected type {'/'.join(allowed)}, "
                f"got {type(instance).__name__}"
            ]
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']!r}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, value in instance.items():
            if name in properties:
                errors.extend(
                    validate_json_schema(value, properties[name], f"{path}.{name}")
                )
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path}: unexpected property {name!r}")
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(
                validate_json_schema(item, schema["items"], f"{path}[{index}]")
            )
    return errors


#: Schema of the exporter's Chrome trace-event JSON (object format, with
#: "X" complete events, "i" instants and "M" metadata records) — the subset
#: of the Trace Event Format that Perfetto and chrome://tracing load.
CHROME_TRACE_SCHEMA: dict = {
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "properties": {
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "pid", "tid", "name"],
                "properties": {
                    "ph": {"type": "string", "enum": ["X", "i", "M"]},
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "ts": {"type": "number"},
                    "dur": {"type": "number"},
                    "s": {"type": "string", "enum": ["t", "p", "g"]},
                    "args": {"type": "object"},
                },
                "additionalProperties": False,
            },
        },
    },
}


def validate_chrome_trace(trace: Any) -> list[str]:
    """Validate an exported Chrome trace dict; returns problems (empty=ok).

    Beyond the schema, checks the exporter's own invariants: complete
    events need ``ts``/``dur`` with non-negative duration, and every
    pid/tid pair must have been announced by metadata records.
    """
    errors = validate_json_schema(trace, CHROME_TRACE_SCHEMA)
    if errors:
        return errors
    named: set[tuple[int, int]] = set()
    processes: set[int] = set()
    for index, event in enumerate(trace["traceEvents"]):
        where = f"$.traceEvents[{index}]"
        if event["ph"] == "M":
            if event["name"] == "process_name":
                processes.add(event["pid"])
            elif event["name"] == "thread_name":
                named.add((event["pid"], event["tid"]))
            continue
        if "ts" not in event:
            errors.append(f"{where}: timed event without 'ts'")
            continue
        if event["ph"] == "X":
            if "dur" not in event:
                errors.append(f"{where}: complete event without 'dur'")
            elif event["dur"] < 0:
                errors.append(f"{where}: negative duration {event['dur']}")
        if event["pid"] not in processes:
            errors.append(f"{where}: pid {event['pid']} has no process_name metadata")
        elif (event["pid"], event["tid"]) not in named:
            errors.append(
                f"{where}: tid {event['tid']} (pid {event['pid']}) has no "
                "thread_name metadata"
            )
    return errors
