"""Causal span graphs: why each piece of virtual time happened.

PR 4's trace bus records *spans* — flat intervals per track.  This module
adds the causal structure between them, recorded by the event/thread
schedulers at zero cost when observation is off:

* **operator → child pulls** — the compiled plan's tree, walked pre-order
  (the "structural" part of the graph; identical for all three runtimes,
  so its fingerprint pins plan-shape drift);
* **spawn / dependent-join gate edges** — which operator started each
  producer task, and for dependent joins, which block sequence gated it;
* **rendezvous deliveries** — every producer event the engine consumed,
  with the engine clock *before* the delivery, the producer's segment
  start (its last granted resume time) and the producer's cumulative
  source/network charges at the yield.  These are the raw measurements
  :mod:`repro.obs.critpath` turns into an exact blame tiling;
* **queue-admission edges** — the service layer's queue wait, attached
  when a request's journal events are available.

Everything is stamped from virtual clocks only: the recorder stores the
floats the schedulers already computed, so a fixed seed reproduces the
graph bit for bit, and a plain (unobserved) run never touches it.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .observation import RunObservation

#: Bump when the graph dict shape changes.
CAUSAL_VERSION = 1

#: Minimal schema for :meth:`CausalGraph.to_dict` (validated in tests via
#: :func:`repro.obs.schema.validate_json_schema`).
CAUSAL_SCHEMA = {
    "type": "object",
    "required": ["causal_version", "runtime", "nodes", "edges", "structural_fingerprint"],
    "properties": {
        "causal_version": {"type": "integer"},
        "runtime": {"type": "string"},
        "request_id": {"type": ["string", "null"]},
        "structural_fingerprint": {"type": "string"},
        "nodes": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["id", "kind"],
                "properties": {
                    "id": {"type": "string"},
                    "kind": {
                        "type": "string",
                        "enum": ["operator", "task", "engine", "admission"],
                    },
                },
            },
        },
        "edges": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["src", "dst", "kind"],
                "properties": {
                    "src": {"type": "string"},
                    "dst": {"type": "string"},
                    "kind": {
                        "type": "string",
                        "enum": [
                            "pull",
                            "spawn",
                            "gate",
                            "rendezvous",
                            "queue-admission",
                        ],
                    },
                },
            },
        },
    },
}


class CausalRecorder:
    """Append-only log of spawn and delivery facts from one scheduled run.

    Sequential runs leave it empty (there are no producer tasks); the
    event/thread schedulers append one spawn record per producer and one
    delivery record per consumed event (answers *and* stream closes).
    Records are plain tuples — the hot loop pays one append and two float
    reads per *delivery*, never per tuple.
    """

    __slots__ = ("spawns", "deliveries")

    def __init__(self) -> None:
        #: ``(pid, key, source_id, label, start, op_ref)`` per producer, in
        #: spawn (= pid) order.  *op_ref* is ``id()`` of the underlying
        #: :class:`~repro.federation.operators.ServiceNode`, resolvable
        #: against the registered plan's pre-order walk.
        self.spawns: list[tuple] = []
        #: ``(pid, kind, time, arrival, segment_start, cum_cache,
        #: cum_network, runner_up)`` per delivered event, in delivery order:
        #: *time* is the event time, *arrival* the engine clock before
        #: ``advance_to``, *segment_start* the producer's last granted
        #: resume, *cum_cache*/*cum_network* the producer's cumulative
        #: source virtual cost / network delay at the yield, and
        #: *runner_up* the second-best pending event time (None when the
        #: producer ran unopposed).
        self.deliveries: list[tuple] = []

    def record_spawn(
        self,
        pid: int,
        key: tuple[int, ...],
        source_id: str | None,
        label: str,
        start: float,
        op_ref: int,
    ) -> None:
        self.spawns.append((pid, key, source_id, label, start, op_ref))

    def record_delivery(
        self,
        pid: int,
        kind: str,
        time: float,
        arrival: float,
        segment_start: float,
        cum_cache: float,
        cum_network: float,
        runner_up: float | None,
    ) -> None:
        self.deliveries.append(
            (pid, kind, time, arrival, segment_start, cum_cache, cum_network, runner_up)
        )


class CausalGraph:
    """The assembled DAG: structural operator tree + runtime overlay."""

    def __init__(
        self,
        nodes: list[dict],
        edges: list[dict],
        runtime: str,
        request_id: str | None,
    ) -> None:
        self.nodes = nodes
        self.edges = edges
        self.runtime = runtime
        self.request_id = request_id

    def structural_fingerprint(self) -> str:
        """SHA-256 over the structural (plan-shape) part of the graph.

        Covers operator nodes and pull edges only — no times, no pids — so
        it is bit-identical across sequential/event/thread runs of the
        same plan and changes exactly when the plan shape does.
        """
        structural = {
            "nodes": [
                {"id": node["id"], "label": node["label"], "depth": node["depth"]}
                for node in self.nodes
                if node["kind"] == "operator"
            ],
            "edges": [
                {"src": edge["src"], "dst": edge["dst"]}
                for edge in self.edges
                if edge["kind"] == "pull"
            ],
        }
        payload = json.dumps(structural, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "causal_version": CAUSAL_VERSION,
            "runtime": self.runtime,
            "request_id": self.request_id,
            "structural_fingerprint": self.structural_fingerprint(),
            "nodes": self.nodes,
            "edges": self.edges,
        }


def build_causal_graph(
    observation: "RunObservation", queue_wait: float | None = None
) -> CausalGraph:
    """Assemble the causal DAG for one observed run.

    The structural layer comes from the registered plan; the runtime layer
    from the scheduler's :class:`CausalRecorder` (empty for sequential
    runs).  *queue_wait*, when given, attaches the service-layer admission
    edge so end-to-end causality includes time spent queued.
    """
    nodes: list[dict] = []
    edges: list[dict] = []
    index_by_op: dict[int, str] = {}

    def walk(operator, depth: int, parent_id: str | None) -> None:
        node_id = f"op:{len(index_by_op)}"
        index_by_op[id(operator)] = node_id
        nodes.append(
            {
                "id": node_id,
                "kind": "operator",
                "label": operator.label(),
                "depth": depth,
            }
        )
        if parent_id is not None:
            edges.append({"src": parent_id, "dst": node_id, "kind": "pull"})
        for child in operator.children():
            walk(child, depth + 1, node_id)

    if observation.plan is not None:
        walk(observation.plan.root, 0, None)

    engine_id = "engine"
    nodes.append({"id": engine_id, "kind": "engine", "label": "engine loop"})

    recorder = observation.causal
    for pid, key, source_id, label, start, op_ref in recorder.spawns:
        task_id = f"task:{pid}"
        nodes.append(
            {
                "id": task_id,
                "kind": "task",
                "pid": pid,
                "key": list(key),
                "source": source_id,
                "label": label,
                "start": start,
            }
        )
        operator_id = index_by_op.get(op_ref)
        if operator_id is not None:
            edges.append(
                {
                    "src": operator_id,
                    "dst": task_id,
                    # A multi-part key means a dependent-join inner block:
                    # the spawn is gated on the outer block filling up.
                    "kind": "gate" if len(key) > 1 else "spawn",
                    "at": start,
                }
            )
    for pid, kind, time, arrival, *_rest in recorder.deliveries:
        wait = time - arrival
        edges.append(
            {
                "src": f"task:{pid}",
                "dst": engine_id,
                "kind": "rendezvous",
                "payload": kind,
                "t": time,
                "wait": wait if wait > 0.0 else 0.0,
            }
        )

    if queue_wait is not None:
        nodes.append({"id": "admission", "kind": "admission", "label": "admission queue"})
        edges.append(
            {
                "src": "admission",
                "dst": engine_id,
                "kind": "queue-admission",
                "wait": queue_wait,
            }
        )

    return CausalGraph(nodes, edges, observation.runtime, observation.request_id)
