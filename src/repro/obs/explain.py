"""Heuristic-decision explain records (``repro explain <query>``).

A :class:`FederatedPlan` already carries its decision log — every
Heuristic-1 merge considered and every Heuristic-2 filter placement, each
with the reason string produced at decision time (index present or absent,
network profile, translatability).  This module turns that log into a
structured, renderable record: the FedQPL argument that logical plans
should make source-level decisions explicit, applied to our planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.planner import FederatedPlan


@dataclass
class DecisionRecord:
    """One heuristic decision: what was considered, what happened, why.

    ``estimate`` is the planner's cardinality estimate for the chosen
    alternative and ``alternative_estimate`` the one for the *declined*
    alternative (H1: merged vs separate rows; H2: source-filtered vs
    unfiltered rows) — so a declined merge or placement can be judged by
    the numbers the planner saw, not just its reason string.
    """

    heuristic: str  # "H1" | "H2"
    subject: str  # "starA + starB" or "[source] FILTER(...)"
    taken: bool  # H1: merged; H2: pushed to the source
    outcome: str  # human verdict ("merged", "kept separate", "source", "engine")
    reason: str
    estimate: float | None = None
    alternative_estimate: float | None = None

    def describe(self) -> str:
        line = f"{self.heuristic} {self.subject}: {self.outcome} — {self.reason}"
        if self.estimate is not None and self.alternative_estimate is not None:
            line += (
                f" [est {self.estimate:g} rows; declined alternative "
                f"est {self.alternative_estimate:g} rows]"
            )
        return line


@dataclass
class ExplainReport:
    """The full decision record of one planned query."""

    policy: str
    network: str
    plan_text: str
    decisions: list[DecisionRecord] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def h1_decisions(self) -> list[DecisionRecord]:
        return [decision for decision in self.decisions if decision.heuristic == "H1"]

    def h2_decisions(self) -> list[DecisionRecord]:
        return [decision for decision in self.decisions if decision.heuristic == "H2"]

    def render(self) -> str:
        h1 = self.h1_decisions()
        h2 = self.h2_decisions()
        lines = [
            f"Explain [{self.policy}] network={self.network}",
            self.plan_text,
            "",
            (
                f"Heuristic 1 (join push-down): "
                f"{sum(d.taken for d in h1)} merged, "
                f"{sum(not d.taken for d in h1)} kept separate"
            ),
        ]
        for decision in h1:
            lines.append(f"  {decision.subject}: {decision.outcome} — {decision.reason}")
        if not h1:
            lines.append("  (no merge opportunities considered)")
        lines.append(
            f"Heuristic 2 (filter placement): "
            f"{sum(d.taken for d in h2)} at source, "
            f"{sum(not d.taken for d in h2)} at engine"
        )
        for decision in h2:
            lines.append(f"  {decision.subject}: {decision.outcome} — {decision.reason}")
        if not h2:
            lines.append("  (no filters to place)")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "network": self.network,
            "plan": self.plan_text,
            "decisions": [
                {
                    "heuristic": decision.heuristic,
                    "subject": decision.subject,
                    "taken": decision.taken,
                    "outcome": decision.outcome,
                    "reason": decision.reason,
                    "estimate": decision.estimate,
                    "alternative_estimate": decision.alternative_estimate,
                }
                for decision in self.decisions
            ],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExplainReport":
        """Inverse of :meth:`to_dict` — the round-trip the JSON contract
        tests pin down (``repro explain --format json`` output)."""
        return cls(
            policy=payload["policy"],
            network=payload["network"],
            plan_text=payload["plan"],
            decisions=[
                DecisionRecord(
                    heuristic=entry["heuristic"],
                    subject=entry["subject"],
                    taken=entry["taken"],
                    outcome=entry["outcome"],
                    reason=entry["reason"],
                    estimate=entry.get("estimate"),
                    alternative_estimate=entry.get("alternative_estimate"),
                )
                for entry in payload["decisions"]
            ],
            notes=list(payload["notes"]),
        )


#: Schema of :meth:`ExplainReport.to_dict` — validated by the CLI before
#: printing JSON so the ``repro explain --format json`` contract cannot
#: silently drift (checked with the dependency-free validator in
#: :mod:`repro.obs.schema`).
EXPLAIN_SCHEMA: dict = {
    "type": "object",
    "required": ["policy", "network", "plan", "decisions", "notes"],
    "properties": {
        "policy": {"type": "string"},
        "network": {"type": "string"},
        "plan": {"type": "string"},
        "decisions": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "heuristic",
                    "subject",
                    "taken",
                    "outcome",
                    "reason",
                    "estimate",
                    "alternative_estimate",
                ],
                "properties": {
                    "heuristic": {"type": "string", "enum": ["H1", "H2"]},
                    "subject": {"type": "string"},
                    "taken": {"type": "boolean"},
                    "outcome": {
                        "type": "string",
                        "enum": ["merged", "kept separate", "source", "engine"],
                    },
                    "reason": {"type": "string"},
                    "estimate": {"type": ["number", "null"]},
                    "alternative_estimate": {"type": ["number", "null"]},
                },
                "additionalProperties": False,
            },
        },
        "notes": {"type": "array", "items": {"type": "string"}},
    },
    "additionalProperties": False,
}


def explain_plan(plan: "FederatedPlan") -> ExplainReport:
    """Build the decision record for *plan* from its decision log."""
    decisions: list[DecisionRecord] = []
    for merge in plan.merge_decisions:
        taken_est, declined_est = merge.est_merged, merge.est_separate
        if not merge.merged:
            taken_est, declined_est = declined_est, taken_est
        decisions.append(
            DecisionRecord(
                heuristic="H1",
                subject=f"{merge.star_a} + {merge.star_b}",
                taken=merge.merged,
                outcome="merged" if merge.merged else "kept separate",
                reason=merge.reason,
                estimate=taken_est,
                alternative_estimate=declined_est,
            )
        )
    for source_id, placement in plan.filter_decisions:
        taken_est, declined_est = placement.est_pushed, placement.est_engine
        if not placement.pushed:
            taken_est, declined_est = declined_est, taken_est
        decisions.append(
            DecisionRecord(
                heuristic="H2",
                subject=f"[{source_id}] {placement.filter.n3()}",
                taken=placement.pushed,
                outcome="source" if placement.pushed else "engine",
                reason=placement.reason,
                estimate=taken_est,
                alternative_estimate=declined_est,
            )
        )
    return ExplainReport(
        policy=plan.policy.name,
        network=plan.network.name,
        plan_text=plan.root.explain(indent=1),
        decisions=decisions,
        notes=list(plan.notes),
    )
