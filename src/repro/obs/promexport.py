"""Prometheus text exposition: renderer + dependency-free validator.

:func:`render_exposition` turns a versioned ``/stats`` document (the
service's stats v2 shape, carrying an SLO snapshot from
:mod:`repro.obs.slo`) into the Prometheus text exposition format
(version 0.0.4): ``# HELP``/``# TYPE`` headers, counters, gauges, and
cumulative ``_bucket{le=...}`` histograms with ``_sum``/``_count``.

:func:`parse_exposition` is the matching validator — no client library
dependency, just the format rules: metric-name and label grammar, escape
sequences in label values, float-parsable sample values, per-histogram
bucket monotonicity and the ``+Inf``-bucket/``_count`` agreement.  CI
scrapes the live ``/metrics`` endpoint and asserts the output parses.
"""

from __future__ import annotations

import math
import re

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One sample line: name, optional {labels}, value, optional timestamp.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)

PREFIX = "repro"


class ExpositionError(ValueError):
    """The text does not conform to the exposition format."""


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: dict[str, str], value: float) -> None:
        if labels:
            body = ",".join(
                f'{key}="{_escape_label(str(val))}"'
                for key, val in sorted(labels.items())
            )
            self.lines.append(f"{name}{{{body}}} {_format_value(value)}")
        else:
            self.lines.append(f"{name} {_format_value(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _histogram_family(
    writer: _Writer,
    name: str,
    help_text: str,
    labelled: list[tuple[dict[str, str], dict]],
) -> None:
    """Emit one histogram family from SLO histogram snapshots.

    *labelled* pairs a label set with a histogram snapshot dict (the
    ``snapshot()`` shape from :class:`~repro.obs.slo.LogBucketHistogram`).
    """
    from .slo import LogBucketHistogram

    writer.family(name, "histogram", help_text)
    for labels, snap in labelled:
        histogram = LogBucketHistogram.from_snapshot(snap)
        for bound, cumulative in histogram.cumulative_buckets():
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_value(bound)
            writer.sample(f"{name}_bucket", bucket_labels, cumulative)
        writer.sample(f"{name}_sum", labels, snap.get("sum", 0.0))
        writer.sample(f"{name}_count", labels, snap.get("count", 0))


def render_exposition(stats: dict, prefix: str = PREFIX) -> str:
    """Render a stats-v2 document (with its ``slo`` section) as exposition
    text.  Raises ``ValueError`` when the document carries no SLO data."""
    slo = stats.get("slo")
    if not isinstance(slo, dict):
        raise ValueError("stats document has no 'slo' section to export")
    writer = _Writer()

    tenants: dict[str, dict] = slo.get("tenants", {})

    def counter(metric: str, help_text: str, field: str) -> None:
        writer.family(f"{prefix}_{metric}", "counter", help_text)
        for tenant in sorted(tenants):
            writer.sample(
                f"{prefix}_{metric}",
                {"tenant": tenant},
                tenants[tenant].get(field, 0),
            )

    counter("requests_submitted_total", "Requests submitted per tenant.", "submitted")
    counter("requests_completed_total", "Requests completed per tenant.", "completed")
    counter("requests_shed_total", "Requests shed at admission per tenant.", "shed")
    counter(
        "requests_timed_out_total",
        "Requests past deadline (queued or running) per tenant.",
        "timed_out",
    )
    counter("requests_errored_total", "Requests failed in execution per tenant.", "errors")

    writer.family(
        f"{prefix}_tenant_busy_seconds_total",
        "counter",
        "Seconds each tenant occupied a concurrency slot.",
    )
    for tenant in sorted(tenants):
        writer.sample(
            f"{prefix}_tenant_busy_seconds_total",
            {"tenant": tenant},
            tenants[tenant].get("busy_seconds", 0.0),
        )

    writer.family(
        f"{prefix}_tenant_utilization_share",
        "gauge",
        "Observed share of total busy seconds per tenant.",
    )
    writer.family(
        f"{prefix}_tenant_fair_share",
        "gauge",
        "Configured weight share among active tenants.",
    )
    for tenant in sorted(tenants):
        writer.sample(
            f"{prefix}_tenant_utilization_share",
            {"tenant": tenant},
            tenants[tenant].get("utilization_share", 0.0),
        )
        writer.sample(
            f"{prefix}_tenant_fair_share",
            {"tenant": tenant},
            tenants[tenant].get("fair_share", 0.0),
        )

    for metric, field, help_text in (
        ("queue_wait_seconds", "queue_wait", "Admission queue wait per tenant."),
        ("execution_seconds", "execution", "Execution latency per tenant."),
        ("end_to_end_seconds", "end_to_end", "Submit-to-finish latency per tenant."),
    ):
        labelled = [
            ({"tenant": tenant}, tenants[tenant][field])
            for tenant in sorted(tenants)
        ]
        labelled.append(({"tenant": "__all__"}, slo["global"][field]))
        _histogram_family(writer, f"{prefix}_{metric}", help_text, labelled)

    blame: dict[str, dict] = slo.get("blame", {})
    if blame:
        _histogram_family(
            writer,
            f"{prefix}_blame_seconds",
            "Virtual seconds per request by blame class.",
            [({"class": name}, blame[name]) for name in sorted(blame)],
        )
    source_delay: dict[str, dict] = slo.get("source_network_delay", {})
    if source_delay:
        _histogram_family(
            writer,
            f"{prefix}_source_network_delay_seconds",
            "Network delay charged per request, by source.",
            [
                ({"source": name}, source_delay[name])
                for name in sorted(source_delay)
            ],
        )

    caches: dict[str, dict] = slo.get("cache", {})
    if caches:
        for metric, field, help_text in (
            ("cache_hits_total", "hits", "Cache hits per cache."),
            ("cache_misses_total", "misses", "Cache misses per cache."),
            ("cache_evictions_total", "evictions", "Cache evictions per cache."),
        ):
            writer.family(f"{prefix}_{metric}", "counter", help_text)
            for cache in sorted(caches):
                writer.sample(
                    f"{prefix}_{metric}",
                    {"cache": cache},
                    caches[cache].get(field, 0),
                )
        writer.family(
            f"{prefix}_cache_hit_ratio", "gauge", "Hit ratio per cache."
        )
        for cache in sorted(caches):
            writer.sample(
                f"{prefix}_cache_hit_ratio",
                {"cache": cache},
                caches[cache].get("hit_rate", 0.0),
            )

    admission = stats.get("admission")
    if isinstance(admission, dict):
        writer.family(
            f"{prefix}_admission_running", "gauge", "Requests currently running."
        )
        writer.sample(
            f"{prefix}_admission_running", {}, admission.get("running", 0)
        )
        writer.family(
            f"{prefix}_admission_queued", "gauge", "Requests currently queued."
        )
        writer.sample(f"{prefix}_admission_queued", {}, admission.get("queued", 0))

    writer.family(
        f"{prefix}_stats_version", "gauge", "Version of the /stats JSON shape."
    )
    writer.sample(f"{prefix}_stats_version", {}, stats.get("stats_version", 0))
    return writer.text()


def _parse_value(raw: str, line_number: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ExpositionError(
            f"line {line_number}: sample value {raw!r} is not a float"
        ) from None


def _unescape_label_value(raw: str) -> str:
    """Decode ``\\\\``, ``\\"`` and ``\\n`` left to right.

    A chained ``str.replace`` is wrong here: in ``a\\\\nb`` (a literal
    backslash followed by ``n``) a global ``\\n``-first pass would eat the
    second backslash and fabricate a newline.  Each escape must consume
    its backslash exactly once, which needs a scan.
    """
    out: list[str] = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char == "\\" and index + 1 < len(raw):
            nxt = raw[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _parse_labels(raw: str, line_number: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    rest = raw.strip()
    while rest:
        match = _LABEL_RE.match(rest)
        if not match:
            raise ExpositionError(
                f"line {line_number}: malformed label segment {rest!r}"
            )
        name = match.group("name")
        if not _LABEL_NAME_RE.match(name):
            raise ExpositionError(
                f"line {line_number}: invalid label name {name!r}"
            )
        if name in labels:
            raise ExpositionError(
                f"line {line_number}: duplicate label {name!r}"
            )
        labels[name] = _unescape_label_value(match.group("value"))
        rest = rest[match.end() :].lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
        elif rest:
            raise ExpositionError(
                f"line {line_number}: expected ',' between labels near {rest!r}"
            )
    return labels


def parse_exposition(text: str) -> dict:
    """Parse (and strictly validate) exposition text.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(name, labels, value), ...]}}``.  Raises :class:`ExpositionError`
    on any format violation, including histogram-specific invariants:
    cumulative buckets must be monotone and the ``+Inf`` bucket must
    equal ``_count`` for every label set.
    """
    families: dict[str, dict] = {}
    current: str | None = None
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            name = parts[0]
            if not _NAME_RE.match(name):
                raise ExpositionError(
                    f"line {line_number}: invalid metric name {name!r}"
                )
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["help"] = parts[1] if len(parts) > 1 else ""
            current = name
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split(" ", 1)
            name = parts[0]
            kind = parts[1].strip() if len(parts) > 1 else ""
            if not _NAME_RE.match(name):
                raise ExpositionError(
                    f"line {line_number}: invalid metric name {name!r}"
                )
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ExpositionError(
                    f"line {line_number}: unknown metric type {kind!r}"
                )
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["type"] = kind
            current = name
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored
        match = _SAMPLE_RE.match(line.strip())
        if not match:
            raise ExpositionError(f"line {line_number}: malformed sample {line!r}")
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", line_number)
        value = _parse_value(match.group("value"), line_number)
        family = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
                family = sample_name[: -len(suffix)]
                break
        if family not in families:
            families[family] = {"type": "untyped", "help": "", "samples": []}
        if family != current and current is not None and family in families:
            current = family
        families[family]["samples"].append((sample_name, labels, value))

    _validate_histograms(families)
    return families


def _validate_histograms(families: dict[str, dict]) -> None:
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        by_labels: dict[tuple, dict] = {}
        for sample_name, labels, value in family["samples"]:
            key_labels = {k: v for k, v in labels.items() if k != "le"}
            key = tuple(sorted(key_labels.items()))
            entry = by_labels.setdefault(key, {"buckets": [], "count": None})
            if sample_name == f"{name}_bucket":
                if "le" not in labels:
                    raise ExpositionError(
                        f"histogram {name}: bucket sample missing 'le' label"
                    )
                bound = _parse_value(labels["le"], 0)
                entry["buckets"].append((bound, value))
            elif sample_name == f"{name}_count":
                entry["count"] = value
        for key, entry in by_labels.items():
            buckets = sorted(entry["buckets"], key=lambda pair: pair[0])
            if not buckets:
                raise ExpositionError(f"histogram {name}: no buckets for {key}")
            if buckets[-1][0] != math.inf:
                raise ExpositionError(
                    f"histogram {name}: missing +Inf bucket for {key}"
                )
            previous = -math.inf
            for bound, cumulative in buckets:
                if cumulative < previous:
                    raise ExpositionError(
                        f"histogram {name}: non-monotone buckets for {key}"
                    )
                previous = cumulative
            if entry["count"] is not None and buckets[-1][1] != entry["count"]:
                raise ExpositionError(
                    f"histogram {name}: +Inf bucket != _count for {key}"
                )


def validate_exposition(text: str) -> int:
    """Parse *text*, returning the number of metric families (raises
    :class:`ExpositionError` when invalid)."""
    return len(parse_exposition(text))
