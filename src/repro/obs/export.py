"""Exporters: Chrome trace-event JSON and a structured JSON dump.

The Chrome exporter emits the *object* flavour of the Trace Event Format
(``{"traceEvents": [...], "displayTimeUnit": "ms"}``) so the file loads
directly in Perfetto or chrome://tracing.  Each observed run becomes one
process; inside it, the engine timeline, every producer task/source track
and every plan operator get their own thread row — which is what makes
overlapping gamma delays of sibling sources visible as parallel bars.

Timestamps are virtual seconds converted to microseconds (the format's
unit).  Everything is emitted in a deterministic order, so a fixed seed
yields a byte-identical export.
"""

from __future__ import annotations

import json
from typing import Iterable, TYPE_CHECKING

from .bus import CATEGORY_OPERATOR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .observation import RunObservation

_MICRO = 1e6


def to_chrome_trace(
    observations: Iterable[tuple[str, "RunObservation"]],
) -> dict:
    """Export observed runs as one Chrome trace dict (one process each)."""
    events: list[dict] = []
    for pid, (label, observation) in enumerate(observations, start=1):
        process_args: dict = {"name": label}
        request_id = getattr(observation, "request_id", None)
        if request_id is not None:
            process_args["request_id"] = request_id

        def _args(base: dict) -> dict:
            # Service-originated runs carry the request ID on every event's
            # args (not just the process metadata), so a merged multi-request
            # export stays filterable by request in Perfetto.  Injected at
            # export time: spans are frozen and the ID is assigned post-run.
            if request_id is not None:
                base.setdefault("request_id", request_id)
            return base
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": process_args,
            }
        )
        tracks = observation.bus.tracks()
        tids = {track: position for position, track in enumerate(tracks)}
        for track in tracks:
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tids[track],
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        operator_base = len(tracks)
        for position, profile in enumerate(observation.profiles):
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": operator_base + position,
                    "name": "thread_name",
                    "args": {"name": f"op: {profile.label}"},
                }
            )
        for instant in observation.bus.instants():
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tids[instant.track],
                    "name": instant.name,
                    "cat": instant.category,
                    "ts": instant.timestamp * _MICRO,
                    "args": _args(instant.args_dict()),
                }
            )
        for span in observation.bus.spans():
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[span.track],
                    "name": span.name,
                    "cat": span.category,
                    "ts": span.start * _MICRO,
                    "dur": span.duration * _MICRO,
                    "args": _args(span.args_dict()),
                }
            )
        for position, profile in enumerate(observation.profiles):
            if profile.first_output_at is None:
                continue
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": operator_base + position,
                    "name": profile.label,
                    "cat": CATEGORY_OPERATOR,
                    "ts": profile.first_output_at * _MICRO,
                    "dur": (profile.last_output_at - profile.first_output_at) * _MICRO,
                    "args": _args({"rows_out": profile.rows_out}),
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs"},
    }


def chrome_trace_json(
    observations: Iterable[tuple[str, "RunObservation"]], indent: int | None = None
) -> str:
    return json.dumps(to_chrome_trace(observations), indent=indent, sort_keys=True)


def observation_to_json(observation: "RunObservation") -> dict:
    """Structured JSON dump of one observation (spans, profiles, metrics)."""
    payload: dict = {
        "runtime": observation.runtime,
        "instants": [
            {
                "name": instant.name,
                "category": instant.category,
                "track": instant.track,
                "timestamp": instant.timestamp,
                "args": instant.args_dict(),
            }
            for instant in observation.bus.instants()
        ],
        "spans": [
            {
                "name": span.name,
                "category": span.category,
                "track": span.track,
                "start": span.start,
                "end": span.end,
                "args": span.args_dict(),
            }
            for span in observation.bus.spans()
        ],
        "operators": [
            {
                "label": profile.label,
                "depth": profile.depth,
                "rows_out": profile.rows_out,
                "first_output_at": profile.first_output_at,
                "last_output_at": profile.last_output_at,
            }
            for profile in observation.profiles
        ],
        "metrics": observation.metrics.to_dict(),
    }
    if observation.plan is not None:
        from .explain import explain_plan

        payload["explain"] = explain_plan(observation.plan).to_dict()
    return payload
