"""Metrics registry: counters, gauges and histograms with label sets.

The registry is the *aggregated* side of the observability layer — where
the trace bus records individual timed events, the registry keeps running
totals: rows in/out per operator, cache hits and misses, network delay
charged per source, Heuristic-1 merges and Heuristic-2 placements taken
vs declined.  Everything here is plain Python accounting driven by the
run's deterministic virtual-time data, so two runs with the same seed
render byte-identical metric reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: A label set is a sorted tuple of (key, value) pairs; the registry keys
#: instruments on (name, labels) so e.g. ``source_delay{source=kegg}`` and
#: ``source_delay{source=drugbank}`` are distinct time series.
Labels = tuple[tuple[str, str], ...]


def _labels(labels: dict[str, str]) -> Labels:
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count (rows, hits, decisions taken)."""

    name: str
    labels: Labels = ()
    value: float = 0.0

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (execution time, cache size)."""

    name: str
    labels: Labels = ()
    value: float = 0.0

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """A distribution summary (per-operator row counts, per-source delays).

    Keeps count/sum/min/max rather than raw samples so the registry stays
    O(instruments), not O(events); ``mean`` is derived.
    """

    name: str
    labels: Labels = ()
    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    kind = "histogram"

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


Instrument = Counter | Gauge | Histogram


@dataclass
class MetricsRegistry:
    """Get-or-create store of instruments keyed by (name, labels)."""

    _instruments: dict[tuple[str, str, Labels], Instrument] = field(default_factory=dict)

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", Counter, name, _labels(labels))

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", Gauge, name, _labels(labels))

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get("histogram", Histogram, name, _labels(labels))

    def _get(self, kind: str, factory, name: str, labels: Labels):
        key = (kind, name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name=name, labels=labels)
            self._instruments[key] = instrument
        return instrument

    def collect(self) -> list[Instrument]:
        """Every instrument, sorted by (name, labels) for stable output."""
        return sorted(
            self._instruments.values(), key=lambda inst: (inst.name, inst.labels)
        )

    def to_dict(self) -> list[dict]:
        """JSON-friendly dump of the whole registry."""
        out = []
        for inst in self.collect():
            entry: dict = {
                "name": inst.name,
                "kind": inst.kind,
                "labels": {key: value for key, value in inst.labels},
            }
            if isinstance(inst, Histogram):
                entry.update(
                    count=inst.count,
                    sum=inst.total,
                    min=inst.minimum,
                    max=inst.maximum,
                    mean=inst.mean,
                )
            else:
                entry["value"] = inst.value
            out.append(entry)
        return out

    def render(self) -> str:
        """Prometheus-exposition-flavoured text dump (terminal-first)."""
        lines = []
        for inst in self.collect():
            labels = (
                "{" + ",".join(f'{key}="{value}"' for key, value in inst.labels) + "}"
                if inst.labels
                else ""
            )
            if isinstance(inst, Histogram):
                lines.append(
                    f"{inst.name}{labels} count={inst.count} sum={inst.total:g} "
                    f"min={0 if inst.minimum is None else inst.minimum:g} "
                    f"max={0 if inst.maximum is None else inst.maximum:g} "
                    f"mean={inst.mean:g}"
                )
            else:
                lines.append(f"{inst.name}{labels} {inst.value:g}")
        return "\n".join(lines)
