"""Per-tenant SLO accounting: streaming latency histograms and rates.

The service's *operational* lens.  Where a :class:`RunObservation` dissects
one query, the SLO layer aggregates the whole request population — per
tenant and globally — into the quantities an operator alarms on: latency
percentiles (queue wait, execution, end-to-end), shed/timeout/error rates,
cache hit ratios, and fair-share utilization.

Determinism contract: percentiles come from **fixed log-bucketed
histograms** (:data:`BUCKET_BOUNDS`, powers of two from ~1µs to ~68min),
not from sampled reservoirs — so two same-seed load tests produce
bit-identical SLO snapshots, and the telemetry regression gate can compare
them exactly.  A percentile is the upper bound of the bucket holding the
nearest-rank observation, capped at the exact observed maximum (which
makes single-observation and boundary cases exact).

Histogram merge is associative and commutative (bucket-wise addition), so
per-tenant histograms compose into the global one — property-tested in
``tests/obs/test_slo.py``.

Everything here is fed through the :class:`~repro.service.admission.
AdmissionController`'s observer hook (see ``admission_event``) and is
clock-agnostic: timestamps arrive on the tickets, stamped by whichever
clock (wall or virtual) drives the controller — the same discipline as the
trace bus.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.admission import Ticket
    from ..service.config import ServiceConfig

#: Fixed histogram bucket upper bounds (seconds): powers of two spanning
#: ~1µs (2^-20) to 4096s (2^12).  Powers of two are exact binary floats,
#: so bucket assignment is machine- and platform-independent.
BUCKET_BOUNDS: tuple[float, ...] = tuple(2.0 ** exp for exp in range(-20, 13))

#: Percentiles every SLO snapshot reports.
SLO_PERCENTILES: tuple[float, ...] = (0.50, 0.90, 0.99)

#: Version stamp of the SLO snapshot JSON shape.  v2 added the service-wide
#: per-blame-class and per-source network-delay histograms.
SLO_VERSION = 2

#: Blame classes the service-level histograms track.  ``queue_wait`` is
#: fed from admission (note_start); the other three from each request's
#: :meth:`~repro.federation.answers.ExecutionStats.blame_components`.
#: ``planner_time`` is deliberately absent — planning never advances the
#: virtual clock, so its histogram would be identically zero.
SLO_BLAME_CLASSES = (
    "engine_work",
    "network_delay",
    "cache_miss_penalty",
    "queue_wait",
)


class LogBucketHistogram:
    """A streaming histogram over the fixed log-spaced bucket bounds.

    Values at or below a bound fall in that bound's bucket (``le``
    semantics, matching Prometheus exposition); values above the last
    bound land in the overflow bucket.  Keeps exact count/sum/min/max
    alongside the bucket counts, so means are exact and percentiles never
    exceed the observed maximum.
    """

    __slots__ = ("counts", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        # len(BUCKET_BOUNDS) finite buckets + 1 overflow bucket.
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(BUCKET_BOUNDS, value)] += 1
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, deterministic: the upper bound of the
        bucket containing the rank-q observation, capped at the exact
        maximum.  Empty histograms report 0.0."""
        if not self.count:
            return 0.0
        rank = max(1, -(-int(q * self.count * 1_000_000) // 1_000_000))
        rank = min(rank, self.count)
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(BUCKET_BOUNDS):
                    return min(BUCKET_BOUNDS[index], self.maximum)
                return self.maximum  # overflow bucket: exact max
        return self.maximum  # pragma: no cover - unreachable (seen == count)

    def merge(self, other: "LogBucketHistogram") -> "LogBucketHistogram":
        """Fold *other* into this histogram (bucket-wise add; associative)."""
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            self.minimum = (
                other.minimum
                if self.minimum is None
                else min(self.minimum, other.minimum)
            )
        if other.maximum is not None:
            self.maximum = (
                other.maximum
                if self.maximum is None
                else max(self.maximum, other.maximum)
            )
        return self

    def snapshot(self) -> dict:
        """JSON-friendly dump: summary stats, percentiles, sparse buckets."""
        body = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "buckets": [
                [index, bucket_count]
                for index, bucket_count in enumerate(self.counts)
                if bucket_count
            ],
        }
        for q in SLO_PERCENTILES:
            body[f"p{int(q * 100)}"] = self.percentile(q)
        return body

    @classmethod
    def from_snapshot(cls, payload: dict) -> "LogBucketHistogram":
        histogram = cls()
        for index, bucket_count in payload.get("buckets", []):
            histogram.counts[index] = bucket_count
        histogram.count = payload.get("count", 0)
        histogram.total = payload.get("sum", 0.0)
        histogram.minimum = payload.get("min")
        histogram.maximum = payload.get("max")
        return histogram

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs for exposition rendering;
        the final pair's bound is ``inf`` (the ``+Inf`` bucket)."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for index, bucket_count in enumerate(self.counts):
            running += bucket_count
            bound = (
                BUCKET_BOUNDS[index] if index < len(BUCKET_BOUNDS) else float("inf")
            )
            pairs.append((bound, running))
        return pairs


class TenantSLO:
    """One tenant's (or the global) rolling SLO accumulators."""

    __slots__ = (
        "tenant",
        "weight",
        "submitted",
        "completed",
        "shed",
        "timed_out",
        "errors",
        "starts",
        "busy_seconds",
        "shed_by_reason",
        "queue_wait",
        "execution",
        "end_to_end",
    )

    def __init__(self, tenant: str, weight: float = 1.0):
        self.tenant = tenant
        self.weight = weight
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        self.timed_out = 0
        self.errors = 0
        self.starts = 0
        #: Total seconds the tenant occupied a concurrency slot (done and
        #: running-timeout executions) — the fair-share utilization basis.
        self.busy_seconds = 0.0
        self.shed_by_reason: dict[str, int] = {}
        self.queue_wait = LogBucketHistogram()
        self.execution = LogBucketHistogram()
        self.end_to_end = LogBucketHistogram()

    def merge(self, other: "TenantSLO") -> "TenantSLO":
        self.submitted += other.submitted
        self.completed += other.completed
        self.shed += other.shed
        self.timed_out += other.timed_out
        self.errors += other.errors
        self.starts += other.starts
        self.busy_seconds += other.busy_seconds
        for reason, count in other.shed_by_reason.items():
            self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + count
        self.queue_wait.merge(other.queue_wait)
        self.execution.merge(other.execution)
        self.end_to_end.merge(other.end_to_end)
        return self

    def snapshot(self) -> dict:
        total = self.submitted
        return {
            "weight": self.weight,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "errors": self.errors,
            "starts": self.starts,
            "busy_seconds": self.busy_seconds,
            "shed_rate": round(self.shed / total, 6) if total else 0.0,
            "timeout_rate": round(self.timed_out / total, 6) if total else 0.0,
            "error_rate": round(self.errors / total, 6) if total else 0.0,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "queue_wait": self.queue_wait.snapshot(),
            "execution": self.execution.snapshot(),
            "end_to_end": self.end_to_end.snapshot(),
        }


class SLOAccountant:
    """The service-wide SLO ledger: one :class:`TenantSLO` per tenant.

    Subscribes to the admission controller's observer hook (every ticket
    transition lands in :meth:`admission_event`) and is additionally fed
    errors by the service layer.  ``snapshot()`` renders the whole ledger
    — per tenant, global (merged), and cache hit ratios when provided —
    as one JSON-friendly document, version-stamped with
    :data:`SLO_VERSION`.
    """

    def __init__(self, config: "ServiceConfig | None" = None):
        self._config = config
        self._tenants: dict[str, TenantSLO] = {}
        self._lock = threading.Lock()
        #: Service-wide per-blame-class time histograms (seconds per
        #: request), fed by :meth:`note_execution_profile` and, for
        #: ``queue_wait``, by :meth:`note_start`.
        self._blame: dict[str, LogBucketHistogram] = {
            name: LogBucketHistogram() for name in SLO_BLAME_CLASSES
        }
        #: Per-source network-delay histograms (seconds charged to each
        #: source per request), keyed by source id.
        self._source_delay: dict[str, LogBucketHistogram] = {}

    def _slo(self, tenant: str) -> TenantSLO:
        slo = self._tenants.get(tenant)
        if slo is None:
            weight = 1.0
            if self._config is not None:
                try:
                    weight = self._config.tenant(tenant).weight
                except Exception:
                    weight = 1.0
            slo = self._tenants[tenant] = TenantSLO(tenant, weight=weight)
        return slo

    # -- low-level feeders (used live and by journal replay) -----------------

    def note_submit(self, tenant: str) -> None:
        with self._lock:
            self._slo(tenant).submitted += 1

    def note_shed(self, tenant: str, reason: str | None) -> None:
        with self._lock:
            slo = self._slo(tenant)
            slo.shed += 1
            key = reason or "unknown"
            slo.shed_by_reason[key] = slo.shed_by_reason.get(key, 0) + 1

    def note_start(self, tenant: str, queue_wait: float) -> None:
        with self._lock:
            slo = self._slo(tenant)
            slo.starts += 1
            slo.queue_wait.observe(queue_wait)
            self._blame["queue_wait"].observe(queue_wait)

    def note_execution_profile(
        self,
        tenant: str,
        engine: float,
        network: float,
        cache: float,
        per_source: dict[str, float] | None = None,
    ) -> None:
        """One finished request's blame components (accumulator view).

        *engine*/*network*/*cache* are the request's ``engine_work``,
        ``network_delay`` and ``cache_miss_penalty`` totals in virtual
        seconds; *per_source* maps source id to its network-delay share.
        The tenant is accepted for symmetry with the journal event but the
        histograms are service-wide (per-tenant latency SLOs already live
        on the :class:`TenantSLO` ledger).
        """
        with self._lock:
            self._blame["engine_work"].observe(engine)
            self._blame["network_delay"].observe(network)
            self._blame["cache_miss_penalty"].observe(cache)
            for source_id in sorted(per_source or {}):
                histogram = self._source_delay.get(source_id)
                if histogram is None:
                    histogram = self._source_delay[source_id] = LogBucketHistogram()
                histogram.observe(per_source[source_id])

    def note_done(self, tenant: str, execution: float, end_to_end: float) -> None:
        with self._lock:
            slo = self._slo(tenant)
            slo.completed += 1
            slo.busy_seconds += execution
            slo.execution.observe(execution)
            slo.end_to_end.observe(end_to_end)

    def note_timeout(self, tenant: str, busy: float = 0.0) -> None:
        with self._lock:
            slo = self._slo(tenant)
            slo.timed_out += 1
            slo.busy_seconds += busy

    def note_error(self, tenant: str) -> None:
        with self._lock:
            self._slo(tenant).errors += 1

    # -- the admission controller's observer protocol ------------------------

    def admission_event(self, kind: str, ticket: "Ticket") -> None:
        """One ticket transition (see AdmissionController observer hook)."""
        if kind == "submit":
            self.note_submit(ticket.tenant)
        elif kind == "shed":
            self.note_shed(ticket.tenant, ticket.reason)
        elif kind == "start":
            self.note_start(
                ticket.tenant, ticket.started_at - ticket.submitted_at
            )
        elif kind == "done":
            self.note_done(
                ticket.tenant,
                ticket.finished_at - ticket.started_at,
                ticket.finished_at - ticket.submitted_at,
            )
        elif kind == "running-timeout":
            self.note_timeout(
                ticket.tenant, busy=ticket.finished_at - ticket.started_at
            )
        elif kind == "queued-timeout":
            self.note_timeout(ticket.tenant)
        # tenant-idle is a journal-only marker: nothing to accumulate.

    # -- reporting -----------------------------------------------------------

    def global_slo(self) -> TenantSLO:
        """All tenants merged into one ledger (histogram merge)."""
        merged = TenantSLO("*")
        with self._lock:
            for name in sorted(self._tenants):
                merged.merge(self._tenants[name])
        return merged

    def snapshot(self, cache_stats: dict | None = None) -> dict:
        """The whole ledger as one version-stamped JSON document.

        *cache_stats* (optional) is a mapping of cache name to counter
        dicts with ``hits``/``misses`` keys — e.g. the engine pool's
        registry stats plus the service's cross-request result cache —
        folded in as hit ratios.
        """
        with self._lock:
            tenants = {
                name: self._tenants[name].snapshot()
                for name in sorted(self._tenants)
            }
        with self._lock:
            blame = {
                name: self._blame[name].snapshot() for name in SLO_BLAME_CLASSES
            }
            source_delay = {
                name: self._source_delay[name].snapshot()
                for name in sorted(self._source_delay)
            }
        body: dict = {
            "slo_version": SLO_VERSION,
            "tenants": tenants,
            "global": self.global_slo().snapshot(),
            "blame": blame,
            "source_network_delay": source_delay,
        }
        total_busy = sum(entry["busy_seconds"] for entry in tenants.values())
        active_weight = sum(
            entry["weight"] for entry in tenants.values() if entry["submitted"]
        )
        for entry in tenants.values():
            entry["utilization_share"] = (
                round(entry["busy_seconds"] / total_busy, 6) if total_busy else 0.0
            )
            entry["fair_share"] = (
                round(entry["weight"] / active_weight, 6)
                if active_weight and entry["submitted"]
                else 0.0
            )
        if cache_stats is not None:
            caches: dict[str, dict] = {}
            for name in sorted(cache_stats):
                stats = cache_stats[name]
                hits = stats.get("hits", 0)
                misses = stats.get("misses", 0)
                lookups = hits + misses
                caches[name] = {
                    "hits": hits,
                    "misses": misses,
                    "evictions": stats.get("evictions", 0),
                    "hit_rate": round(hits / lookups, 6) if lookups else 0.0,
                }
            body["cache"] = caches
        return body


def accountant_from_journal(
    events: Iterable[dict], config: "ServiceConfig | None" = None
) -> tuple[SLOAccountant, dict | None]:
    """Rebuild an :class:`SLOAccountant` from structured journal events.

    Returns ``(accountant, cache_stats)`` where *cache_stats* is the last
    ``cache-snapshot`` event's payload (None when the journal has none) —
    so ``repro slo report --journal`` reproduces the live snapshot,
    including cache hit ratios, from the JSONL alone.
    """
    accountant = SLOAccountant(config)
    cache_stats: dict | None = None
    for event in events:
        kind = event.get("kind")
        tenant = event.get("tenant", "?")
        if kind == "submit":
            accountant.note_submit(tenant)
        elif kind == "shed":
            accountant.note_shed(tenant, event.get("reason"))
        elif kind == "start":
            accountant.note_start(tenant, event.get("queue_wait", 0.0))
        elif kind == "done":
            accountant.note_done(
                tenant, event.get("execution", 0.0), event.get("end_to_end", 0.0)
            )
        elif kind == "running-timeout":
            accountant.note_timeout(tenant, busy=event.get("execution", 0.0))
        elif kind == "queued-timeout":
            accountant.note_timeout(tenant)
        elif kind == "error":
            accountant.note_error(tenant)
        elif kind == "exec-profile":
            accountant.note_execution_profile(
                tenant,
                event.get("engine", 0.0),
                event.get("network", 0.0),
                event.get("cache", 0.0),
                event.get("sources"),
            )
        elif kind == "cache-snapshot":
            cache_stats = event.get("caches")
    return accountant, cache_stats


#: The text report's column specification: (title, width, value function).
#: One flat tuple so the column *order is stable by construction* — the
#: renderer iterates this spec for the header and every row, making it
#: impossible for header and cells to drift apart or reorder between
#: releases (tooling that parses the text report can rely on it).
SLO_REPORT_COLUMNS: tuple[tuple[str, int, "object"], ...] = (
    ("tenant", 10, lambda name, entry: format(name, "<10")),
    ("req", 6, lambda name, entry: format(entry["submitted"], ">6")),
    ("done", 6, lambda name, entry: format(entry["completed"], ">6")),
    ("shed", 5, lambda name, entry: format(entry["shed"], ">5")),
    ("tmo", 4, lambda name, entry: format(entry["timed_out"], ">4")),
    ("err", 4, lambda name, entry: format(entry["errors"], ">4")),
    (
        "shed%",
        7,
        lambda name, entry: f"{entry['shed_rate'] * 100:>6.2f}%",
    ),
    (
        "e2e p50",
        9,
        lambda name, entry: f"{entry['end_to_end']['p50']:>8.4f}s",
    ),
    (
        "e2e p90",
        9,
        lambda name, entry: f"{entry['end_to_end']['p90']:>8.4f}s",
    ),
    (
        "e2e p99",
        9,
        lambda name, entry: f"{entry['end_to_end']['p99']:>8.4f}s",
    ),
    (
        "queue p50",
        10,
        lambda name, entry: f"{entry['queue_wait']['p50']:>9.4f}s",
    ),
    (
        "util",
        6,
        lambda name, entry: format(
            "-"
            if entry.get("utilization_share") is None
            else format(entry["utilization_share"], ".2f"),
            ">6",
        ),
    ),
    (
        "fair",
        6,
        lambda name, entry: format(
            "-"
            if entry.get("fair_share") is None
            else format(entry["fair_share"], ".2f"),
            ">6",
        ),
    ),
)


def render_slo_report(snapshot: dict, tenant: str | None = None) -> str:
    """Terminal rendering of one SLO snapshot.

    With *tenant* set, only that tenant's row is shown (no GLOBAL row —
    the global ledger mixes in everyone else's traffic, which is exactly
    what a per-tenant view filters out); unknown tenants yield a one-line
    notice so scripted use fails loudly rather than printing nothing.
    """
    tenants = snapshot.get("tenants", {})
    if tenant is not None and tenant not in tenants:
        return f"no such tenant: {tenant} (known: {', '.join(sorted(tenants)) or '-'})"
    header = " ".join(
        format(title, "<" + str(width)) if index == 0 else format(title, ">" + str(width))
        for index, (title, width, __) in enumerate(SLO_REPORT_COLUMNS)
    )
    lines = [header, "-" * len(header)]

    def row(name: str, entry: dict) -> str:
        return " ".join(render(name, entry) for __, __, render in SLO_REPORT_COLUMNS)

    if tenant is not None:
        lines.append(row(tenant, tenants[tenant]))
    else:
        for name in sorted(tenants):
            lines.append(row(name, tenants[name]))
        lines.append(row("GLOBAL", snapshot["global"]))
    caches = snapshot.get("cache")
    if caches and tenant is None:
        lines.append("")
        for name in sorted(caches):
            entry = caches[name]
            lines.append(
                f"cache {name:<12} hits={entry['hits']} misses={entry['misses']} "
                f"evictions={entry['evictions']} hit_rate={entry['hit_rate']:.2%}"
            )
    return "\n".join(lines)
