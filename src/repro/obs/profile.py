"""Per-operator profiles and the EXPLAIN-ANALYZE report.

These classes used to live in :mod:`repro.core.profiler` (which still
re-exports them); they moved here when profiling migrated onto the
observation bus so that all three runtimes — sequential, event, thread —
feed the same report structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def q_error(estimated: float, actual: float) -> float:
    """The q-error of a cardinality estimate: ``max(est/actual, actual/est)``.

    Zero rows make the textbook ratio undefined, so both sides are floored
    at one row first (the standard +1-free smoothing: a 0-vs-0 estimate is
    perfect, q = 1.0; 0-vs-N degrades like 1-vs-N).  Always >= 1.0.
    """
    floored_estimate = max(float(estimated), 1.0)
    floored_actual = max(float(actual), 1.0)
    return max(floored_estimate / floored_actual, floored_actual / floored_estimate)


@dataclass
class OperatorProfile:
    """Measurements of one operator within one execution."""

    label: str
    depth: int
    rows_out: int = 0
    first_output_at: float | None = None
    last_output_at: float | None = None
    #: The planner's output-cardinality estimate for this operator (rows);
    #: None when the plan carries no estimate (hand-built operator trees).
    estimated_rows: float | None = None

    def record(self, timestamp: float) -> None:
        self.rows_out += 1
        if self.first_output_at is None:
            self.first_output_at = timestamp
        self.last_output_at = timestamp

    @property
    def q_error(self) -> float | None:
        """q-error of the planner's estimate vs the observed rows (>= 1.0),
        or None when the operator carries no estimate."""
        if self.estimated_rows is None:
            return None
        return q_error(self.estimated_rows, self.rows_out)


@dataclass
class ProfileReport:
    """All operator profiles of one run, in plan (pre-order) order."""

    entries: list[OperatorProfile] = field(default_factory=list)
    execution_time: float = 0.0
    #: The run's cache behaviour (from ``ExecutionStats.cache_summary``);
    #: None for runs executed without a cache registry.
    cache_summary: str | None = None
    #: Which runtime produced the measurements ("sequential", "event",
    #: "thread"); informational only — cardinalities are runtime-invariant.
    runtime: str = "sequential"

    def render(self) -> str:
        lines = [f"Profile (virtual execution time {self.execution_time:.4f}s)"]
        for entry in self.entries:
            # Operators that produced zero rows render with "-" markers so
            # the report stays stable (and line counts comparable) whether
            # or not an operator ever emitted.
            first = (
                f"{entry.first_output_at:.4f}s"
                if entry.first_output_at is not None
                else "-"
            )
            last = (
                f"{entry.last_output_at:.4f}s"
                if entry.last_output_at is not None
                else "-"
            )
            annotated = ""
            if entry.estimated_rows is not None:
                annotated = f" est={entry.estimated_rows:g} q={entry.q_error:.2f}"
            lines.append(
                f"{'  ' * entry.depth}{entry.label}  "
                f"[rows={entry.rows_out} first={first} last={last}{annotated}]"
            )
        if self.cache_summary is not None:
            lines.append(f"caches: {self.cache_summary}")
        return "\n".join(lines)

    def by_label(self, fragment: str) -> OperatorProfile:
        for entry in self.entries:
            if fragment in entry.label:
                return entry
        available = ", ".join(repr(entry.label) for entry in self.entries) or "(none)"
        raise KeyError(
            f"no operator label contains {fragment!r}; available labels: {available}"
        )

    def cardinalities(self) -> list[tuple[str, int]]:
        """(label, rows_out) pairs in plan order — the runtime-invariant
        signature cross-runtime tests compare."""
        return [(entry.label, entry.rows_out) for entry in self.entries]
