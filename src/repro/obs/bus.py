"""The trace bus: timed spans and instant events on the virtual clocks.

Every timestamp entering the bus comes from a *virtual* clock — the run's
engine clock or a producer task's private clock — never from wall time.
That is the determinism contract: with a fixed seed, the recorded spans
are value-identical run after run, under every runtime, so traces can be
diffed and bit-identity tests keep passing with the bus enabled.

Two event families:

* **Spans** — named intervals ``[start, end]`` on a *track* (the engine,
  one producer task, one source).  Wrapper sub-queries and per-operator
  activity are spans.  Spans may be appended from thread-pool workers, so
  appends are lock-guarded and :meth:`TraceBus.spans` returns them in a
  canonical sort order (never insertion order, which threads would make
  nondeterministic).
* **Instants** — zero-duration markers for the planning lifecycle (parse,
  decompose, source selection, each heuristic decision, plan-cache hits).
  Instants are only ever emitted from the main thread, in deterministic
  program order, and are kept in insertion order.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

#: Span/event categories (the span taxonomy; see DESIGN.md "Observability").
CATEGORY_PLAN = "plan"
CATEGORY_WRAPPER = "wrapper"
CATEGORY_OPERATOR = "operator"
CATEGORY_QUERY = "query"
CATEGORY_CACHE = "cache"

#: Track name of engine-side (non-task) activity.
ENGINE_TRACK = "engine"


@dataclass(frozen=True)
class Span:
    """One named interval on one track, in virtual seconds."""

    name: str
    category: str
    track: str
    start: float
    end: float
    args: tuple[tuple[str, object], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def args_dict(self) -> dict:
        return {key: value for key, value in self.args}


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker (planning phases, heuristic decisions)."""

    name: str
    category: str
    track: str
    timestamp: float
    seq: int
    args: tuple[tuple[str, object], ...] = ()

    def args_dict(self) -> dict:
        return {key: value for key, value in self.args}


def _freeze_args(args: dict) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(args.items()))


@dataclass
class TraceBus:
    """Collects one run's spans and instants.

    A ``TraceBus`` is only ever attached to a run when observation was
    requested; the hot paths guard on ``context.obs is None`` so a run
    without observation pays nothing.
    """

    _spans: list[Span] = field(default_factory=list)
    _instants: list[Instant] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _seq: int = 0

    def add_span(
        self,
        name: str,
        category: str,
        track: str,
        start: float,
        end: float,
        **args: object,
    ) -> Span:
        span = Span(
            name=name,
            category=category,
            track=track,
            start=start,
            end=end,
            args=_freeze_args(args),
        )
        with self._lock:
            self._spans.append(span)
        return span

    def add_instant(
        self, name: str, category: str, track: str = ENGINE_TRACK,
        timestamp: float = 0.0, **args: object,
    ) -> Instant:
        with self._lock:
            seq = self._seq
            self._seq += 1
            instant = Instant(
                name=name,
                category=category,
                track=track,
                timestamp=timestamp,
                seq=seq,
                args=_freeze_args(args),
            )
            self._instants.append(instant)
        return instant

    def spans(self) -> list[Span]:
        """All spans in canonical (deterministic) order.

        Thread-pool workers append concurrently, so insertion order is not
        reproducible; sorting by value is, because the span *contents* are
        derived from virtual clocks and per-task RNG substreams.
        """
        with self._lock:
            return sorted(
                self._spans,
                key=lambda span: (span.start, span.track, span.end, span.name, span.args),
            )

    def instants(self) -> list[Instant]:
        """All instants in emission (program) order."""
        with self._lock:
            return sorted(self._instants, key=lambda instant: instant.seq)

    def tracks(self) -> list[str]:
        """Every track that recorded at least one span or instant."""
        seen: dict[str, None] = {ENGINE_TRACK: None}
        for instant in self.instants():
            seen.setdefault(instant.track, None)
        for span in self.spans():
            seen.setdefault(span.track, None)
        return list(seen)
