"""The regression-attribution doctor: ranked, evidence-linked findings.

``repro doctor`` reads what the repo already commits — the critical-path
baseline (``BENCH_critpath.json``), the plan-quality baseline
(``BENCH_plan_quality.json``), the telemetry baseline
(``BENCH_telemetry.json``) and/or a journal JSONL — re-measures what it
can, and answers the operator's question directly: *what regressed, and
whose fault is it?*

Checks (each optional, gated on the inputs it needs):

* **critpath** — re-run the attribution grid against the committed
  baseline.  At ``delay_scale == 1`` any exact-fraction mismatch is a
  critical finding (the virtual timeline is deterministic; drift is a
  real change).  With an injected scale the doctor attributes the drift:
  the dominant blame class is the one with the largest per-class delta,
  and the affected source is the one with the largest network-delay
  delta — so a doubled gamma3 delay comes back as ``network_delay`` on
  the right source, with the numbers attached as evidence.
* **slo-burn** — per tenant, is latency admission-bound (queue wait
  dominating execution) rather than engine-bound?
* **cache** — hit-ratio drops against the telemetry baseline
  (>5 percentage points warns, >20 is critical).
* **q-error** — estimation hotspots from the plan-quality baseline,
  elevated when the same cell's critical path is engine-dominated (a bad
  estimate on the critical path is worth fixing first).
* **heuristics** — cells where the physical-design-aware policy is
  *slower* than unaware (H1/H2 misfiring for that cell).

The report dict is machine-validated against :data:`DOCTOR_SCHEMA`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .schema import validate_json_schema

DOCTOR_VERSION = 1

#: Finding severities, most severe first (the ranking order).
SEVERITIES = ("critical", "warning", "info")

DOCTOR_SCHEMA = {
    "type": "object",
    "required": ["doctor_version", "checks", "findings", "counts"],
    "properties": {
        "doctor_version": {"type": "integer"},
        "checks": {"type": "array", "items": {"type": "string"}},
        "counts": {
            "type": "object",
            "required": list(SEVERITIES),
            "properties": {name: {"type": "integer"} for name in SEVERITIES},
            "additionalProperties": False,
        },
        "findings": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["severity", "check", "code", "title", "evidence"],
                "properties": {
                    "severity": {"type": "string", "enum": list(SEVERITIES)},
                    "check": {"type": "string"},
                    "code": {"type": "string"},
                    "title": {"type": "string"},
                    "evidence": {"type": "object"},
                },
            },
        },
    },
}

#: Cache hit-ratio drop thresholds (absolute, vs the telemetry baseline).
CACHE_DROP_WARNING = 0.05
CACHE_DROP_CRITICAL = 0.20

#: q-error above this is an estimation hotspot.
Q_ERROR_THRESHOLD = 4.0

#: Aware slower than unaware by more than this factor = heuristic misfire.
HEURISTIC_MISFIRE_FACTOR = 1.05

#: Relative total-time drift that upgrades a critpath finding to critical.
CRITPATH_DRIFT_CRITICAL = 0.10


@dataclass
class Finding:
    """One diagnosed problem, with the numbers that prove it."""

    severity: str
    check: str
    code: str
    title: str
    evidence: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "severity": self.severity,
            "check": self.check,
            "code": self.code,
            "title": self.title,
            "evidence": dict(self.evidence),
        }


@dataclass
class DoctorReport:
    """Every finding of one diagnosis run, ranked most severe first."""

    findings: list[Finding] = field(default_factory=list)
    checks: list[str] = field(default_factory=list)

    def rank(self) -> None:
        order = {name: index for index, name in enumerate(SEVERITIES)}
        self.findings.sort(
            key=lambda finding: (order[finding.severity], finding.check, finding.code, finding.title)
        )

    def counts(self) -> dict[str, int]:
        counts = {name: 0 for name in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def worst_severity(self) -> str | None:
        for name in SEVERITIES:
            if any(finding.severity == name for finding in self.findings):
                return name
        return None

    def exit_code(self, fail_on: str = "critical") -> int:
        """0 when no finding at or above *fail_on* severity exists."""
        threshold = SEVERITIES.index(fail_on)
        worst = self.worst_severity()
        if worst is None:
            return 0
        return 1 if SEVERITIES.index(worst) <= threshold else 0

    def to_dict(self) -> dict:
        self.rank()
        document = {
            "doctor_version": DOCTOR_VERSION,
            "checks": list(self.checks),
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        validate_json_schema(document, DOCTOR_SCHEMA)
        return document

    def render(self) -> str:
        self.rank()
        counts = self.counts()
        lines = [
            f"doctor: {len(self.findings)} finding(s) over checks "
            f"[{', '.join(self.checks)}] — "
            + ", ".join(f"{counts[name]} {name}" for name in SEVERITIES)
        ]
        if not self.findings:
            lines.append("  all clear: no findings")
        for finding in self.findings:
            lines.append(
                f"  [{finding.severity.upper():<8}] {finding.check}/{finding.code}: "
                f"{finding.title}"
            )
            for key in sorted(finding.evidence):
                lines.append(f"      {key} = {finding.evidence[key]!r}")
        return "\n".join(lines)


# -- individual checks --------------------------------------------------------


def check_critpath(
    report: DoctorReport,
    lake,
    baseline: dict,
    delay_scale: float = 1.0,
    queries: list[str] | None = None,
    networks: list[str] | None = None,
    runtimes: list[str] | None = None,
) -> None:
    """Re-measure the attribution grid and attribute any drift."""
    from ..benchmark.baseline import NETWORK_CHOICES, POLICY_CHOICES, cell_key
    from ..benchmark.critpath import measure_critpath_cell
    from ..datasets import BENCHMARK_QUERIES

    report.checks.append("critpath")
    policy = POLICY_CHOICES[baseline["policy"]]()
    run_seed = baseline["run_seed"]
    for query_name in queries or baseline["queries"]:
        text = BENCHMARK_QUERIES[query_name].text
        for network_name in networks or baseline["networks"]:
            network = NETWORK_CHOICES[network_name]()
            for runtime in runtimes or baseline["runtimes"]:
                key = cell_key(query_name, baseline["policy"], network_name, runtime)
                base = baseline["cells"].get(key)
                if base is None:
                    continue
                fresh = measure_critpath_cell(
                    lake, text, policy, network, runtime, run_seed,
                    delay_scale=delay_scale,
                )
                _attribute_cell_drift(report, key, base, fresh, delay_scale)


def _attribute_cell_drift(
    report: DoctorReport, key: str, base: dict, fresh: dict, delay_scale: float
) -> None:
    base_total = base["total"]
    fresh_total = fresh["total"]
    drift = (fresh_total - base_total) / base_total if base_total else 0.0
    deltas = {
        name: fresh["classes"][name] - base["classes"][name]
        for name in base["classes"]
    }
    exact_match = base.get("exact_classes") == fresh.get("exact_classes")
    if delay_scale == 1.0:
        # Deterministic ground: the fresh run must reproduce the committed
        # attribution bit for bit.
        if not exact_match or base_total != fresh_total:
            report.findings.append(
                Finding(
                    severity="critical",
                    check="critpath",
                    code="attribution-drift",
                    title=f"{key}: attribution no longer matches the committed baseline",
                    evidence={
                        "cell": key,
                        "baseline_total": base_total,
                        "fresh_total": fresh_total,
                        "relative_drift": drift,
                        "class_deltas": deltas,
                    },
                )
            )
        return
    # Injected-counterfactual mode: attribute the (expected) drift.
    if abs(drift) < 1e-12 and exact_match:
        return
    dominant = max(deltas, key=lambda name: (abs(deltas[name]), name))
    source_deltas = {
        source: fresh.get("sources", {}).get(source, {}).get("network_delay", 0.0)
        - parts.get("network_delay", 0.0)
        for source, parts in base.get("sources", {}).items()
    }
    for source, parts in fresh.get("sources", {}).items():
        if source not in source_deltas:
            source_deltas[source] = parts.get("network_delay", 0.0)
    affected = (
        max(source_deltas, key=lambda name: (source_deltas[name], name))
        if source_deltas
        else None
    )
    severity = "critical" if abs(drift) >= CRITPATH_DRIFT_CRITICAL else "warning"
    title = f"{key}: total virtual time {'grew' if drift > 0 else 'shrank'} {abs(drift):.1%}"
    if dominant == "network_delay" and affected is not None:
        title += f" — network delay on source {affected!r}"
    else:
        title += f" — dominant blame class {dominant}"
    report.findings.append(
        Finding(
            severity=severity,
            check="critpath",
            code=f"{dominant.replace('_', '-')}-regression",
            title=title,
            evidence={
                "cell": key,
                "baseline_total": base_total,
                "fresh_total": fresh_total,
                "relative_drift": drift,
                "delay_scale": delay_scale,
                "dominant_class": dominant,
                "class_deltas": deltas,
                "affected_source": affected,
                "source_network_delay_deltas": source_deltas,
            },
        )
    )


def check_slo_burn(report: DoctorReport, slo: dict) -> None:
    """Flag tenants whose latency is queue-dominated, not engine-bound."""
    report.checks.append("slo-burn")
    for tenant in sorted(slo.get("tenants", {})):
        entry = slo["tenants"][tenant]
        queue = entry.get("queue_wait", {})
        execution = entry.get("execution", {})
        queue_p90 = queue.get("p90", 0.0)
        exec_p90 = execution.get("p90", 0.0)
        if queue.get("count", 0) and queue_p90 > exec_p90:
            report.findings.append(
                Finding(
                    severity="warning",
                    check="slo-burn",
                    code="queue-dominated",
                    title=(
                        f"tenant {tenant!r}: p90 queue wait {queue_p90:.4f}s exceeds "
                        f"p90 execution {exec_p90:.4f}s — latency is admission-bound"
                    ),
                    evidence={
                        "tenant": tenant,
                        "queue_wait_p90": queue_p90,
                        "execution_p90": exec_p90,
                        "queue_wait_p50": queue.get("p50", 0.0),
                        "execution_p50": execution.get("p50", 0.0),
                        "starts": entry.get("starts", 0),
                    },
                )
            )


def check_cache(report: DoctorReport, slo: dict, telemetry_baseline: dict) -> None:
    """Hit-ratio drops against the committed telemetry baseline."""
    report.checks.append("cache")
    baseline_caches = telemetry_baseline.get("slo", {}).get("cache", {})
    current_caches = slo.get("cache", {})
    for name in sorted(baseline_caches):
        base_rate = baseline_caches[name].get("hit_rate", 0.0)
        current = current_caches.get(name)
        if current is None:
            continue
        rate = current.get("hit_rate", 0.0)
        drop = base_rate - rate
        if drop <= CACHE_DROP_WARNING:
            continue
        severity = "critical" if drop > CACHE_DROP_CRITICAL else "warning"
        report.findings.append(
            Finding(
                severity=severity,
                check="cache",
                code="hit-ratio-drop",
                title=(
                    f"cache {name!r}: hit rate dropped {drop:.1%} "
                    f"({base_rate:.1%} -> {rate:.1%})"
                ),
                evidence={
                    "cache": name,
                    "baseline_hit_rate": base_rate,
                    "hit_rate": rate,
                    "drop": drop,
                    "hits": current.get("hits", 0),
                    "misses": current.get("misses", 0),
                },
            )
        )


def check_q_error(
    report: DoctorReport,
    plan_quality: dict,
    critpath_baseline: dict | None = None,
    threshold: float = Q_ERROR_THRESHOLD,
) -> None:
    """Estimation hotspots, elevated when on an engine-dominated path."""
    report.checks.append("q-error")
    critpath_cells = (critpath_baseline or {}).get("cells", {})
    for key in sorted(plan_quality.get("cells", {})):
        cell = plan_quality["cells"][key]
        q_max = cell.get("q_error_max")
        if q_max is None or q_max < threshold:
            continue
        crit = critpath_cells.get(key)
        engine_share = None
        severity = "info"
        if crit is not None and crit.get("total"):
            engine_share = crit["classes"]["engine_work"] / crit["total"]
            if engine_share >= 0.5:
                severity = "warning"
        report.findings.append(
            Finding(
                severity=severity,
                check="q-error",
                code="estimation-hotspot",
                title=(
                    f"{key}: max q-error {q_max:.2f}"
                    + (
                        f" on an engine-dominated critical path "
                        f"({engine_share:.0%} engine work)"
                        if severity == "warning"
                        else ""
                    )
                ),
                evidence={
                    "cell": key,
                    "q_error_max": q_max,
                    "q_error_mean": cell.get("q_error_mean"),
                    "engine_work_share": engine_share,
                },
            )
        )


def check_heuristics(
    report: DoctorReport,
    plan_quality: dict,
    factor: float = HEURISTIC_MISFIRE_FACTOR,
) -> None:
    """Cells where the aware policy is slower than unaware (H1/H2 misfire)."""
    report.checks.append("heuristics")
    cells = plan_quality.get("cells", {})
    for key in sorted(cells):
        query, policy, network, runtime = key.split("|")
        if policy != "aware":
            continue
        unaware = cells.get(f"{query}|unaware|{network}|{runtime}")
        if unaware is None:
            continue
        aware_time = cells[key].get("execution_time")
        unaware_time = unaware.get("execution_time")
        if aware_time is None or unaware_time is None or not unaware_time:
            continue
        if aware_time > unaware_time * factor:
            report.findings.append(
                Finding(
                    severity="warning",
                    check="heuristics",
                    code="aware-slower-than-unaware",
                    title=(
                        f"{query} {network} {runtime}: aware plan is "
                        f"{aware_time / unaware_time:.2f}x unaware — H1/H2 "
                        f"misfire for this cell"
                    ),
                    evidence={
                        "cell": key,
                        "aware_execution_time": aware_time,
                        "unaware_execution_time": unaware_time,
                        "ratio": aware_time / unaware_time,
                    },
                )
            )


def diagnose(
    lake=None,
    critpath_baseline: dict | None = None,
    plan_quality: dict | None = None,
    telemetry_baseline: dict | None = None,
    journal_events: list | None = None,
    slo: dict | None = None,
    delay_scale: float = 1.0,
    queries: list[str] | None = None,
    networks: list[str] | None = None,
    runtimes: list[str] | None = None,
) -> DoctorReport:
    """Run every check whose inputs are available; returns a ranked report.

    *slo* is a ready SLO snapshot; when absent but *journal_events* is
    given, the snapshot is rebuilt by journal replay (the same replay
    ``repro slo report`` uses).  The telemetry baseline's own snapshot is
    the fallback — then the doctor is checking the committed baseline's
    internal consistency.
    """
    report = DoctorReport()
    if slo is None and journal_events is not None:
        from .slo import accountant_from_journal

        accountant, cache_stats = accountant_from_journal(journal_events)
        slo = accountant.snapshot(cache_stats=cache_stats)
    if slo is None and telemetry_baseline is not None:
        slo = telemetry_baseline.get("slo")
    if lake is not None and critpath_baseline is not None:
        check_critpath(
            report,
            lake,
            critpath_baseline,
            delay_scale=delay_scale,
            queries=queries,
            networks=networks,
            runtimes=runtimes,
        )
    if slo is not None:
        check_slo_burn(report, slo)
        if telemetry_baseline is not None:
            check_cache(report, slo, telemetry_baseline)
    if plan_quality is not None:
        check_q_error(report, plan_quality, critpath_baseline)
        check_heuristics(report, plan_quality)
    report.rank()
    return report
