"""Sequential-runtime instrumentation: rebind ``execute``, restore after.

The pull-based operator chain offers no push-side interception point, so
observing it means rebinding ``execute`` on each operator instance with a
counting wrapper.  The historical profiler did exactly that and never
undid it — a plan served from the plan cache after being profiled kept its
traced closures and double-counted on the next profile.  This module's
contract closes that hole: :func:`instrument_sequential` returns a restore
callable, and every caller runs it in a ``finally`` so the plan leaves the
observed execution exactly as it entered.

The event and thread runtimes need none of this: the scheduler's
``compile_plan`` inserts tap nodes between push-mode nodes when the run is
observed, which never touches the plan's operators at all.
"""

from __future__ import annotations

from typing import Callable, Iterator

from typing import TYPE_CHECKING

from ..federation.answers import RunContext, Solution
from ..federation.operators import FedOperator
from .observation import RunObservation
from .profile import ProfileReport

if TYPE_CHECKING:  # pragma: no cover - avoids an obs <-> core cycle
    from ..core.planner import FederatedPlan


def instrument_sequential(
    root: FedOperator, observation: RunObservation, context: RunContext
) -> Callable[[], None]:
    """Rebind ``execute`` on every operator under *root* to count rows.

    Returns a restore callable that removes every rebinding; callers MUST
    invoke it in a ``finally`` so cached plans never retain traced
    closures (the plan-cache × profiler double-count bug).
    """
    instrumented: list[FedOperator] = []

    def instrument(operator: FedOperator) -> None:
        profile = observation.profile_for(operator)
        original_execute = operator.execute
        original_execute_batch = operator.execute_batch

        def traced_execute(run_context: RunContext) -> Iterator[Solution]:
            for solution in original_execute(run_context):
                profile.record(context.now())
                yield solution

        def traced_execute_batch(run_context: RunContext):
            # Batch operators count rows, not chunks: one profile record
            # per emitted handle keeps row/batch profiles comparable.
            # (Works on the dispatcher-style execute_batch methods too —
            # they return an iterator which this generator drains.)
            for handle in original_execute_batch(run_context):
                profile.record(context.now())
                yield handle

        operator.execute = traced_execute  # type: ignore[method-assign]
        operator.execute_batch = traced_execute_batch  # type: ignore[method-assign]
        instrumented.append(operator)
        for child in operator.children():
            instrument(child)

    def restore() -> None:
        for operator in instrumented:
            # The rebinding lives in the instance dict, shadowing the class
            # method; deleting it restores the original behaviour even if
            # restore runs more than once.
            operator.__dict__.pop("execute", None)
            operator.__dict__.pop("execute_batch", None)

    instrument(root)
    return restore


def profile_plan(
    plan: "FederatedPlan", context: RunContext
) -> tuple[list[Solution], ProfileReport]:
    """Execute *plan* under *context* with per-operator instrumentation.

    Sequential-runtime only (drives ``plan.root.execute`` directly); for
    profiling under the event/thread runtimes go through
    :meth:`repro.core.engine.FederatedEngine.profile`.  The plan is
    guaranteed to leave uninstrumented even on error or early abandonment.
    """
    observation = RunObservation()
    observation.register_plan(plan)
    if context.obs is None:
        context.obs = observation
    restore = instrument_sequential(plan.root, observation, context)
    answers = []
    try:
        for solution in plan.root.execute(context):
            context.stats.record_answer(context.now())
            answers.append(solution)
    finally:
        restore()
        context.stats.execution_time = context.now()
    report = observation.profile_report(context.stats)
    if context.caches is not None:
        report.cache_summary = context.stats.cache_summary()
    return answers, report
