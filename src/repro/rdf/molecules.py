"""RDF Molecule Templates (RDF-MTs).

An RDF-MT (Endris et al., MULDER) is an abstract description of one class of
entities in a data set: the class IRI, the properties its instances carry,
and links to other molecule templates reached through object properties.
Ontario uses RDF-MTs for source selection and star-shaped decomposition; the
physical-design-aware planner in :mod:`repro.core` additionally annotates the
relational backing of each property (table, column, index) via the catalog.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .graph import Graph
from .namespaces import RDF_TYPE
from .terms import IRI, Literal


@dataclass(frozen=True, slots=True)
class PropertyLink:
    """An object property of one molecule pointing at another molecule's class."""

    predicate: IRI
    target_class: IRI


@dataclass
class RDFMoleculeTemplate:
    """Description of one class of instances within one data source.

    Attributes:
        source_id: identifier of the data source the molecule was mined from.
        class_iri: the ``rdf:type`` shared by the instances.
        predicates: every predicate observed on instances of the class.
        links: object-property links to other molecule templates.
        cardinality: number of instances of the class in the source.
        predicate_cardinality: number of triples per predicate.
    """

    source_id: str
    class_iri: IRI
    predicates: set[IRI] = field(default_factory=set)
    links: set[PropertyLink] = field(default_factory=set)
    cardinality: int = 0
    predicate_cardinality: dict[IRI, int] = field(default_factory=dict)

    def has_predicates(self, predicates: set[IRI]) -> bool:
        """True when this molecule offers every predicate in *predicates*."""
        return predicates <= self.predicates

    def __repr__(self) -> str:
        return (
            f"RDFMoleculeTemplate({self.source_id!r}, {self.class_iri.value!r}, "
            f"|preds|={len(self.predicates)}, card={self.cardinality})"
        )


def extract_molecule_templates(graph: Graph, source_id: str) -> list[RDFMoleculeTemplate]:
    """Mine the RDF-MTs of *graph* following the MULDER construction.

    Every subject is grouped under each of its ``rdf:type`` classes; subjects
    without a type are grouped under a per-source synthetic class so that no
    data becomes unreachable for source selection.
    """
    untyped_class = IRI(f"urn:repro:untyped:{source_id}")
    molecules: dict[IRI, RDFMoleculeTemplate] = {}
    instance_classes: dict[object, list[IRI]] = defaultdict(list)

    for triple in graph.triples(None, RDF_TYPE, None):
        if isinstance(triple.object, IRI):
            instance_classes[triple.subject].append(triple.object)

    def molecule_for(class_iri: IRI) -> RDFMoleculeTemplate:
        if class_iri not in molecules:
            molecules[class_iri] = RDFMoleculeTemplate(source_id, class_iri)
        return molecules[class_iri]

    instances_per_class: dict[IRI, set[object]] = defaultdict(set)
    for triple in graph:
        classes = instance_classes.get(triple.subject) or [untyped_class]
        for class_iri in classes:
            molecule = molecule_for(class_iri)
            molecule.predicates.add(triple.predicate)
            molecule.predicate_cardinality[triple.predicate] = (
                molecule.predicate_cardinality.get(triple.predicate, 0) + 1
            )
            instances_per_class[class_iri].add(triple.subject)
            if not isinstance(triple.object, Literal):
                for target_class in instance_classes.get(triple.object, ()):
                    molecule.links.add(PropertyLink(triple.predicate, target_class))

    for class_iri, instances in instances_per_class.items():
        molecules[class_iri].cardinality = len(instances)
    return sorted(molecules.values(), key=lambda m: m.class_iri.value)


class MoleculeCatalog:
    """The union of molecule templates across every source of a data lake."""

    def __init__(self):
        self._by_class: dict[IRI, list[RDFMoleculeTemplate]] = defaultdict(list)
        self._by_source: dict[str, list[RDFMoleculeTemplate]] = defaultdict(list)

    def add(self, molecule: RDFMoleculeTemplate) -> None:
        self._by_class[molecule.class_iri].append(molecule)
        self._by_source[molecule.source_id].append(molecule)

    def add_all(self, molecules: list[RDFMoleculeTemplate]) -> None:
        for molecule in molecules:
            self.add(molecule)

    def by_class(self, class_iri: IRI) -> list[RDFMoleculeTemplate]:
        return list(self._by_class.get(class_iri, ()))

    def by_source(self, source_id: str) -> list[RDFMoleculeTemplate]:
        return list(self._by_source.get(source_id, ()))

    def sources_with_predicates(self, predicates: set[IRI]) -> dict[str, list[RDFMoleculeTemplate]]:
        """Map source id -> molecules of that source offering all *predicates*."""
        matches: dict[str, list[RDFMoleculeTemplate]] = defaultdict(list)
        for molecules in self._by_class.values():
            for molecule in molecules:
                if molecule.has_predicates(predicates):
                    matches[molecule.source_id].append(molecule)
        return dict(matches)

    def all_molecules(self) -> list[RDFMoleculeTemplate]:
        return [m for molecules in self._by_class.values() for m in molecules]

    def __len__(self) -> int:
        return sum(len(molecules) for molecules in self._by_class.values())
