"""An indexed in-memory triple store.

The store keeps three permutation indexes (SPO, POS, OSP) so that any triple
pattern with at least one ground position is answered by dictionary lookups
instead of a full scan.  This mirrors the behaviour of native RDF stores the
paper's federation queries against and gives the SPARQL wrapper realistic
access paths.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from .terms import IRI, PatternTerm, Term, Triple, Variable


def _match(term: PatternTerm | None, value: Term) -> bool:
    if term is None or isinstance(term, Variable):
        return True
    return term == value


class Graph:
    """A set of RDF triples with SPO/POS/OSP permutation indexes.

    The public pattern-matching entry point is :meth:`triples`; ``None`` or a
    :class:`~repro.rdf.terms.Variable` in a position acts as a wildcard.
    """

    def __init__(self, name: str = "default"):
        self.name = name
        #: Monotonic data-version counter, bumped whenever the triple set
        #: actually changes; the federation's caches key on it.
        self.version = 0
        # Triples and indexes are insertion-ordered dicts, not sets: scan
        # order must be process-independent (hash-set iteration depends on
        # PYTHONHASHSEED), or answer arrival order — and with it dief@t and
        # time-to-first-answer in the committed plan-quality baseline —
        # would change from one interpreter run to the next.
        self._triples: dict[Triple, None] = {}
        # index[s][p] -> ordered set of o, and the two rotations.
        self._spo: dict[Term, dict[IRI, dict[Term, None]]] = defaultdict(
            lambda: defaultdict(dict)
        )
        self._pos: dict[IRI, dict[Term, dict[Term, None]]] = defaultdict(
            lambda: defaultdict(dict)
        )
        self._osp: dict[Term, dict[Term, dict[IRI, None]]] = defaultdict(
            lambda: defaultdict(dict)
        )

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def add(self, triple: Triple) -> bool:
        """Add *triple*; returns True when it was not already present."""
        if triple in self._triples:
            return False
        self._triples[triple] = None
        s, p, o = triple.subject, triple.predicate, triple.object
        self._spo[s][p][o] = None
        self._pos[p][o][s] = None
        self._osp[o][s][p] = None
        self.version += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add every triple from *triples*; returns the number newly added."""
        return sum(1 for triple in triples if self.add(triple))

    def remove(self, triple: Triple) -> bool:
        """Remove *triple*; returns True when it was present."""
        if triple not in self._triples:
            return False
        del self._triples[triple]
        s, p, o = triple.subject, triple.predicate, triple.object
        self._spo[s][p].pop(o, None)
        self._pos[p][o].pop(s, None)
        self._osp[o][s].pop(p, None)
        self.version += 1
        return True

    def triples(
        self,
        subject: PatternTerm | None = None,
        predicate: PatternTerm | None = None,
        object: PatternTerm | None = None,
    ) -> Iterator[Triple]:
        """Yield every triple matching the (possibly wildcard) pattern.

        The most selective available index is chosen from the ground
        positions; a fully unbound pattern iterates the whole store.
        """
        s = None if isinstance(subject, Variable) else subject
        p = None if isinstance(predicate, Variable) else predicate
        o = None if isinstance(object, Variable) else object

        if s is not None:
            by_predicate = self._spo.get(s)
            if not by_predicate:
                return
            predicates = [p] if p is not None else list(by_predicate)
            for pred in predicates:
                if not isinstance(pred, IRI):
                    continue
                for obj in by_predicate.get(pred, ()):
                    if _match(o, obj):
                        yield Triple(s, pred, obj)
            return
        if p is not None:
            if not isinstance(p, IRI):
                return
            by_object = self._pos.get(p)
            if not by_object:
                return
            objects = [o] if o is not None else list(by_object)
            for obj in objects:
                for subj in by_object.get(obj, ()):
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            by_subject = self._osp.get(o)
            if not by_subject:
                return
            for subj, preds in by_subject.items():
                for pred in preds:
                    yield Triple(subj, pred, o)
            return
        yield from list(self._triples)

    def count(
        self,
        subject: PatternTerm | None = None,
        predicate: PatternTerm | None = None,
        object: PatternTerm | None = None,
    ) -> int:
        """Count matches of a pattern without materializing triples."""
        return sum(1 for __ in self.triples(subject, predicate, object))

    def subjects(self, predicate: IRI | None = None, object: Term | None = None) -> Iterator[Term]:
        """Yield distinct subjects of triples matching ``(?, predicate, object)``."""
        seen: set[Term] = set()
        for triple in self.triples(None, predicate, object):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def objects(self, subject: Term | None = None, predicate: IRI | None = None) -> Iterator[Term]:
        """Yield distinct objects of triples matching ``(subject, predicate, ?)``."""
        seen: set[Term] = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def predicates(self, subject: Term | None = None) -> Iterator[IRI]:
        """Yield distinct predicates, optionally restricted to one subject."""
        seen: set[IRI] = set()
        for triple in self.triples(subject, None, None):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def value(self, subject: Term, predicate: IRI) -> Term | None:
        """Return one object of ``(subject, predicate, ?)`` or None."""
        for triple in self.triples(subject, predicate, None):
            return triple.object
        return None
