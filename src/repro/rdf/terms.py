"""RDF term model: IRIs, literals, blank nodes, variables and triples.

The model follows RDF 1.1 concepts closely enough for a federated SPARQL
engine: terms are immutable, hashable values with a canonical N-Triples
serialization, and :class:`Variable` extends the universe so the same types
can appear in triple *patterns* (see :mod:`repro.sparql.algebra`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = XSD + "string"
XSD_INTEGER = XSD + "integer"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_BOOLEAN = XSD + "boolean"

_NUMERIC_DATATYPES = frozenset({XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE})


@dataclass(frozen=True, slots=True)
class IRI:
    """An absolute IRI reference, e.g. ``IRI("http://example.org/d/1")``."""

    value: str

    def __hash__(self) -> int:
        # CPython caches a str's hash in the object, so delegating to the
        # value string is much cheaper than the generated field-tuple hash
        # on the join/distinct hot paths (shared column vectors hash the
        # same term objects over and over).
        return hash(self.value)

    def n3(self) -> str:
        """Serialize in N-Triples syntax: ``<iri>``."""
        return f"<{self.value}>"

    def __str__(self) -> str:
        return self.value

    def local_name(self) -> str:
        """Return the fragment after the last ``#`` or ``/`` separator."""
        for separator in ("#", "/"):
            __, found, tail = self.value.rpartition(separator)
            if found:
                return tail
        return self.value


@dataclass(frozen=True, slots=True)
class BNode:
    """A blank node with a document-scoped label, e.g. ``BNode("b0")``."""

    label: str

    def __hash__(self) -> int:
        return hash(self.label)

    def n3(self) -> str:
        return f"_:{self.label}"

    def __str__(self) -> str:
        return f"_:{self.label}"


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal with an optional datatype IRI or language tag.

    A plain ``Literal("x")`` is an ``xsd:string``.  Use the
    :func:`typed_literal` helper to build literals from Python values.
    """

    lexical: str
    datatype: str = XSD_STRING
    language: str | None = None

    def __hash__(self) -> int:
        # Hashing the lexical form alone is consistent with __eq__ (equal
        # literals share it); same-lexical literals of different datatypes
        # collide harmlessly into the equality check.
        return hash(self.lexical)

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def __str__(self) -> str:
        return self.lexical

    @property
    def is_numeric(self) -> bool:
        return self.datatype in _NUMERIC_DATATYPES

    def to_python(self) -> str | int | float | bool:
        """Convert to the closest Python value; falls back to the lexical form."""
        if self.datatype == XSD_INTEGER:
            try:
                return int(self.lexical)
            except ValueError:
                return self.lexical
        if self.datatype in (XSD_DECIMAL, XSD_DOUBLE):
            try:
                return float(self.lexical)
            except ValueError:
                return self.lexical
        if self.datatype == XSD_BOOLEAN:
            return self.lexical.strip().lower() in ("true", "1")
        return self.lexical


@dataclass(frozen=True, slots=True)
class Variable:
    """A SPARQL variable, e.g. ``Variable("gene")`` rendered as ``?gene``."""

    name: str

    def __hash__(self) -> int:
        return hash(self.name)

    def n3(self) -> str:
        return f"?{self.name}"

    def __str__(self) -> str:
        return f"?{self.name}"


#: Terms that may appear in RDF data.
Term = Union[IRI, BNode, Literal]
#: Terms that may appear in a triple pattern.
PatternTerm = Union[IRI, BNode, Literal, Variable]


def typed_literal(value: str | int | float | bool) -> Literal:
    """Build a :class:`Literal` with the XSD datatype matching *value*'s type."""
    if isinstance(value, bool):
        return Literal("true" if value else "false", XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), XSD_INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), XSD_DOUBLE)
    return Literal(value)


def is_ground(term: PatternTerm) -> bool:
    """True when *term* contains no variable (i.e. it can appear in data)."""
    return not isinstance(term, Variable)


@dataclass(frozen=True, slots=True)
class Triple:
    """A ground RDF triple ``(subject, predicate, object)``."""

    subject: Term
    predicate: IRI
    object: Term

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))
