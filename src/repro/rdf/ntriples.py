"""N-Triples parsing and serialization (RDF 1.1 N-Triples subset).

Supports IRIs, blank nodes, plain / language-tagged / datatyped literals,
comments, and the standard string escapes.  This is the interchange format
used to load the synthetic LSLOD datasets into graphs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO

from ..exceptions import NTriplesParseError
from .graph import Graph
from .terms import BNode, IRI, Literal, Term, Triple

_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
    "b": "\b",
    "f": "\f",
    "'": "'",
}


class _LineParser:
    """A cursor over a single N-Triples line."""

    def __init__(self, line: str, line_number: int):
        self.text = line
        self.pos = 0
        self.line_number = line_number

    def error(self, message: str) -> NTriplesParseError:
        return NTriplesParseError(message, line=self.line_number, column=self.pos + 1)

    def skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        if self.at_end():
            raise self.error("unexpected end of line")
        return self.text[self.pos]

    def expect(self, char: str) -> None:
        if self.at_end() or self.text[self.pos] != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def read_iri(self) -> IRI:
        self.expect("<")
        end = self.text.find(">", self.pos)
        if end < 0:
            raise self.error("unterminated IRI")
        value = self.text[self.pos:end]
        self.pos = end + 1
        return IRI(value)

    def read_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "-_."
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("empty blank node label")
        return BNode(self.text[start:self.pos])

    def read_quoted_string(self) -> str:
        self.expect('"')
        parts: list[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated literal")
            char = self.text[self.pos]
            self.pos += 1
            if char == '"':
                return "".join(parts)
            if char != "\\":
                parts.append(char)
                continue
            if self.at_end():
                raise self.error("dangling escape")
            escape = self.text[self.pos]
            self.pos += 1
            if escape in _ESCAPES:
                parts.append(_ESCAPES[escape])
            elif escape == "u":
                parts.append(self._read_unicode_escape(4))
            elif escape == "U":
                parts.append(self._read_unicode_escape(8))
            else:
                raise self.error(f"unknown escape \\{escape}")

    def _read_unicode_escape(self, width: int) -> str:
        digits = self.text[self.pos:self.pos + width]
        if len(digits) < width:
            raise self.error("truncated unicode escape")
        try:
            code = int(digits, 16)
        except ValueError as exc:
            raise self.error(f"invalid unicode escape {digits!r}") from exc
        self.pos += width
        return chr(code)

    def read_literal(self) -> Literal:
        lexical = self.read_quoted_string()
        if not self.at_end() and self.text[self.pos] == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] == "-"
            ):
                self.pos += 1
            if self.pos == start:
                raise self.error("empty language tag")
            return Literal(lexical, language=self.text[start:self.pos])
        if self.text[self.pos:self.pos + 2] == "^^":
            self.pos += 2
            datatype = self.read_iri()
            return Literal(lexical, datatype=datatype.value)
        return Literal(lexical)

    def read_subject(self) -> Term:
        char = self.peek()
        if char == "<":
            return self.read_iri()
        if char == "_":
            return self.read_bnode()
        raise self.error("subject must be an IRI or blank node")

    def read_object(self) -> Term:
        char = self.peek()
        if char == "<":
            return self.read_iri()
        if char == "_":
            return self.read_bnode()
        if char == '"':
            return self.read_literal()
        raise self.error("object must be an IRI, blank node or literal")


def parse_line(line: str, line_number: int = 1) -> Triple | None:
    """Parse one N-Triples line; returns None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parser = _LineParser(line.rstrip("\n"), line_number)
    parser.skip_whitespace()
    subject = parser.read_subject()
    parser.skip_whitespace()
    predicate = parser.read_iri()
    parser.skip_whitespace()
    obj = parser.read_object()
    parser.skip_whitespace()
    parser.expect(".")
    parser.skip_whitespace()
    if not parser.at_end() and not parser.text[parser.pos:].lstrip().startswith("#"):
        raise parser.error("trailing content after '.'")
    return Triple(subject, predicate, obj)


def parse(text: str | Iterable[str]) -> Iterator[Triple]:
    """Parse an N-Triples document given as a string or an iterable of lines.

    Lines are split on ``\\n`` only — ``str.splitlines`` would also split on
    control characters (\\x1e, \\u2028, ...) that may legally occur inside
    literals.
    """
    lines = text.split("\n") if isinstance(text, str) else text
    for line_number, line in enumerate(lines, start=1):
        triple = parse_line(line, line_number)
        if triple is not None:
            yield triple


def parse_into(graph: Graph, text: str | Iterable[str]) -> int:
    """Parse *text* and add every triple to *graph*; returns the count added."""
    return graph.add_all(parse(text))


def serialize(triples: Iterable[Triple]) -> str:
    """Serialize triples as an N-Triples document (one statement per line)."""
    return "".join(triple.n3() + "\n" for triple in triples)


def write(triples: Iterable[Triple], stream: TextIO) -> int:
    """Write triples to *stream* in N-Triples syntax; returns the count."""
    count = 0
    for triple in triples:
        stream.write(triple.n3() + "\n")
        count += 1
    return count
