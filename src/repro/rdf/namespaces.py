"""Namespace helpers and the vocabulary IRIs used across the reproduction."""

from __future__ import annotations

from .terms import IRI


class Namespace:
    """A factory of IRIs sharing a common prefix.

    Example:
        >>> EX = Namespace("http://example.org/")
        >>> EX.drug
        IRI(value='http://example.org/drug')
        >>> EX["drug/1"]
        IRI(value='http://example.org/drug/1')
    """

    def __init__(self, base: str):
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return IRI(self._base + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self._base + name)

    def term(self, name: str) -> IRI:
        return IRI(self._base + name)

    def __contains__(self, iri: IRI | str) -> bool:
        value = iri.value if isinstance(iri, IRI) else iri
        return value.startswith(self._base)

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")

#: ``rdf:type`` — the predicate that anchors RDF molecule templates.
RDF_TYPE = RDF.type


class PrefixMap:
    """A bidirectional prefix <-> namespace registry for (de)serialization."""

    def __init__(self, prefixes: dict[str, str] | None = None):
        self._by_prefix: dict[str, str] = {}
        if prefixes:
            for prefix, base in prefixes.items():
                self.bind(prefix, base)

    def bind(self, prefix: str, base: str) -> None:
        self._by_prefix[prefix] = base

    def expand(self, qname: str) -> IRI:
        """Expand a ``prefix:local`` name into an IRI.

        Raises:
            KeyError: when the prefix is not bound.
        """
        prefix, __, local = qname.partition(":")
        return IRI(self._by_prefix[prefix] + local)

    def shrink(self, iri: IRI) -> str | None:
        """Return ``prefix:local`` for *iri* when a bound namespace matches."""
        best: tuple[int, str, str] | None = None
        for prefix, base in self._by_prefix.items():
            if iri.value.startswith(base) and (best is None or len(base) > best[0]):
                best = (len(base), prefix, base)
        if best is None:
            return None
        __, prefix, base = best
        return f"{prefix}:{iri.value[len(base):]}"

    def items(self):
        return self._by_prefix.items()

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._by_prefix

    def copy(self) -> "PrefixMap":
        return PrefixMap(dict(self._by_prefix))
