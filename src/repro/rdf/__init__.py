"""RDF substrate: terms, triple store, N-Triples I/O and RDF-MT mining."""

from .graph import Graph
from .molecules import MoleculeCatalog, PropertyLink, RDFMoleculeTemplate, extract_molecule_templates
from .namespaces import OWL, RDF, RDF_TYPE, RDFS, Namespace, PrefixMap
from .ntriples import parse, parse_into, parse_line, serialize, write
from .terms import (
    BNode,
    IRI,
    Literal,
    PatternTerm,
    Term,
    Triple,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    is_ground,
    typed_literal,
)

__all__ = [
    "BNode",
    "Graph",
    "IRI",
    "Literal",
    "MoleculeCatalog",
    "Namespace",
    "OWL",
    "PatternTerm",
    "PrefixMap",
    "PropertyLink",
    "RDF",
    "RDFMoleculeTemplate",
    "RDFS",
    "RDF_TYPE",
    "Term",
    "Triple",
    "Variable",
    "XSD_BOOLEAN",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_INTEGER",
    "XSD_STRING",
    "extract_molecule_templates",
    "is_ground",
    "parse",
    "parse_into",
    "parse_line",
    "serialize",
    "typed_literal",
    "write",
]
