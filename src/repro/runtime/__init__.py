"""Concurrent execution runtimes for federated plans.

Three runtimes share one operator algebra and one cost model:

* ``sequential`` — the original pull-based iterator chain (one shared
  clock; source delays are summed);
* ``event`` — the discrete-event scheduler: every wrapper sub-query is a
  producer task on its own virtual timeline, so independent sources'
  delays overlap (:class:`EventScheduler`);
* ``thread`` — the same event semantics, with wrapper sub-queries
  executed concurrently on a thread pool; bit-identical to ``event``
  by construction (per-task RNG substreams).
"""

from .scheduler import RUNTIMES, EventScheduler, Gate
from .task import TaskContext, task_rng

__all__ = ["RUNTIMES", "EventScheduler", "Gate", "TaskContext", "task_rng"]
