"""Deterministic discrete-event scheduler with overlapping source delays.

The sequential runtime executes a plan as one pull-based iterator chain
over one shared clock, so two wrappers' network delays are *summed*.  This
scheduler instead runs every wrapper sub-query as a producer task on its
own virtual timeline and merges the answer streams on the engine timeline
by event time: a join's output timestamp becomes the *max* of its inputs'
availability plus engine work, so independent sources' delays genuinely
overlap.

Semantics (the invariants the tests pin down):

* **Rendezvous resume.**  A producer that yields a solution at local time
  ``t`` blocks until the engine consumes that event.  The engine picks the
  pending event with the smallest ``(time, producer id)``, advances its
  clock to ``max(engine now, t)``, runs the full push cascade (charging
  engine work to the engine clock), and then resumes the producer at the
  post-cascade engine time.  For a plan with a single producer this
  degenerates to exactly the sequential interleaving — single-source plans
  report bit-identical virtual times under both runtimes — while sibling
  producers overlap their delays.

* **Determinism.**  Each producer draws network delays from its own RNG
  substream derived from ``(run seed, task key)`` (see
  :mod:`repro.runtime.task`), events are ordered by ``(time, producer
  id)``, and producer ids are assigned in deterministic compile/spawn
  order — so the same seed yields bit-identical answer traces, run after
  run, in both simulated-only and thread-pool modes.

* **Thread-pool mode.**  Workers materialize complete wrapper streams
  under a private task context, recording each answer's *local* yield time;
  the scheduler replays those recordings as events, translating local
  times onto the engine timeline via the same rendezvous rule
  (``ready = resume_time + (t_local - previous_local)``).  Because charges
  are duration-only and RNG substreams are per-task, the resulting event
  timeline is bit-identical to simulated-only mode — threads buy wall-clock
  parallelism, never different answers or times.
"""

from __future__ import annotations

import itertools
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator

import numpy as np

from ..federation.answers import ExecutionStats, RunContext, Solution
from ..federation.operators import FedOperator
from .nodes import SinkNode, compile_plan
from .task import TaskContext

#: The runtimes an engine can execute a plan under.  "sequential" is the
#: original pull-based iterator chain; "event" is this scheduler in
#: simulated-only mode; "thread" adds real wrapper parallelism on a pool.
RUNTIMES = ("sequential", "event", "thread")

#: Sentinel payload marking the end of a producer's stream.  Its event
#: time includes the producer's residual local work after its last answer.
_CLOSE = object()


class Gate:
    """A pause scope over a subtree's producer tasks.

    Dependent joins pause their outer subtree while an inner block runs.
    Gates form a tree mirroring the plan's nesting; pausing a gate pauses
    every producer registered at or below it.  Depth counters (not
    booleans) make nested dependent joins compose: a producer resumes only
    when *every* enclosing pause has been lifted.
    """

    __slots__ = ("producers", "children")

    def __init__(self, parent: "Gate | None" = None):
        self.producers: list[_ProducerBase] = []
        self.children: list[Gate] = []
        if parent is not None:
            parent.children.append(self)

    def pause(self) -> None:
        for producer in self.producers:
            producer.pause_depth += 1
        for child in self.children:
            child.pause()

    def unpause(self, sched: "EventScheduler") -> None:
        for producer in self.producers:
            producer.pause_depth -= 1
            if (
                producer.pause_depth == 0
                and producer.awaiting_resume
                and not producer.done
            ):
                producer.awaiting_resume = False
                producer.resume_at(sched.context.now())
                producer.needs_fetch = True
        for child in self.children:
            child.unpause(sched)


class _ProducerBase:
    """Common event-side state of a producer task."""

    def __init__(self, pid: int, node, slot: int):
        self.pid = pid
        self.node = node
        self.slot = slot
        #: The next undelivered event, as (time, payload), or None.
        self.pending: tuple[float, object] | None = None
        self.done = False
        self.pause_depth = 0
        #: True between delivering an event and granting the resume (the
        #: producer is at its rendezvous point, waiting for a resume time).
        self.awaiting_resume = False
        #: True when the producer may compute its next pending event.
        self.needs_fetch = True
        #: Observed runs only: the granted resume time the pending event's
        #: local segment started from, and the producer's cumulative
        #: (source virtual cost, network delay) at the yield.  Stale
        #: when observation is off — never read then.
        self._segment_start = 0.0
        self._mark = (0.0, 0.0)

    def fetch(self) -> None:
        raise NotImplementedError

    def resume_at(self, time: float) -> None:
        raise NotImplementedError

    def task_stats(self) -> ExecutionStats | None:
        raise NotImplementedError

    def abort(self) -> None:
        raise NotImplementedError


class LiveProducer(_ProducerBase):
    """Simulated-only producer: runs the wrapper generator lazily in-line.

    The generator advances exactly one yield per ``fetch``; its charges
    accrue on the task's private clock, and ``resume_at`` jumps that clock
    forward to the consumer's rendezvous time.
    """

    def __init__(
        self,
        pid: int,
        node,
        slot: int,
        runner: Callable[[RunContext], Iterator[Solution]],
        ctx: TaskContext,
    ):
        super().__init__(pid, node, slot)
        self.ctx = ctx
        self._gen = runner(ctx)

    def fetch(self) -> None:
        ctx = self.ctx
        observed = ctx.obs is not None
        if observed:
            # The generator is suspended at its rendezvous; its clock sits
            # exactly at the last granted resume (or the spawn start).
            self._segment_start = ctx.now()
        try:
            solution = next(self._gen)
        except StopIteration:
            self.pending = (ctx.now(), _CLOSE)
        else:
            self.pending = (ctx.now(), solution)
        if observed:
            self._mark = _transfer_mark(ctx.stats)

    def resume_at(self, time: float) -> None:
        self.ctx.clock.advance_to(time)

    def task_stats(self) -> ExecutionStats:
        return self.ctx.stats

    def abort(self) -> None:
        self._gen.close()


def _materialize(
    runner: Callable[[RunContext], Iterator[Solution]], ctx: TaskContext
) -> tuple[list[tuple[float, Solution]], float, ExecutionStats]:
    """Thread-pool worker body: drain one wrapper stream to completion.

    Runs entirely on the task's private context (clock starting at 0, own
    RNG substream, own stats), recording each answer's local yield time.
    """
    rows = [(ctx.now(), solution) for solution in runner(ctx)]
    return rows, ctx.now(), ctx.stats


def _transfer_mark(stats: ExecutionStats) -> tuple[float, float]:
    """Cumulative (source virtual cost, network delay) of one task's stats.

    A producer task serves exactly one wrapper sub-query, so the dict has
    a single entry; summing in insertion order keeps the (degenerate)
    multi-entry case deterministic too.
    """
    cache = 0.0
    network = 0.0
    for source in stats.source_stats.values():
        cache += source.virtual_cost
        network += source.network_delay
    return cache, network


def _materialize_observed(
    runner: Callable[[RunContext], Iterator[Solution]], ctx: TaskContext
) -> tuple[list[tuple[float, Solution]], float, ExecutionStats, list[tuple[float, float]]]:
    """Observed twin of :func:`_materialize`: also records, per yield, the
    task's cumulative (source cost, network delay) — plus one final mark
    for the close event — so :class:`PooledProducer` can replay the same
    per-delivery charge marks a :class:`LiveProducer` reads incrementally.
    The extra floats ride outside the row list; times, RNG draws and stats
    are untouched, keeping thread mode bit-identical to event mode.
    """
    rows = []
    marks = []
    for solution in runner(ctx):
        rows.append((ctx.now(), solution))
        marks.append(_transfer_mark(ctx.stats))
    marks.append(_transfer_mark(ctx.stats))
    return rows, ctx.now(), ctx.stats, marks


class PooledProducer(_ProducerBase):
    """Thread-pool producer: replays a worker's recorded stream as events.

    The recording holds *local* times on a clock that started at 0; each
    fetch translates the next local delta onto the engine timeline from
    the producer's last resume point, reproducing exactly the timestamps a
    :class:`LiveProducer` would compute.
    """

    def __init__(self, pid: int, node, slot: int, start: float, future):
        super().__init__(pid, node, slot)
        self._future = future
        self._resume = start
        self._last_local = 0.0
        self._cursor = 0
        self._rows: list[tuple[float, Solution]] | None = None
        self._end_local = 0.0
        self._stats: ExecutionStats | None = None
        self._marks: list[tuple[float, float]] | None = None

    def _ensure(self) -> None:
        if self._rows is None:
            result = self._future.result()
            if len(result) == 4:
                self._rows, self._end_local, self._stats, self._marks = result
            else:
                self._rows, self._end_local, self._stats = result

    def fetch(self) -> None:
        self._ensure()
        marks = self._marks
        if marks is not None:
            self._segment_start = self._resume
        if self._cursor < len(self._rows):
            t_local, solution = self._rows[self._cursor]
            if marks is not None:
                self._mark = marks[self._cursor]
            self._cursor += 1
            payload: object = solution
        else:
            t_local = self._end_local
            payload = _CLOSE
            if marks is not None:
                self._mark = marks[-1]
        ready = self._resume + (t_local - self._last_local)
        self._last_local = t_local
        self._resume = ready
        self.pending = (ready, payload)

    def resume_at(self, time: float) -> None:
        if time > self._resume:
            self._resume = time

    def task_stats(self) -> ExecutionStats | None:
        if self._stats is None:
            if self._future.cancelled():
                return None
            try:
                self._ensure()
            except Exception:
                # The worker's failure already surfaced through fetch() (or
                # the run was abandoned before consuming it); there are no
                # stats to fold in.
                return None
        return self._stats

    def abort(self) -> None:
        self._future.cancel()


class EventScheduler:
    """Runs one compiled plan to completion, yielding timed answers.

    ``run()`` yields ``(timestamp, solution)`` pairs in event order; the
    timestamp is the engine time at which the answer left the plan root
    (what the sequential runtime would observe at the equivalent yield).
    """

    def __init__(
        self,
        root: FedOperator,
        context: RunContext,
        *,
        pool_workers: int | None = None,
    ):
        self.context = context
        # With no run seed there is no stream to reproduce; draw fresh
        # entropy so distinct runs stay independent (mirroring default_rng).
        self.entropy = (
            context.seed
            if context.seed is not None
            else int(np.random.SeedSequence().entropy)
        )
        self._producers: list[_ProducerBase] = []
        self._next_pid = 0
        self._leaf_ids = itertools.count()
        self._outbox: deque[tuple[float, Solution]] = deque()
        self._stopped = False
        self._runner_up: float | None = None
        self._pool = ThreadPoolExecutor(max_workers=pool_workers) if pool_workers else None
        self._sink = SinkNode(self)
        self._root_node = compile_plan(self, root, self._sink, 0, Gate())

    # -- plumbing used by the nodes -----------------------------------------

    def next_leaf_id(self) -> int:
        return next(self._leaf_ids)

    def emit(self, solution: Solution) -> None:
        self._outbox.append((self.context.now(), solution))

    def request_stop(self) -> None:
        self._stopped = True

    def spawn(
        self,
        node,
        slot: int,
        runner: Callable[[RunContext], Iterator[Solution]],
        key: tuple[int, ...],
        start: float,
        gate: Gate,
    ) -> None:
        pid = self._next_pid
        self._next_pid += 1
        obs = self.context.obs
        if self._pool is None:
            ctx = TaskContext(self.context, self.entropy, key, start=start)
            producer: _ProducerBase = LiveProducer(pid, node, slot, runner, ctx)
        else:
            ctx = TaskContext(self.context, self.entropy, key, start=0.0)
            worker = _materialize if obs is None else _materialize_observed
            producer = PooledProducer(
                pid, node, slot, start, self._pool.submit(worker, runner, ctx)
            )
        if obs is not None:
            # The spawning node is a SourceNode (its `service` operator) or
            # a DependentJoinNode launching an inner block (`inner`).
            op = getattr(node, "service", None)
            if op is None:
                op = node.inner
            obs.causal.record_spawn(pid, key, op.source_id, op.label(), start, id(op))
        # A producer spawned inside a paused scope (e.g. an inner block of
        # a nested, currently-paused dependent join) inherits the scope's
        # current pause depth.
        producer.pause_depth = self._gate_depth(gate)
        self._producers.append(producer)
        gate.producers.append(producer)

    @staticmethod
    def _gate_depth(gate: Gate) -> int:
        # All producers of one gate share a pause depth; read it off any
        # sibling, or default to 0 for a fresh scope.
        for producer in gate.producers:
            return producer.pause_depth
        return 0

    # -- the event loop ------------------------------------------------------

    def run(self) -> Iterator[tuple[float, Solution]]:
        obs = self.context.obs
        recorder = obs.causal if obs is not None else None
        try:
            self._root_node.start(self.context.now())
            clock = self.context.clock
            while not (self._sink.closed or self._stopped):
                producer = self._next_deliverable()
                if producer is None:  # pragma: no cover - defensive
                    raise RuntimeError("event scheduler stalled: no deliverable event")
                time, payload = producer.pending
                producer.pending = None
                if recorder is not None:
                    mark = producer._mark
                    recorder.record_delivery(
                        producer.pid,
                        "close" if payload is _CLOSE else "answer",
                        time,
                        self.context.now(),
                        producer._segment_start,
                        mark[0],
                        mark[1],
                        self._runner_up,
                    )
                clock.advance_to(time)
                if payload is _CLOSE:
                    producer.done = True
                    stats = producer.task_stats()
                    if stats is not None:
                        self.context.stats.absorb_transfer(stats)
                    producer.node.close(producer.slot)
                else:
                    producer.node.push(producer.slot, payload)
                    producer.awaiting_resume = True
                if (
                    producer.awaiting_resume
                    and not producer.done
                    and producer.pause_depth == 0
                ):
                    producer.awaiting_resume = False
                    producer.resume_at(self.context.now())
                    producer.needs_fetch = True
                while self._outbox:
                    yield self._outbox.popleft()
        finally:
            self._shutdown()

    def _next_deliverable(self) -> _ProducerBase | None:
        best: _ProducerBase | None = None
        best_key: tuple[float, int] | None = None
        runner_up: tuple[float, int] | None = None
        track = self.context.obs is not None
        for producer in self._producers:
            if producer.done or producer.pause_depth:
                continue
            if producer.needs_fetch:
                producer.fetch()
                producer.needs_fetch = False
            if producer.pending is None:
                continue
            key = (producer.pending[0], producer.pid)
            if best_key is None or key < best_key:
                if track:
                    runner_up = best_key
                best, best_key = producer, key
            elif track and (runner_up is None or key < runner_up):
                runner_up = key
        if track:
            # Second-best pending time: the critical-path slack analysis
            # reads how much earlier the winner could have been without
            # changing which event was delivered next.
            self._runner_up = runner_up[0] if runner_up is not None else None
        return best

    def _shutdown(self) -> None:
        # Abandoned producers (LIMIT satisfied, consumer walked away) still
        # fold the transfer work they actually performed into the run stats;
        # iteration in pid order keeps the merge deterministic.
        for producer in self._producers:
            if not producer.done:
                producer.abort()
                stats = producer.task_stats()
                if stats is not None:
                    self.context.stats.absorb_transfer(stats)
                producer.done = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
