"""Producer-task state: private virtual clocks, RNG substreams, stats.

Every :class:`~repro.federation.operators.ServiceNode` (and every dependent
join's restricted sub-query) runs as its own *producer task* under the
event scheduler.  A task owns three things the sequential runtime shares
globally:

* a **clock** — the task's virtual timeline, so two sources' network
  delays accrue in parallel instead of being summed on one clock;
* an **RNG substream** — derived from ``(run seed, task key)``, so a
  task's delay samples depend only on the run seed and the task's
  deterministic identity (plan position, block number), never on thread
  scheduling or interleaving.  This is what keeps thread-pool executions
  bit-reproducible;
* a **stats** object — private transfer counters the scheduler folds into
  the run's :class:`~repro.federation.answers.ExecutionStats` when the
  task's stream closes, so pool workers never race on shared counters.
"""

from __future__ import annotations

import numpy as np

from ..federation.answers import ExecutionStats, RunContext
from ..network.clock import VirtualClock


def task_rng(entropy: int, key: tuple[int, ...]) -> np.random.Generator:
    """The independent RNG stream of the task identified by *key*.

    The first leaf task deliberately reuses the run's root stream (the one
    ``RunContext.rng`` was seeded with): a single-producer plan then draws
    exactly the delay samples the sequential runtime would, making its
    virtual times bit-identical across runtimes.  The engine side of the
    event scheduler never samples from the root stream, so the aliasing
    cannot collide for multi-producer plans.
    """
    if key == (0,):
        return np.random.default_rng(entropy)
    return np.random.default_rng((entropy, *key))


class TaskContext(RunContext):
    """A producer task's private view of one query run.

    Aliases the parent run's network, cost model, and cache registry, but
    owns its clock, RNG substream, and stats (see module docstring).  The
    charging API is inherited unchanged from :class:`RunContext`, so the
    wrappers cannot tell which runtime is driving them.
    """

    def __init__(
        self,
        parent: RunContext,
        entropy: int,
        key: tuple[int, ...],
        start: float = 0.0,
    ):
        # Deliberately not calling RunContext.__init__: the shared fields
        # must alias the parent's objects, not fresh ones.  The cache
        # registry is aliased as-is: the LRU caches serialize access
        # internally, so thread-pool producers share them safely.
        self.network = parent.network
        self.cost_model = parent.cost_model
        self.seed = parent.seed
        self.caches = parent.caches
        self.clock = VirtualClock(start)
        self.rng = task_rng(entropy, key)
        self.stats = ExecutionStats()
        #: The run's observation is shared: producer tasks emit wrapper
        #: spans into the same (thread-safe) bus, stamped with the task's
        #: own virtual clock and keyed by its deterministic identity.
        self.obs = parent.obs
        #: The deterministic task identity the RNG stream was derived from.
        self.key = key
        #: The run's execution mode and batch size apply to every producer
        #: task; the delay buffer is private because the RNG substream is.
        self.exec_mode = parent.exec_mode
        self.batch_size = parent.batch_size
        self._delay_buffer = []
        self._delay_cursor = 0
