"""Push-mode operator nodes driven by the event scheduler.

Each node mirrors one pull-based operator from
:mod:`repro.federation.operators` — same charging, same output multiset —
but receives solutions *pushed* into it as timed events instead of pulling
them from a child iterator.  The scheduler delivers one producer event at
a time on the engine timeline; the resulting cascade through these nodes
charges engine work to the engine clock exactly as the sequential operator
chain would, so single-producer plans are bit-identical between runtimes
while sibling producers (two sources under a join or union) overlap their
delays.

A node's ``slot`` is its position in its parent (0 for unary children,
0/1 for join sides, the branch index for unions).  ``push(slot, solution)``
delivers one solution arriving on that slot; ``close(slot)`` signals that
the slot's input stream ended.  ``start(time)`` arms the subtree: it spawns
producer tasks for the leaves that should begin at *time* (left joins defer
their left subtree, dependent joins spawn inner producers per block).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..federation.answers import ChargeBatch, Solution
from ..federation.operators import (
    DependentJoin,
    Distinct,
    EngineFilter,
    FedOperator,
    LeftJoin,
    Limit,
    OrderBy,
    Project,
    ServiceNode,
    SymmetricHashJoin,
    Union,
    _merge,
    solution_identity,
    sort_solutions,
)
from ..sparql.expressions import compile_holds, holds

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import EventScheduler, Gate


class Node:
    """Base class of push-mode nodes."""

    __slots__ = ("sched", "context", "parent", "slot")

    def __init__(self, sched: "EventScheduler", parent: "Node", slot: int):
        self.sched = sched
        self.context = sched.context
        self.parent = parent
        self.slot = slot

    def start(self, time: float) -> None:
        raise NotImplementedError

    def push(self, slot: int, solution: Solution) -> None:
        raise NotImplementedError

    def close(self, slot: int) -> None:
        raise NotImplementedError


class TapNode(Node):
    """Transparent observation tap between a node and its real parent.

    Inserted by :func:`compile_plan` only when the run is observed
    (``context.obs`` is set): the tap records each solution leaving the
    child — engine time and count, onto the child operator's profile —
    and forwards pushes/closes verbatim, slot included.  Unobserved runs
    compile exactly the node network PR 3 shipped, so observation is
    zero-cost-when-off; and because taps live outside the plan's operator
    objects, cached plans are never mutated by being observed.
    """

    __slots__ = ("profile",)

    def __init__(self, sched: "EventScheduler", parent: Node, slot: int, profile):
        super().__init__(sched, parent, slot)
        self.profile = profile

    def start(self, time: float) -> None:  # pragma: no cover - never a child
        raise RuntimeError("taps are not startable")

    def push(self, slot: int, solution: Solution) -> None:
        self.profile.record(self.context.now())
        self.parent.push(slot, solution)

    def close(self, slot: int) -> None:
        self.parent.close(slot)


class SinkNode(Node):
    """Root consumer: stamps each answer with the engine time it became
    available and hands it to the scheduler's outbox."""

    __slots__ = ("closed",)

    def __init__(self, sched: "EventScheduler"):
        super().__init__(sched, parent=None, slot=0)
        self.closed = False

    def start(self, time: float) -> None:  # pragma: no cover - never a child
        raise RuntimeError("the sink is not startable")

    def push(self, slot: int, solution: Solution) -> None:
        self.sched.emit(solution)

    def close(self, slot: int) -> None:
        self.closed = True


class SourceNode(Node):
    """Leaf: one wrapper sub-query running as a producer task.

    The producer runs the raw wrapper stream on its own timeline; the
    service's engine-side filters are evaluated here, on the engine clock,
    mirroring ``ServiceNode._filtered``.
    """

    __slots__ = ("service", "filters", "_tests", "gate", "leaf_id")

    def __init__(
        self,
        sched: "EventScheduler",
        parent: Node,
        slot: int,
        service: ServiceNode,
        gate: "Gate",
    ):
        super().__init__(sched, parent, slot)
        self.service = service
        self.filters = list(service.engine_filters)
        self._tests = [compile_holds(f.expression) for f in self.filters]
        self.gate = gate
        self.leaf_id = sched.next_leaf_id()

    def start(self, time: float) -> None:
        self.sched.spawn(
            node=self,
            slot=0,
            runner=self.service.runner,
            key=(self.leaf_id,),
            start=time,
            gate=self.gate,
        )

    def push(self, slot: int, solution: Solution) -> None:
        if self.filters:
            cost = self.context.cost_model
            self.context.charge_engine(cost.engine_filter_eval * len(self.filters))
            if not all(test(solution) for test in self._tests):
                return
        self.parent.push(self.slot, solution)

    def close(self, slot: int) -> None:
        self.parent.close(self.slot)


class JoinNode(Node):
    """Symmetric hash join fed by events from both sides.

    Arrival order is whatever the event timeline dictates; the output
    multiset is arrival-order-invariant because each joinable pair is
    emitted exactly once — by whichever side arrives second.
    """

    def __init__(
        self, sched: "EventScheduler", parent: Node, slot: int, op: SymmetricHashJoin
    ):
        super().__init__(sched, parent, slot)
        self.key_of = op._key_function()
        self.tables: tuple[dict, dict] = ({}, {})
        self.open = [True, True]
        cost = self.context.cost_model
        self.charges = ChargeBatch(self.context)
        self.insert_probe = cost.engine_hash_insert + cost.engine_hash_probe
        self.output_cost = cost.engine_join_output_row
        self.left: Node | None = None
        self.right: Node | None = None

    def start(self, time: float) -> None:
        self.left.start(time)
        self.right.start(time)

    def push(self, slot: int, solution: Solution) -> None:
        key = self.key_of(solution)
        if key is None:
            return
        self.charges.add(self.insert_probe)
        self.tables[slot].setdefault(key, []).append(solution)
        for candidate in self.tables[1 - slot].get(key, ()):
            if slot == 0:
                merged = _merge(solution, candidate)
            else:
                merged = _merge(candidate, solution)
            if merged is not None:
                self.charges.add(self.output_cost)
                self.charges.flush()
                self.parent.push(self.slot, merged)

    def close(self, slot: int) -> None:
        self.open[slot] = False
        if not (self.open[0] or self.open[1]):
            self.charges.flush()
            self.parent.close(self.slot)


class LeftJoinNode(Node):
    """OPTIONAL: materializes the right side, then streams the left.

    Mirrors the sequential operator's phasing: the left subtree only
    *starts* once the right side closed, so the probe-side charging (and
    any left-source delays) accrue after the build, exactly as the
    pull-based operator pays them.
    """

    def __init__(self, sched: "EventScheduler", parent: Node, slot: int, op: LeftJoin):
        super().__init__(sched, parent, slot)
        self.names = op.join_variables
        self.table: dict[tuple, list[Solution]] = {}
        self.left_child: Node | None = None
        self.right_child: Node | None = None

    def start(self, time: float) -> None:
        self.right_child.start(time)

    def push(self, slot: int, solution: Solution) -> None:
        cost = self.context.cost_model
        key = tuple(solution.get(name) for name in self.names)
        if slot == 1:  # build side (the OPTIONAL body)
            self.context.charge_engine(cost.engine_hash_insert)
            self.table.setdefault(key, []).append(solution)
            return
        self.context.charge_engine(cost.engine_hash_probe)
        matched = False
        for candidate in self.table.get(key, ()):
            merged = _merge(solution, candidate)
            if merged is not None:
                matched = True
                self.context.charge_engine(cost.engine_join_output_row)
                self.parent.push(self.slot, merged)
        if not matched:
            self.parent.push(self.slot, solution)

    def close(self, slot: int) -> None:
        if slot == 1:
            self.left_child.start(self.context.now())
        else:
            self.parent.close(self.slot)


class DependentJoinNode(Node):
    """ANAPSID-style dependent (bound) join under event scheduling.

    The outer subtree streams in; solutions binding the join variable are
    buffered into blocks.  When a block fills (or the outer input closes
    with a partial block), the outer subtree's producers are *paused* via
    its gate and a fresh producer task is spawned for the restricted inner
    sub-query.  When that inner stream closes, a full block unpauses the
    outer side for the next block; a final block closes the operator.
    Pausing makes the block phasing identical to the sequential operator:
    outer transfer for block N+1 never overlaps inner transfer for block N.
    """

    OUTER = 0
    INNER = 1

    def __init__(
        self,
        sched: "EventScheduler",
        parent: Node,
        slot: int,
        op: DependentJoin,
        outer_gate: "Gate",
        spawn_gate: "Gate",
    ):
        super().__init__(sched, parent, slot)
        self.inner = op.inner
        self.inner_filters = list(op.inner.engine_filters)
        self._inner_tests = [compile_holds(f.expression) for f in self.inner_filters]
        self.join_variable = op.join_variable
        self.block_size = op.block_size
        self.outer_gate = outer_gate
        #: Gate governing the *inner* producers: the node's own compile-time
        #: gate, so an ancestor dependent join pausing this subtree also
        #: pauses in-flight inner blocks.
        self.spawn_gate = spawn_gate
        self.inner_leaf_id = sched.next_leaf_id()
        self.block: list[Solution] = []
        self.by_term: dict = {}
        self.block_seq = 0
        self.final_block = False
        self.outer_child: Node | None = None

    def start(self, time: float) -> None:
        self.outer_child.start(time)

    def push(self, slot: int, solution: Solution) -> None:
        if slot == self.OUTER:
            if self.join_variable in solution:
                self.block.append(solution)
                if len(self.block) >= self.block_size:
                    self._begin_block(final=False)
            return
        self._on_inner(solution)

    def close(self, slot: int) -> None:
        if slot == self.OUTER:
            # Mirrors the sequential loop: a pending partial block is the
            # last one processed; an empty block ends the operator.
            if self.block:
                self._begin_block(final=True)
            else:
                self.parent.close(self.slot)
            return
        self._end_inner()

    def _begin_block(self, final: bool) -> None:
        self.final_block = final
        self.outer_gate.pause()
        cost = self.context.cost_model
        terms = []
        seen: set = set()
        for solution in self.block:
            term = solution[self.join_variable]
            if term not in seen:
                seen.add(term)
                terms.append(term)
        self.by_term = {}
        for solution in self.block:
            # Per-tuple, not one multiplied charge: keeps the float sum
            # bit-identical to the sequential operator's.
            self.context.charge_engine(cost.engine_hash_insert)
            self.by_term.setdefault(solution[self.join_variable], []).append(solution)
        self.block = []
        self.block_seq += 1
        service = self.inner
        if service.restricted_runner is None:  # pragma: no cover - planner invariant
            raise RuntimeError(f"service {service.source_id!r} is not restrictable")
        variable = self.join_variable

        def runner(ctx, _run=service.restricted_runner, _v=variable, _t=terms):
            return _run(ctx, _v, _t)

        self.sched.spawn(
            node=self,
            slot=self.INNER,
            runner=runner,
            key=(self.inner_leaf_id, self.block_seq),
            start=self.context.now(),
            gate=self.spawn_gate,
        )

    def _on_inner(self, solution: Solution) -> None:
        cost = self.context.cost_model
        if self.inner_filters:
            self.context.charge_engine(
                cost.engine_filter_eval * len(self.inner_filters)
            )
            if not all(test(solution) for test in self._inner_tests):
                return
        self.context.charge_engine(cost.engine_hash_probe)
        for outer_solution in self.by_term.get(solution[self.join_variable], ()):
            merged = _merge(outer_solution, solution)
            if merged is not None:
                self.context.charge_engine(cost.engine_join_output_row)
                self.parent.push(self.slot, merged)

    def _end_inner(self) -> None:
        self.by_term = {}
        if self.final_block:
            self.parent.close(self.slot)
        else:
            self.outer_gate.unpause(self.sched)


class FilterNode(Node):
    """Engine-level FILTER (mirrors :class:`EngineFilter`)."""

    def __init__(self, sched: "EventScheduler", parent: Node, slot: int, op: EngineFilter):
        super().__init__(sched, parent, slot)
        self.filters = op.filters
        self._tests = [compile_holds(f.expression) for f in op.filters]
        self.child: Node | None = None

    def start(self, time: float) -> None:
        self.child.start(time)

    def push(self, slot: int, solution: Solution) -> None:
        cost = self.context.cost_model
        self.context.charge_engine(cost.engine_filter_eval * len(self.filters))
        if all(test(solution) for test in self._tests):
            self.parent.push(self.slot, solution)

    def close(self, slot: int) -> None:
        self.parent.close(self.slot)


class ProjectNode(Node):
    def __init__(self, sched: "EventScheduler", parent: Node, slot: int, op: Project):
        super().__init__(sched, parent, slot)
        self.names = op.variables
        self.child: Node | None = None

    def start(self, time: float) -> None:
        self.child.start(time)

    def push(self, slot: int, solution: Solution) -> None:
        self.context.charge_engine(self.context.cost_model.engine_project_row)
        names = self.names
        self.parent.push(
            self.slot, {name: solution[name] for name in names if name in solution}
        )

    def close(self, slot: int) -> None:
        self.parent.close(self.slot)


class DistinctNode(Node):
    def __init__(self, sched: "EventScheduler", parent: Node, slot: int, op: Distinct):
        super().__init__(sched, parent, slot)
        self.seen: set[tuple] = set()
        self.child: Node | None = None

    def start(self, time: float) -> None:
        self.child.start(time)

    def push(self, slot: int, solution: Solution) -> None:
        self.context.charge_engine(self.context.cost_model.engine_distinct_row)
        key = solution_identity(solution)
        if key not in self.seen:
            self.seen.add(key)
            self.parent.push(self.slot, solution)

    def close(self, slot: int) -> None:
        self.parent.close(self.slot)


class LimitNode(Node):
    """LIMIT/OFFSET; mirrors the sequential operator's stop condition.

    The pull-based :class:`Limit` only stops when the (limit+1)-th
    non-skipped solution arrives (it never peeks ahead), so this node does
    the same: it requests a scheduler stop on the first over-limit arrival
    rather than when the limit is reached — keeping execution times
    identical between runtimes.
    """

    def __init__(self, sched: "EventScheduler", parent: Node, slot: int, op: Limit):
        super().__init__(sched, parent, slot)
        self.limit = op.limit
        self.offset = op.offset
        self.skipped = 0
        self.produced = 0
        self.child: Node | None = None

    def start(self, time: float) -> None:
        self.child.start(time)

    def push(self, slot: int, solution: Solution) -> None:
        if self.offset and self.skipped < self.offset:
            self.skipped += 1
            return
        if self.limit is not None and self.produced >= self.limit:
            self.sched.request_stop()
            return
        self.produced += 1
        self.parent.push(self.slot, solution)

    def close(self, slot: int) -> None:
        self.parent.close(self.slot)


class OrderByNode(Node):
    """Blocking sort: buffers until close, then emits in sorted order."""

    def __init__(self, sched: "EventScheduler", parent: Node, slot: int, op: OrderBy):
        super().__init__(sched, parent, slot)
        self.conditions = op.conditions
        self.solutions: list[Solution] = []
        self.child: Node | None = None

    def start(self, time: float) -> None:
        self.child.start(time)

    def push(self, slot: int, solution: Solution) -> None:
        self.solutions.append(solution)

    def close(self, slot: int) -> None:
        cost = self.context.cost_model
        self.context.charge_engine(cost.engine_sort_row * len(self.solutions))
        for solution in sort_solutions(self.solutions, self.conditions):
            self.parent.push(self.slot, solution)
        self.solutions = []
        self.parent.close(self.slot)


class UnionNode(Node):
    """Union of N inputs; order is whatever the event timeline delivers."""

    def __init__(self, sched: "EventScheduler", parent: Node, slot: int, op: Union):
        super().__init__(sched, parent, slot)
        self.open_count = len(op.inputs)
        self.branches: list[Node] = []

    def start(self, time: float) -> None:
        for branch in self.branches:
            branch.start(time)

    def push(self, slot: int, solution: Solution) -> None:
        self.parent.push(self.slot, solution)

    def close(self, slot: int) -> None:
        self.open_count -= 1
        if self.open_count == 0:
            self.parent.close(self.slot)


def compile_plan(
    sched: "EventScheduler",
    op: FedOperator,
    parent: Node,
    slot: int,
    gate: "Gate",
) -> Node:
    """Compile a pull-based operator tree into a push-mode node network.

    The traversal order is deterministic (pre-order, left before right),
    which is what pins leaf ids — and therefore every producer's RNG
    substream — to the plan shape rather than to execution order.

    When the run is observed, a :class:`TapNode` is threaded between each
    operator's node and its parent so per-operator output rows are counted
    on the engine timeline — the push-mode equivalent of the sequential
    instrumenter's ``execute`` wrapper, with identical cardinalities.
    """
    from .scheduler import Gate  # local import: scheduler imports this module

    obs = sched.context.obs
    if obs is not None:
        profile = obs.profile_for(op)
        if profile is not None:
            parent = TapNode(sched, parent, slot, profile)

    if isinstance(op, ServiceNode):
        return SourceNode(sched, parent, slot, op, gate)
    if isinstance(op, SymmetricHashJoin):
        node = JoinNode(sched, parent, slot, op)
        node.left = compile_plan(sched, op.left, node, 0, gate)
        node.right = compile_plan(sched, op.right, node, 1, gate)
        return node
    if isinstance(op, LeftJoin):
        node = LeftJoinNode(sched, parent, slot, op)
        node.left_child = compile_plan(sched, op.left, node, 0, gate)
        node.right_child = compile_plan(sched, op.right, node, 1, gate)
        return node
    if isinstance(op, DependentJoin):
        outer_gate = Gate(parent=gate)
        node = DependentJoinNode(
            sched, parent, slot, op, outer_gate=outer_gate, spawn_gate=gate
        )
        node.outer_child = compile_plan(
            sched, op.outer, node, DependentJoinNode.OUTER, outer_gate
        )
        return node
    if isinstance(op, EngineFilter):
        node = FilterNode(sched, parent, slot, op)
        node.child = compile_plan(sched, op.child, node, 0, gate)
        return node
    if isinstance(op, Project):
        node = ProjectNode(sched, parent, slot, op)
        node.child = compile_plan(sched, op.child, node, 0, gate)
        return node
    if isinstance(op, Distinct):
        node = DistinctNode(sched, parent, slot, op)
        node.child = compile_plan(sched, op.child, node, 0, gate)
        return node
    if isinstance(op, Limit):
        node = LimitNode(sched, parent, slot, op)
        node.child = compile_plan(sched, op.child, node, 0, gate)
        return node
    if isinstance(op, OrderBy):
        node = OrderByNode(sched, parent, slot, op)
        node.child = compile_plan(sched, op.child, node, 0, gate)
        return node
    if isinstance(op, Union):
        node = UnionNode(sched, parent, slot, op)
        node.branches = [
            compile_plan(sched, branch, node, position, gate)
            for position, branch in enumerate(op.inputs)
        ]
        return node
    raise TypeError(f"no push-mode node for operator {type(op).__name__}")
