"""The Semantic Data Lake: heterogeneous sources plus their descriptions.

A lake keeps every data set in its original data model (relational databases
and native RDF graphs here), annotated with semantics: RDF molecule
templates for source selection plus, for relational members, R2RML-style
mappings and the physical-design catalog the paper's heuristics consult.
"""

from __future__ import annotations

from typing import Iterator

from ..core.catalog import PhysicalDesignCatalog
from ..exceptions import CatalogError
from ..federation.endpoints import DataSource, RDFSource, RelationalSource
from ..mapping.normalizer import normalize_graph
from ..mapping.rml import SourceMapping
from ..rdf.graph import Graph
from ..rdf.molecules import MoleculeCatalog
from ..relational.database import Database


class SemanticDataLake:
    """A collection of heterogeneous, semantically annotated data sources."""

    def __init__(self, name: str = "lake"):
        self.name = name
        self._sources: dict[str, DataSource] = {}
        self._molecules: MoleculeCatalog | None = None
        self.physical_catalog = PhysicalDesignCatalog()

    # -- registration -----------------------------------------------------------

    def add_relational_source(
        self, source_id: str, database: Database, mapping: SourceMapping
    ) -> RelationalSource:
        """Register a relational member (one 'MySQL container')."""
        if source_id in self._sources:
            raise CatalogError(f"source {source_id!r} already registered")
        source = RelationalSource(source_id=source_id, database=database, mapping=mapping)
        self._sources[source_id] = source
        self.physical_catalog.register_database(source_id, database)
        self._molecules = None
        return source

    def add_rdf_source(self, source_id: str, graph: Graph) -> RDFSource:
        """Register a native RDF member."""
        if source_id in self._sources:
            raise CatalogError(f"source {source_id!r} already registered")
        source = RDFSource(source_id=source_id, graph=graph)
        self._sources[source_id] = source
        self._molecules = None
        return source

    def add_graph_as_relational(self, source_id: str, graph: Graph) -> RelationalSource:
        """Normalize an RDF graph to 3NF and register the result.

        This reproduces the paper's data preparation: RDF data sets are
        transformed into relational tables, normalized to 3NF, and loaded
        into a dedicated database with primary-key indexes.
        """
        database, mapping, __ = normalize_graph(source_id, graph)
        return self.add_relational_source(source_id, database, mapping)

    # -- catalog access --------------------------------------------------------

    def source(self, source_id: str) -> DataSource:
        if source_id not in self._sources:
            raise CatalogError(f"no source {source_id!r} in lake {self.name!r}")
        return self._sources[source_id]

    @property
    def source_ids(self) -> list[str]:
        return sorted(self._sources)

    def sources(self) -> Iterator[DataSource]:
        for source_id in self.source_ids:
            yield self._sources[source_id]

    def relational_sources(self) -> Iterator[RelationalSource]:
        for source in self.sources():
            if isinstance(source, RelationalSource):
                yield source

    def rdf_sources(self) -> Iterator[RDFSource]:
        for source in self.sources():
            if isinstance(source, RDFSource):
                yield source

    @property
    def molecules(self) -> MoleculeCatalog:
        """The union of every source's RDF molecule templates (lazy)."""
        if self._molecules is None:
            catalog = MoleculeCatalog()
            for source in self.sources():
                catalog.add_all(source.molecule_templates())
            self._molecules = catalog
        return self._molecules

    def catalog_version(self) -> tuple:
        """The lake-wide data/physical-design version vector.

        One ``(source_id, version)`` pair per member, where the version is
        the relational :attr:`~repro.relational.database.Database.data_version`
        or the RDF :attr:`~repro.rdf.graph.Graph.version`.  Any INSERT,
        DELETE, CREATE INDEX or DROP INDEX on any member changes the
        vector, so plan-cache keys embedding it can never serve a plan
        built against a stale physical design.
        """
        parts = []
        for source_id in self.source_ids:
            source = self._sources[source_id]
            if isinstance(source, RelationalSource):
                parts.append((source_id, source.database.data_version))
            else:
                assert isinstance(source, RDFSource)
                parts.append((source_id, source.graph.version))
        return tuple(parts)

    def invalidate_descriptions(self) -> None:
        """Drop cached molecule templates (after data changes)."""
        self._molecules = None
        for source in self.rdf_sources():
            source._molecules = None

    def create_index(self, source_id: str, table: str, columns: list[str], **kwargs) -> None:
        """Create an index on a relational member and refresh the catalog."""
        source = self.source(source_id)
        if not isinstance(source, RelationalSource):
            raise CatalogError(f"source {source_id!r} is not relational")
        source.database.create_index(table, columns, **kwargs)
        self.physical_catalog.refresh(source_id, source.database)

    def drop_index(self, source_id: str, table: str, index_name: str) -> None:
        source = self.source(source_id)
        if not isinstance(source, RelationalSource):
            raise CatalogError(f"source {source_id!r} is not relational")
        source.database.drop_index(table, index_name)
        self.physical_catalog.refresh(source_id, source.database)

    def describe(self) -> str:
        lines = [f"SemanticDataLake {self.name!r}: {len(self._sources)} sources"]
        for source in self.sources():
            lines.append(f"  {source.source_id} [{source.kind}]")
        return "\n".join(lines)
