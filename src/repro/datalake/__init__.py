"""The Semantic Data Lake container and its persistence."""

from .lake import SemanticDataLake
from .persistence import load_lake, save_lake

__all__ = ["SemanticDataLake", "load_lake", "save_lake"]
