"""Save and load a Semantic Data Lake on disk.

Layout::

    <root>/
      manifest.json                     # sources + kinds
      <source>/data.sql                 # relational members: schema + rows
      <source>/mapping.json             # their R2RML-style mappings
      <source>/data.nt                  # native RDF members

The experiment data the paper publishes alongside its code corresponds to
this directory: everything needed to re-run the queries without the
generator.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import CatalogError
from ..mapping.rml import ClassMapping, PredicateMapping, SourceMapping
from ..rdf.graph import Graph
from ..rdf.ntriples import parse_into, serialize
from ..rdf.terms import IRI
from ..relational.dump import dump_sql, load_sql
from .lake import SemanticDataLake
from ..federation.endpoints import RDFSource, RelationalSource


def _mapping_to_dict(mapping: SourceMapping) -> dict:
    return {
        "source_id": mapping.source_id,
        "classes": [
            {
                "class_iri": class_mapping.class_iri.value,
                "table": class_mapping.table,
                "subject_column": class_mapping.subject_column,
                "subject_template": class_mapping.subject_template,
                "predicates": [
                    {
                        "predicate": predicate_mapping.predicate.value,
                        "kind": predicate_mapping.kind,
                        "column": predicate_mapping.column,
                        "table": predicate_mapping.table,
                        "key_column": predicate_mapping.key_column,
                        "value_column": predicate_mapping.value_column,
                        "object_template": predicate_mapping.object_template,
                        "datatype": predicate_mapping.datatype,
                    }
                    for predicate_mapping in class_mapping.predicates.values()
                ],
            }
            for class_mapping in mapping.classes.values()
        ],
    }


def _mapping_from_dict(payload: dict) -> SourceMapping:
    mapping = SourceMapping(source_id=payload["source_id"])
    for class_payload in payload["classes"]:
        predicates = {}
        for predicate_payload in class_payload["predicates"]:
            predicate = IRI(predicate_payload["predicate"])
            predicates[predicate] = PredicateMapping(
                predicate=predicate,
                kind=predicate_payload["kind"],
                column=predicate_payload["column"],
                table=predicate_payload["table"],
                key_column=predicate_payload["key_column"],
                value_column=predicate_payload["value_column"],
                object_template=predicate_payload["object_template"],
                datatype=predicate_payload["datatype"],
            )
        mapping.add(
            ClassMapping(
                class_iri=IRI(class_payload["class_iri"]),
                source_id=payload["source_id"],
                table=class_payload["table"],
                subject_column=class_payload["subject_column"],
                subject_template=class_payload["subject_template"],
                predicates=predicates,
            )
        )
    return mapping


def save_lake(lake: SemanticDataLake, root: str | Path) -> Path:
    """Persist every source of *lake* under *root*; returns the root path."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    manifest = {"name": lake.name, "sources": []}
    for source in lake.sources():
        source_dir = root / source.source_id
        source_dir.mkdir(exist_ok=True)
        if isinstance(source, RelationalSource):
            (source_dir / "data.sql").write_text(dump_sql(source.database))
            (source_dir / "mapping.json").write_text(
                json.dumps(_mapping_to_dict(source.mapping), indent=2)
            )
            manifest["sources"].append({"id": source.source_id, "kind": "rdb"})
        elif isinstance(source, RDFSource):
            (source_dir / "data.nt").write_text(serialize(source.graph))
            manifest["sources"].append({"id": source.source_id, "kind": "rdf"})
    (root / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return root


def load_lake(root: str | Path) -> SemanticDataLake:
    """Rebuild a lake saved with :func:`save_lake`."""
    root = Path(root)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise CatalogError(f"no lake manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    lake = SemanticDataLake(manifest.get("name", "lake"))
    for entry in manifest["sources"]:
        source_id = entry["id"]
        source_dir = root / source_id
        if entry["kind"] == "rdb":
            database = load_sql((source_dir / "data.sql").read_text(), name=source_id)
            mapping = _mapping_from_dict(
                json.loads((source_dir / "mapping.json").read_text())
            )
            lake.add_relational_source(source_id, database, mapping)
        elif entry["kind"] == "rdf":
            graph = Graph(source_id)
            parse_into(graph, (source_dir / "data.nt").read_text())
            lake.add_rdf_source(source_id, graph)
        else:  # pragma: no cover - forward compatibility guard
            raise CatalogError(f"unknown source kind {entry['kind']!r}")
    return lake
