"""The calibration feedback loop: observe, ingest, replan.

The adaptive-re-optimization groundwork: run a query observed, measure how
wrong the planner's cardinality estimates were (max q-error over the
plan's operators), and — when they were wrong enough — feed the observed
actuals back into the engine's :class:`~repro.optimizer.ObservedStatistics`
store.  The store's revision is part of cost-policy plan-cache keys, so
the very next planning pass of the same (or an overlapping) query
enumerates with ground-truth cardinalities and may pick a different,
cheaper join order.  Deterministic end to end: same lake + seed + query →
same observation → same ingest → same replanned tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .statistics import ingestible_operators

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import FederatedEngine

#: Estimates off by 2x or more trigger an ingest by default.
DEFAULT_Q_ERROR_THRESHOLD = 2.0


@dataclass
class FeedbackResult:
    """One observed execution plus what the loop did about it."""

    answers: list = field(default_factory=list)
    execution_time: float = 0.0
    max_q_error: float = 1.0
    ingested: int = 0
    replanned: bool = False

    def describe(self) -> str:
        if self.replanned:
            action = (
                f"ingested {self.ingested} observed cardinalities "
                f"(next plan adapts)"
            )
        elif self.ingested:
            action = (
                f"re-ingested {self.ingested} cardinalities (store unchanged)"
            )
        else:
            action = "estimates within threshold; no ingest"
        return (
            f"{len(self.answers)} answers in {self.execution_time:.4f}s virtual, "
            f"max q-error {self.max_q_error:.2f} — {action}"
        )


def run_with_feedback(
    engine: "FederatedEngine",
    query: str,
    seed: int | None = None,
    runtime: str | None = None,
    q_error_threshold: float = DEFAULT_Q_ERROR_THRESHOLD,
    journal=None,
) -> FeedbackResult:
    """Execute *query* observed; ingest actuals when estimates missed.

    Returns a :class:`FeedbackResult`; ``replanned`` means observed stats
    were ingested and subsequent plans of queries sharing this plan's
    units will re-enumerate against them (cost policies only — heuristic
    policies never consult the store, so this is a no-op for them beyond
    the recorded measurements).

    *journal* (an :class:`~repro.obs.journal.EventJournal`) receives one
    ``replan`` event per loop pass, stamped with the run's virtual
    execution time — the service's operational record of the adaptive
    loop's decisions.
    """
    answers, stats, observation = engine.observe(query, seed=seed, runtime=runtime)
    # q-error is measured over the operators an ingest can actually
    # correct (see ingestible_operators): a dependent-join inner with a
    # wrong estimate must not trigger replans forever, since its observed
    # counts are binding-restricted and never enter the store.
    max_q_error = 1.0
    for operator in ingestible_operators(observation.plan):
        profile = observation.profile_for(operator)
        q = profile.q_error if profile is not None else None
        if q is not None and q > max_q_error:
            max_q_error = q
    result = FeedbackResult(
        answers=answers,
        execution_time=stats.execution_time,
        max_q_error=max_q_error,
    )
    if max_q_error >= q_error_threshold:
        revision_before = engine.observed_stats.revision
        result.ingested = engine.ingest_observation(observation)
        result.replanned = engine.observed_stats.revision > revision_before
    if journal is not None:
        import hashlib

        journal.append(
            "replan",
            stats.execution_time,
            query=hashlib.sha256(query.encode("utf-8")).hexdigest()[:16],
            max_q_error=round(max_q_error, 6),
            ingested=result.ingested,
            replanned=result.replanned,
            revision=engine.observed_stats.revision,
        )
    return result
