"""The cost-based optimizer's statistics subsystem.

Two stores feed the planner:

* :class:`CatalogStatistics` — a deterministic snapshot of the lake's data:
  per-table row counts, per-column NDV/null/mode summaries and index flags
  for every relational source, and per-class/per-predicate cardinalities
  from the RDF molecule templates.  Collected by one pass over the lake
  (every collector the relational engine already uses is deterministic),
  keyed by the lake's catalog-version vector so a mutated lake is never
  served stale numbers.

* :class:`ObservedStatistics` — actual cardinalities harvested from
  executed plans.  The planner stamps every plan unit and join with a
  placement/order-invariant :mod:`~repro.core.statskeys` signature;
  ingesting a finished :class:`~repro.obs.observation.RunObservation`
  records each stamped operator's observed ``rows_out`` under its
  signature.  Later plans of the same (or an overlapping) query look those
  up and prefer them over catalog estimates — the feedback loop that lets a
  misestimated query replan better on its second run.

Both persist as JSON (``repro stats collect | show``); loading validates
the stored catalog version against the live lake.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from ..federation.operators import DependentJoin, FedOperator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalake.lake import SemanticDataLake
    from ..obs.observation import RunObservation

#: Bumped when the persisted layout changes incompatibly.
STATS_FORMAT_VERSION = 1


def signature_key(signature: tuple) -> str:
    """Canonical JSON string of a stats signature (dict key + persistence)."""
    return json.dumps(signature, separators=(",", ":"), sort_keys=False)


class StaleStatisticsError(ValueError):
    """A persisted statistics file no longer matches the live lake."""


# ---------------------------------------------------------------------------
# Catalog statistics
# ---------------------------------------------------------------------------


class CatalogStatistics:
    """Deterministic per-source statistics snapshot of one lake."""

    def __init__(self) -> None:
        self.catalog_version: tuple = ()
        #: ``(source_id, table) -> {"rows": int, "columns": {name: {...}}}``
        self.tables: dict[tuple[str, str], dict] = {}
        #: ``(source_id, class_iri_n3) -> {"cardinality": int,
        #: "predicates": {predicate_n3: count}}``
        self.molecules: dict[tuple[str, str], dict] = {}

    @classmethod
    def collect(cls, lake: "SemanticDataLake") -> "CatalogStatistics":
        stats = cls()
        stats.catalog_version = lake.catalog_version()
        for source in lake.relational_sources():
            database = source.database
            catalog = lake.physical_catalog
            for table in database.table_names:
                table_statistics = database.statistics(table)
                columns = {}
                for name in sorted(table_statistics.columns):
                    column = table_statistics.columns[name]
                    columns[name] = {
                        "ndv": column.distinct_count,
                        "nulls": column.null_count,
                        "mode_fraction": column.most_common_fraction,
                        "indexed": catalog.is_indexed(source.source_id, table, name),
                    }
                self_rows = table_statistics.row_count
                stats.tables[(source.source_id, table)] = {
                    "rows": self_rows,
                    "columns": columns,
                }
        for source in lake.sources():
            for molecule in source.molecule_templates():
                stats.molecules[(source.source_id, molecule.class_iri.n3())] = {
                    "cardinality": molecule.cardinality,
                    "predicates": {
                        predicate.n3(): count
                        for predicate, count in sorted(
                            molecule.predicate_cardinality.items(),
                            key=lambda item: item[0].n3(),
                        )
                    },
                }
        return stats

    # -- lookups ------------------------------------------------------------

    def table_rows(self, source_id: str, table: str) -> float:
        entry = self.tables.get((source_id, table))
        return float(entry["rows"]) if entry else 0.0

    def column_ndv(self, source_id: str, table: str, column: str) -> float:
        """Distinct values of one column, floored at 1 (division safety)."""
        entry = self.tables.get((source_id, table))
        if not entry:
            return 1.0
        info = entry["columns"].get(column)
        if not info:
            return 1.0
        return max(float(info["ndv"]), 1.0)

    def column_indexed(self, source_id: str, table: str, column: str) -> bool:
        entry = self.tables.get((source_id, table))
        if not entry:
            return False
        info = entry["columns"].get(column)
        return bool(info and info["indexed"])

    def equality_selectivity(self, source_id: str, table: str, column: str) -> float:
        """Uniform 1/NDV estimate for ``column = const``."""
        rows = self.table_rows(source_id, table)
        if rows <= 0:
            return 1.0
        return 1.0 / self.column_ndv(source_id, table, column)

    # -- persistence --------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "kind": "repro-catalog-stats",
            "version": STATS_FORMAT_VERSION,
            "catalog_version": [list(pair) for pair in self.catalog_version],
            "tables": [
                {
                    "source": source_id,
                    "table": table,
                    "rows": entry["rows"],
                    "columns": entry["columns"],
                }
                for (source_id, table), entry in sorted(self.tables.items())
            ],
            "molecules": [
                {
                    "source": source_id,
                    "class": class_iri,
                    "cardinality": entry["cardinality"],
                    "predicates": entry["predicates"],
                }
                for (source_id, class_iri), entry in sorted(self.molecules.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CatalogStatistics":
        if payload.get("kind") != "repro-catalog-stats":
            raise ValueError("not a repro catalog-statistics payload")
        stats = cls()
        stats.catalog_version = tuple(
            tuple(pair) for pair in payload.get("catalog_version", [])
        )
        for entry in payload.get("tables", []):
            stats.tables[(entry["source"], entry["table"])] = {
                "rows": entry["rows"],
                "columns": entry["columns"],
            }
        for entry in payload.get("molecules", []):
            stats.molecules[(entry["source"], entry["class"])] = {
                "cardinality": entry["cardinality"],
                "predicates": entry["predicates"],
            }
        return stats


# ---------------------------------------------------------------------------
# Observed statistics
# ---------------------------------------------------------------------------


def ingestible_operators(plan) -> list[FedOperator]:
    """The operators of *plan* whose observed row counts are valid store
    entries: signature-stamped, outside dependent-join inner subtrees
    (those run restricted by outer bindings — their counts describe a
    different sub-query), and not under LIMIT/OFFSET early termination
    (operators stop early, so ``rows_out`` is not the true cardinality).

    The feedback loop measures q-error over exactly this set: an estimate
    the ingest cannot correct must not keep triggering replans.
    """
    if plan is None:
        return []
    query = plan.query
    if query.limit is not None or query.offset is not None:
        return []
    found: list[FedOperator] = []

    def visit(operator: FedOperator) -> None:
        if operator.stats_signature is not None:
            found.append(operator)
        inner = operator.inner if isinstance(operator, DependentJoin) else None
        for child in operator.children():
            if child is not inner:
                visit(child)

    visit(plan.root)
    return found


class ObservedStatistics:
    """Actual cardinalities learned from executed plans.

    ``revision`` increments whenever a lookup result could change; the
    engine folds it into cost-policy plan-cache keys, so ingesting fresh
    observations transparently invalidates cost-based cached plans (and
    only those — heuristic plans never read this store).
    """

    def __init__(self) -> None:
        #: key -> {"signature": jsonable, "rows": float, "ingests": int}
        self._records: dict[str, dict] = {}
        self.revision = 0

    def __len__(self) -> int:
        return len(self._records)

    def lookup(self, signature: tuple) -> float | None:
        entry = self._records.get(signature_key(signature))
        return entry["rows"] if entry is not None else None

    def record(self, signature: tuple, rows: float) -> None:
        key = signature_key(signature)
        entry = self._records.get(key)
        rows = float(rows)
        if entry is None:
            self._records[key] = {
                "signature": json.loads(key),
                "rows": rows,
                "ingests": 1,
            }
            self.revision += 1
            return
        entry["ingests"] += 1
        if entry["rows"] != rows:
            entry["rows"] = rows
            self.revision += 1

    def ingest_observation(self, observation: "RunObservation") -> int:
        """Record actual rows for every ingestible operator.

        Returns the number of records written.  Deterministic per plan:
        cold runs, plan-cache-warm runs and batch-mode runs of the same
        query ingest identical records because profiles count identical
        rows under every runtime and exec mode.
        """
        count = 0
        for operator in ingestible_operators(observation.plan):
            profile = observation.profile_for(operator)
            if profile is not None:
                self.record(operator.stats_signature, float(profile.rows_out))
                count += 1
        return count

    # -- persistence --------------------------------------------------------

    def to_payload(self, catalog_version: tuple) -> dict:
        return {
            "kind": "repro-observed-stats",
            "version": STATS_FORMAT_VERSION,
            "catalog_version": [list(pair) for pair in catalog_version],
            "records": [
                self._records[key] for key in sorted(self._records)
            ],
        }

    @classmethod
    def from_payload(
        cls, payload: dict, catalog_version: tuple | None = None
    ) -> "ObservedStatistics":
        """Rebuild a store; with *catalog_version* given, a mismatching
        stored version raises :class:`StaleStatisticsError` (mutated lakes
        must not replay observations from their previous contents)."""
        if payload.get("kind") != "repro-observed-stats":
            raise ValueError("not a repro observed-statistics payload")
        if catalog_version is not None:
            stored = tuple(tuple(pair) for pair in payload.get("catalog_version", []))
            if stored != tuple(catalog_version):
                raise StaleStatisticsError(
                    f"observed statistics were collected at catalog version "
                    f"{stored}, but the lake is now at {tuple(catalog_version)}"
                )
        stats = cls()
        for entry in payload.get("records", []):
            stats._records[
                json.dumps(entry["signature"], separators=(",", ":"))
            ] = {
                "signature": entry["signature"],
                "rows": float(entry["rows"]),
                "ingests": int(entry.get("ingests", 1)),
            }
        stats.revision = len(stats._records)
        return stats
