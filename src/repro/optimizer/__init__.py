"""Cost-based federated optimization (``policy="cost"`` / ``--policy cost``).

Three layers (see DESIGN.md §14):

* statistics — :class:`CatalogStatistics` (deterministic lake snapshot:
  table/predicate cardinalities, index flags, NDV sketches) and
  :class:`ObservedStatistics` (actual cardinalities ingested from observed
  runs, keyed by plan-unit signatures, versioned by catalog data-version);
* enumeration — :class:`CostBasedPlanner` (bushy DP join-order search with
  cost-decided H1 merges, filter placements and join methods);
* calibration + feedback — :func:`calibrate_constants` (constants fitted
  from the committed plan-quality baseline) and :func:`run_with_feedback`
  (observe → ingest → replan).
"""

from .cost import CostConstants, analytic_constants, calibrate_constants
from .feedback import DEFAULT_Q_ERROR_THRESHOLD, FeedbackResult, run_with_feedback
from .planner import MAX_DP_UNITS, CostBasedPlanner
from .statistics import (
    CatalogStatistics,
    ObservedStatistics,
    STATS_FORMAT_VERSION,
    StaleStatisticsError,
    ingestible_operators,
    signature_key,
)

__all__ = [
    "CatalogStatistics",
    "CostBasedPlanner",
    "CostConstants",
    "DEFAULT_Q_ERROR_THRESHOLD",
    "FeedbackResult",
    "MAX_DP_UNITS",
    "ObservedStatistics",
    "STATS_FORMAT_VERSION",
    "StaleStatisticsError",
    "analytic_constants",
    "calibrate_constants",
    "ingestible_operators",
    "run_with_feedback",
    "signature_key",
]
