"""Cost formulas and calibration for the cost-based planner.

The planner compares *virtual-time* costs, in the same currency the engine
charges: per-operation constants from the engine's
:class:`~repro.network.costmodel.CostModel` plus the network's expected
per-charge delay.  The engine charges one network-delay sample + one
message overhead for every sub-query request and for every answer row
shipped, so the analytic expectation of one charge is
``mean_latency + message_overhead`` — that single constant is also what
:func:`calibrate_constants` re-fits empirically from the committed
plan-quality baseline grid (observed time deltas between a network and the
no-delay cells, divided by the observed number of network charges).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..network.costmodel import CostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.delays import NetworkSetting


@dataclass(frozen=True)
class CostConstants:
    """Per-operation virtual durations the enumerator prices plans with."""

    #: One sub-query round trip to a source (delay sample + message).
    request: float
    #: One answer row shipped from a source to the engine.
    transfer_per_row: float
    #: Source-side work to produce one output row (scan + serialize).
    source_row: float
    #: Source-side predicate evaluation, per row (cheap comparisons).
    source_filter_eval: float
    #: Source-side *string-pattern* evaluation, per row (LIKE/REGEX — the
    #: expensive case behind Heuristic 2's engine-side preference).
    source_string_filter_eval: float
    #: One B-tree descent.
    index_probe: float
    #: One row fetched through an index entry.
    index_row_fetch: float
    #: Symmetric hash join work per input row (insert + probe).
    hash_work: float
    #: One row emitted by an engine-side join.
    join_output: float
    #: Engine-side predicate evaluation, per row.
    engine_filter_eval: float


def analytic_constants(
    cost_model: CostModel, network: "NetworkSetting"
) -> CostConstants:
    """Constants derived from the engine's own cost model + delay means.

    This is the default every cost-based engine starts from — fully
    deterministic with no fitted data, so ``--policy cost`` behaves
    identically on a fresh checkout and in CI.
    """
    per_charge = network.mean_latency + cost_model.message_overhead
    return CostConstants(
        request=per_charge,
        transfer_per_row=per_charge,
        source_row=cost_model.rdb_row_scan + cost_model.rdb_output_row,
        source_filter_eval=cost_model.rdb_filter_eval,
        source_string_filter_eval=cost_model.rdb_string_filter_eval,
        index_probe=cost_model.rdb_index_probe,
        index_row_fetch=cost_model.rdb_index_row_fetch,
        hash_work=cost_model.engine_hash_insert + cost_model.engine_hash_probe,
        join_output=cost_model.engine_join_output_row,
        engine_filter_eval=cost_model.engine_filter_eval,
    )


def _cell_network_charges(cell: dict) -> float:
    """Network charges one cell's run issued: one per Service answer row
    plus one per Service request (both draw a delay sample)."""
    charges = 0.0
    for label, __, actual in cell.get("operators", []):
        if label.startswith("Service["):
            charges += float(actual) + 1.0
    return charges


def calibrate_constants(
    baseline: dict,
    cost_model: CostModel,
    network: "NetworkSetting",
) -> CostConstants:
    """Fit the per-charge delay for *network* from a plan-quality baseline.

    For every (query, policy) pair measured sequentially under both this
    network and ``nodelay``, the time delta divided by the number of
    network charges estimates the mean sampled delay; the fitted per-charge
    constant is that mean plus the message overhead (charged in both
    cells, hence absent from the delta).  Falls back to the analytic
    constants when the grid has no usable pairs (e.g. ``nodelay`` itself).
    """
    base = analytic_constants(cost_model, network)
    cells = baseline.get("cells", {})
    ratios: list[float] = []
    for key, cell in sorted(cells.items()):
        query, policy, net, runtime = key.split("|")
        if net != network.name or runtime != "sequential":
            continue
        reference = cells.get(f"{query}|{policy}|nodelay|{runtime}")
        if reference is None:
            continue
        delta = float(cell["execution_time"]) - float(reference["execution_time"])
        charges = _cell_network_charges(cell)
        if charges > 0 and delta > 0:
            ratios.append(delta / charges)
    if not ratios:
        return base
    per_charge = sum(ratios) / len(ratios) + cost_model.message_overhead
    return replace(base, request=per_charge, transfer_per_row=per_charge)
